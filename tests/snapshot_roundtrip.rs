//! Integration test: model persistence via parameter snapshots survives a
//! full train → save → clobber → restore cycle with bit-identical outputs.

use clfd_autograd::Tape;
use clfd_nn::linear::LinearInit;
use clfd_nn::snapshot::Snapshot;
use clfd_nn::{Adam, Layer, Linear, Lstm, Optimizer};
use clfd_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trained_model_round_trips_through_json() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut tape = Tape::new();
    let lstm = Lstm::new(&mut tape, 4, 6, 2, &mut rng);
    let head = Linear::new(&mut tape, 6, 2, LinearInit::Xavier, &mut rng);
    tape.seal();
    let mut params = lstm.params();
    params.extend(head.params());

    // Train a few steps so the parameters are non-trivial.
    let mut opt = Adam::new(0.01);
    let steps: Vec<Matrix> = (0..5)
        .map(|_| init::uniform(3, 4, -1.0, 1.0, &mut rng))
        .collect();
    for _ in 0..10 {
        let vars: Vec<_> = steps.iter().map(|m| tape.constant(m.clone())).collect();
        let z = lstm.encode(&mut tape, &vars, &[5, 5, 5]);
        let logits = head.forward(&mut tape, z);
        let loss = tape.mean_all(logits);
        tape.backward(loss);
        opt.step(&mut tape, &params);
        tape.reset();
    }

    let predict = |tape: &mut Tape| -> Matrix {
        let vars: Vec<_> = steps.iter().map(|m| tape.constant(m.clone())).collect();
        let z = lstm.encode(tape, &vars, &[5, 5, 5]);
        let logits = head.forward(tape, z);
        let out = tape.value(logits).softmax_rows();
        tape.reset();
        out
    };
    let before = predict(&mut tape);

    // Save → JSON → clobber → restore.
    let snap = Snapshot::capture(&tape, &params);
    let json = snap.to_json();
    for &p in &params {
        tape.value_mut(p).map_inplace(|_| 0.123);
    }
    assert_ne!(predict(&mut tape), before, "clobbering must change outputs");
    let restored = Snapshot::from_json(&json).expect("valid JSON");
    restored.restore(&mut tape, &params).expect("matching architecture");

    assert_eq!(predict(&mut tape), before, "restored model diverged");
}
