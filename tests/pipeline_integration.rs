//! Cross-crate integration tests: the full CLFD pipeline, the baseline
//! interface, and the experiment runner working together end-to-end.

use clfd::{Ablation, ClfdConfig, TrainedClfd};
use clfd_baselines::{all_baselines, ClfdModel};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Label, Preset};
use clfd_eval::metrics::RunMetrics;
use clfd_eval::runner::{run_cell, ExperimentSpec};
use clfd_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_cfg() -> ClfdConfig {
    ClfdConfig::for_preset(Preset::Smoke)
}

#[test]
fn label_correction_helps_the_detector_under_noise() {
    // The paper's headline mechanism, tested as a seed-averaged internal
    // ablation (single smoke-scale runs are too noisy for cross-model
    // comparisons): the full framework must not trail its own
    // "w/o label corrector" ablation in mean F1 under moderate noise.
    let cfg = smoke_cfg();
    let mean_f1 = |ablation: Ablation| -> f64 {
        let mut total = 0.0;
        let seeds = [31_u64, 32, 33];
        for &seed in &seeds {
            let split = DatasetKind::Cert.generate(Preset::Smoke, seed);
            let truth = split.train_labels();
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let noisy = NoiseModel::Uniform { eta: 0.3 }.apply(&truth, &mut rng);
            let model = TrainedClfd::fit(&split, &noisy, &cfg, &ablation, seed);
            let preds = model.predict_test(&split);
            total += RunMetrics::compute(&preds, &split.test_labels()).f1;
        }
        total / seeds.len() as f64
    };
    let full = mean_f1(Ablation::full());
    let without_lc = mean_f1(Ablation::without_label_corrector());
    assert!(
        full >= without_lc - 5.0,
        "full CLFD mean F1 {full:.1} trails w/o LC {without_lc:.1}"
    );
}

#[test]
fn every_model_satisfies_the_classifier_contract() {
    // All nine systems must produce one valid prediction per test session
    // on every dataset.
    let cfg = smoke_cfg();
    let mut models = all_baselines();
    models.push(Box::new(ClfdModel::default()));
    let split = DatasetKind::UmdWikipedia.generate(Preset::Smoke, 33);
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(4);
    let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
    for model in &models {
        let preds = model.fit_predict(&split, &noisy, &cfg, 77, &Obs::null());
        assert_eq!(preds.len(), split.test.len(), "{} count", model.name());
        for p in &preds {
            assert!(
                (0.0..=1.0).contains(&p.malicious_score),
                "{} produced score {}",
                model.name(),
                p.malicious_score
            );
            assert!(
                (0.5..=1.0).contains(&p.confidence),
                "{} produced confidence {}",
                model.name(),
                p.confidence
            );
        }
    }
}

#[test]
fn training_is_reproducible_for_a_fixed_seed() {
    let split = DatasetKind::OpenStack.generate(Preset::Smoke, 35);
    let cfg = smoke_cfg();
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(6);
    let noisy = NoiseModel::Uniform { eta: 0.1 }.apply(&truth, &mut rng);

    let run = || {
        let model = TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 55);
        model
            .predict_test(&split)
            .iter()
            .map(|p| (p.label, p.malicious_score))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "two identically-seeded runs diverged");
}

#[test]
fn noise_monotonically_damages_the_uncorrected_model() {
    // Without the label corrector ("w/o LC"), more noise must not help.
    // Compare the extremes of the noise grid.
    let split = DatasetKind::Cert.generate(Preset::Smoke, 37);
    let cfg = smoke_cfg();
    let truth = split.train_labels();
    let metric_at = |eta: f32| {
        let mut rng = StdRng::seed_from_u64(8);
        let noisy = NoiseModel::Uniform { eta }.apply(&truth, &mut rng);
        let model = TrainedClfd::fit(
            &split,
            &noisy,
            &cfg,
            &Ablation::without_label_corrector(),
            66,
        );
        let preds = model.predict_test(&split);
        RunMetrics::compute(&preds, &split.test_labels()).auc_roc
    };
    let low = metric_at(0.05);
    let high = metric_at(0.45);
    assert!(
        low > high - 5.0,
        "AUC at eta=0.05 ({low:.1}) should not trail eta=0.45 ({high:.1})"
    );
}

#[test]
fn concurrent_prediction_matches_sequential_bit_for_bit() {
    // `predict_test` borrows the model immutably, so two threads sharing
    // one trained model must run safely and both reproduce the sequential
    // result exactly — the regression test for inference mutating (and
    // therefore racing on) model state.
    let split = DatasetKind::Cert.generate(Preset::Smoke, 43);
    let cfg = smoke_cfg();
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(12);
    let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
    let model = TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 99);

    let sequential = model.predict_test(&split);
    let (a, b) = std::thread::scope(|s| {
        let ta = s.spawn(|| model.predict_test(&split));
        let tb = s.spawn(|| model.predict_test(&split));
        (ta.join().expect("thread A"), tb.join().expect("thread B"))
    });
    for (which, preds) in [("A", &a), ("B", &b)] {
        assert_eq!(preds.len(), sequential.len(), "thread {which} count");
        for (i, (p, q)) in preds.iter().zip(&sequential).enumerate() {
            assert_eq!(p.label, q.label, "thread {which}, session {i}");
            assert_eq!(
                p.malicious_score.to_bits(),
                q.malicious_score.to_bits(),
                "thread {which}, session {i} score"
            );
            assert_eq!(
                p.confidence.to_bits(),
                q.confidence.to_bits(),
                "thread {which}, session {i} confidence"
            );
        }
    }
}

#[test]
fn runner_aggregates_multiple_runs() {
    let cfg = smoke_cfg();
    let spec = ExperimentSpec {
        dataset: DatasetKind::OpenStack,
        preset: Preset::Smoke,
        noise: NoiseModel::Uniform { eta: 0.1 },
        runs: 2,
        base_seed: 41,
    };
    let cell = run_cell(&clfd_baselines::deeplog::DeepLog::default(), &spec, &cfg, &Obs::null());
    assert_eq!(cell.model, "DeepLog");
    assert!(cell.f1.mean.is_finite());
    // Two different seeds: the std is almost surely nonzero.
    assert!(cell.f1.std >= 0.0);
    assert!(cell.seconds_per_run > 0.0);
}

#[test]
fn corrected_labels_outnumber_noisy_matches_at_moderate_noise() {
    // The corrector must recover information lost to noise (Table III's
    // premise) at a noise level recoverable at smoke scale.
    let split = DatasetKind::Cert.generate(Preset::Smoke, 39);
    let cfg = smoke_cfg();
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(10);
    let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
    let model = TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 88);
    let agree = |labels: &[Label]| {
        labels.iter().zip(&truth).filter(|(a, b)| a == b).count()
    };
    assert!(
        agree(model.corrected_labels()) > agree(&noisy),
        "correction did not improve on the noisy labels"
    );
}
