//! Golden determinism test for the threaded kernels and the telemetry
//! layer: the complete CLFD pipeline (embedding pretrain → label
//! correction → contrastive fraud detector → prediction) run twice at 4
//! kernel threads must produce bit-identical predictions, the 4-thread run
//! must match the serial (1-thread) run bit-for-bit, and attaching a JSONL
//! telemetry sink must change nothing. This is the end-to-end witness of
//! the tensor crate's bit-identity contract and of `clfd_obs`'s
//! observation-only contract: if any kernel reassociated float arithmetic
//! across threads, or any telemetry read perturbed the compute path, the
//! divergence would be amplified by hundreds of training steps and caught
//! here.

use clfd::{Ablation, ClfdConfig, Prediction, TrainOptions, TrainedClfd};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Label, Preset};
use clfd_obs::Obs;
use clfd_tensor::with_threads;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One full smoke-preset fit + predict at a pinned kernel thread count,
/// with training telemetry flowing to `obs`.
fn smoke_fit(threads: usize, obs: &Obs) -> (Vec<Prediction>, Vec<Label>, Vec<f32>) {
    with_threads(threads, || {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 7);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
        let opts = TrainOptions { obs: obs.clone(), ..TrainOptions::conservative() };
        let model = TrainedClfd::try_fit(&split, &noisy, &cfg, &Ablation::full(), 5, &opts)
            .expect("smoke fit trains cleanly");
        let preds = model.predict_test(&split);
        let corrected = model.corrected_labels().to_vec();
        let confidences = model.correction_confidences().to_vec();
        (preds, corrected, confidences)
    })
}

fn assert_identical(
    (a_preds, a_corrected, a_conf): &(Vec<Prediction>, Vec<Label>, Vec<f32>),
    (b_preds, b_corrected, b_conf): &(Vec<Prediction>, Vec<Label>, Vec<f32>),
    what: &str,
) {
    assert_eq!(a_preds.len(), b_preds.len(), "{what}: prediction counts");
    for (i, (a, b)) in a_preds.iter().zip(b_preds).enumerate() {
        assert_eq!(a.label, b.label, "{what}: label of test session {i}");
        assert_eq!(
            a.malicious_score.to_bits(),
            b.malicious_score.to_bits(),
            "{what}: malicious score of test session {i}"
        );
        assert_eq!(
            a.confidence.to_bits(),
            b.confidence.to_bits(),
            "{what}: confidence of test session {i}"
        );
    }
    assert_eq!(a_corrected, b_corrected, "{what}: corrected labels");
    assert_eq!(a_conf.len(), b_conf.len(), "{what}: confidence counts");
    for (i, (a, b)) in a_conf.iter().zip(b_conf).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: correction confidence of train session {i}"
        );
    }
}

#[test]
fn full_pipeline_is_bit_identical_across_runs_and_thread_counts() {
    let serial = smoke_fit(1, &Obs::null());
    let threaded_a = smoke_fit(4, &Obs::null());
    let threaded_b = smoke_fit(4, &Obs::null());
    // Repeatability at a fixed thread count: no scheduling leak anywhere.
    assert_identical(&threaded_a, &threaded_b, "4 threads, run A vs run B");
    // Thread-count invariance: the parallel kernels are bit-identical to
    // the serial ones even through a full training trajectory.
    assert_identical(&serial, &threaded_a, "1 thread vs 4 threads");

    // Telemetry invariance: a JSONL sink recording the whole run must not
    // perturb predictions, corrected labels, or confidences by a single
    // bit, and the log it produces must be well-formed JSONL with the
    // pipeline's stage structure in it.
    let log = std::env::temp_dir().join(format!("RUN_golden_{}.jsonl", std::process::id()));
    let logged = {
        let obs = Obs::jsonl(&log).expect("create jsonl sink");
        let out = smoke_fit(4, &obs);
        obs.flush();
        out
    };
    assert_identical(&threaded_a, &logged, "null sink vs JSONL sink");
    let text = std::fs::read_to_string(&log).expect("read back the run log");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 10, "log suspiciously short: {} lines", lines.len());
    for (i, line) in lines.iter().enumerate() {
        clfd_obs::json::validate(line)
            .unwrap_or_else(|e| panic!("log line {i} invalid: {e}\n{line}"));
    }
    for needle in [
        "\"type\":\"stage_start\"",
        "\"type\":\"epoch_end\"",
        "\"corrector/simclr\"",
        "\"detector/supcon\"",
        "\"embeddings\"",
    ] {
        assert!(text.contains(needle), "run log missing {needle}");
    }
    std::fs::remove_file(&log).ok();
}
