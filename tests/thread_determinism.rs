//! Golden determinism test for the threaded kernels: the complete CLFD
//! pipeline (embedding pretrain → label correction → contrastive fraud
//! detector → prediction) run twice at 4 kernel threads must produce
//! bit-identical predictions, and the 4-thread run must match the serial
//! (1-thread) run bit-for-bit. This is the end-to-end witness of the
//! tensor crate's bit-identity contract: if any kernel reassociated float
//! arithmetic across threads, the divergence would be amplified by
//! hundreds of training steps and caught here.

use clfd::{Ablation, ClfdConfig, Prediction, TrainedClfd};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Label, Preset};
use clfd_tensor::with_threads;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One full smoke-preset fit + predict at a pinned kernel thread count.
fn smoke_fit(threads: usize) -> (Vec<Prediction>, Vec<Label>, Vec<f32>) {
    with_threads(threads, || {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 7);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
        let mut model = TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 5);
        let preds = model.predict_test(&split);
        let corrected = model.corrected_labels().to_vec();
        let confidences = model.correction_confidences().to_vec();
        (preds, corrected, confidences)
    })
}

fn assert_identical(
    (a_preds, a_corrected, a_conf): &(Vec<Prediction>, Vec<Label>, Vec<f32>),
    (b_preds, b_corrected, b_conf): &(Vec<Prediction>, Vec<Label>, Vec<f32>),
    what: &str,
) {
    assert_eq!(a_preds.len(), b_preds.len(), "{what}: prediction counts");
    for (i, (a, b)) in a_preds.iter().zip(b_preds).enumerate() {
        assert_eq!(a.label, b.label, "{what}: label of test session {i}");
        assert_eq!(
            a.malicious_score.to_bits(),
            b.malicious_score.to_bits(),
            "{what}: malicious score of test session {i}"
        );
        assert_eq!(
            a.confidence.to_bits(),
            b.confidence.to_bits(),
            "{what}: confidence of test session {i}"
        );
    }
    assert_eq!(a_corrected, b_corrected, "{what}: corrected labels");
    assert_eq!(a_conf.len(), b_conf.len(), "{what}: confidence counts");
    for (i, (a, b)) in a_conf.iter().zip(b_conf).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: correction confidence of train session {i}"
        );
    }
}

#[test]
fn full_pipeline_is_bit_identical_across_runs_and_thread_counts() {
    let serial = smoke_fit(1);
    let threaded_a = smoke_fit(4);
    let threaded_b = smoke_fit(4);
    // Repeatability at a fixed thread count: no scheduling leak anywhere.
    assert_identical(&threaded_a, &threaded_b, "4 threads, run A vs run B");
    // Thread-count invariance: the parallel kernels are bit-identical to
    // the serial ones even through a full training trajectory.
    assert_identical(&serial, &threaded_a, "1 thread vs 4 threads");
}
