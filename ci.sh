#!/bin/sh
# CI entry point: build, test, lint.
#
# With registry access this uses the real crates.io dependencies. In
# air-gapped environments (registry unreachable) it substitutes the
# offline stub crates in vendor/ via a command-line source replacement —
# the checked-in manifests are never modified. See vendor/README.md.
set -eu

cd "$(dirname "$0")"

CARGO_ARGS=""
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    echo "ci: registry unreachable — using offline stubs from vendor/" >&2
    CARGO_ARGS="--config source.crates-io.replace-with=\"vendored-sources\" \
        --config source.vendored-sources.directory=\"vendor\" --offline"
fi

run() {
    # The offline flags go *after* the subcommand: external subcommands
    # (cargo-clippy) re-invoke cargo themselves and only forward the
    # arguments they received, not the outer invocation's global flags.
    cmd="$1"
    shift
    echo "+ cargo $cmd $*" >&2
    # shellcheck disable=SC2086
    cargo "$cmd" $CARGO_ARGS "$@"
}

run build --release --workspace
run test -q --workspace
run clippy --workspace --all-targets -- -D warnings

# Library crates must never print: human-facing output belongs to the
# binaries (src/bin/) and examples. `--lib` scopes the denied lints to
# library targets so tests/bins can keep their eprintln!s.
for lib in clfd clfd-tensor clfd-autograd clfd-nn clfd-losses clfd-data \
    clfd-baselines clfd-eval clfd-bench clfd-obs clfd-metrics clfd-serve \
    clfd-registry clfd-gateway; do
    run clippy -p "$lib" --lib -- -D warnings \
        -D clippy::print_stdout -D clippy::print_stderr
done

# Bench smoke: the kernel/e2e suite must run, produce a well-formed JSON
# report (the binary re-parses what it wrote and fails otherwise), and
# pass the core-aware performance gate: thread counts the host can truly
# run in parallel must report speedup_vs_serial > 1.0 on every shape
# (oversubscribed counts on smaller hosts only have to stay > 0.85), and
# the blocked matmuls must beat the scalar-reference kernels by >= 1.5x.
rm -f BENCH_kernels.json RUN_BENCH_kernels.jsonl
run run --release -p clfd-bench --bin bench_suite -- \
    --preset smoke --threads 1,2 --out BENCH_kernels.json --gate
test -s BENCH_kernels.json
# The kernel run's launch-counter telemetry must render into the
# kernel-throughput section of the run report.
test -s RUN_BENCH_kernels.jsonl
run run --release -p clfd-metrics --bin clfd-report -- \
    RUN_BENCH_kernels.jsonl | grep -q "Kernel throughput"

# Serve smoke: freeze a trained smoke model, stream 100 requests through
# the micro-batching engine at several batch/worker shapes, and require a
# well-formed report. The binary itself asserts the frozen artifact
# scores bit-identically to the live pipeline before benchmarking, and
# re-parses the JSON it wrote. `--precision int8` additionally quantizes
# the artifact, asserts the accuracy-delta gate passes against the f32
# reference, and serves the quantized path through the same engine.
rm -f BENCH_serve.json RUN_BENCH_serve.jsonl METRICS_BENCH_serve.prom
run run --release -p clfd-bench --bin bench_serve -- \
    --preset smoke --batches 1,32 --workers 1,2 --requests 100 \
    --precision int8 --out BENCH_serve.json
test -s BENCH_serve.json
# The quantized rows and the gate summary must have made it into the
# report on disk.
grep -q '"precision": "int8"' BENCH_serve.json

# Run-report smoke: clfd-report must ingest the serve run's telemetry and
# produce a non-empty summary, and the Prometheus metrics snapshot the
# benchmark wrote must agree with the latency percentiles the report
# computes independently from the raw RUN_*.jsonl (exits non-zero on
# parse errors, empty summaries, or disagreement).
test -s RUN_BENCH_serve.jsonl
test -s METRICS_BENCH_serve.prom
run run --release -p clfd-metrics --bin clfd-report -- \
    --check-snapshot METRICS_BENCH_serve.prom RUN_BENCH_serve.jsonl >/dev/null

# Gateway smoke: serve a frozen smoke model over real HTTP/1.1 sockets
# (ephemeral port — the benchmark binds 127.0.0.1:0 itself) and drive 64
# concurrent keep-alive connections through it, with every 25th request
# deliberately malformed. The binary exits non-zero on any dropped or
# corrupted response, any 200 whose scores are not bit-identical to the
# in-process artifact, any non-2xx outside the injected schedule, or a
# client tally that disagrees with the gateway's own /metrics counters.
rm -f BENCH_gateway.json RUN_BENCH_gateway.jsonl METRICS_BENCH_gateway.prom
run run --release -p clfd-bench --bin bench_gateway -- \
    --preset smoke --connections 64 --requests 512 \
    --out BENCH_gateway.json
test -s BENCH_gateway.json
test -s RUN_BENCH_gateway.jsonl
test -s METRICS_BENCH_gateway.prom
run run --release -p clfd-metrics --bin clfd-report -- \
    --check-snapshot METRICS_BENCH_gateway.prom RUN_BENCH_gateway.jsonl >/dev/null

# Registry smoke: stage + promote two artifact versions, hot-swap between
# them under a 100-request load, then stage a corrupt candidate — it must
# be rejected (SwapRollback) while the engine keeps serving the good
# version. The binary exits non-zero on any dropped request, any response
# that matches neither installed version, or a corrupt promote sneaking
# through.
rm -rf REGISTRY_SMOKE
run run --release -p clfd-registry --bin registry_smoke -- \
    --root REGISTRY_SMOKE --requests 100
rm -rf REGISTRY_SMOKE
echo "ci: all checks passed"
