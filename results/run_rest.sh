#!/bin/bash
# Sequential regeneration of the remaining experiments at Default scale.
set -x
cd /root/repo
while pgrep -x table1 > /dev/null; do sleep 10; done
target/release/table2 --preset default --runs 3 --out results/table2.json > results/table2.md 2> results/table2.log
target/release/table3 --preset default --runs 3 --out results/table3.json > results/table3.md 2> results/table3.log
target/release/table4 --preset default --runs 3 --out results/table4.json > results/table4.md 2> results/table4.log
target/release/table5 --preset default --runs 3 --out results/table5.json > results/table5.md 2> results/table5.log
target/release/latency --preset default --runs 1 --out results/latency.json > results/latency.md 2> results/latency.log
target/release/repro_ablations --preset default --runs 2 --out results/repro_ablations.json > results/repro_ablations.md 2> results/repro_ablations.log
target/release/theorems > results/theorems.md 2>/dev/null
echo ALL-DONE > results/.done
