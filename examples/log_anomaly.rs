//! Log-anomaly scenario: CLFD vs. the unsupervised log detectors (DeepLog,
//! LogBert) on the OpenStack-like VM-lifecycle simulator.
//!
//! DeepLog/LogBert never consume labels directly — they model "normal" log
//! grammar — but label noise still poisons their *training pool* (sessions
//! labeled normal include real anomalies). This example shows all three
//! under moderate noise.
//!
//! ```text
//! cargo run --release --example log_anomaly
//! ```

use clfd::ClfdConfig;
use clfd_baselines::{deeplog::DeepLog, logbert::LogBert, ClfdModel, SessionClassifier};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Preset};
use clfd_eval::metrics::RunMetrics;
use clfd_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let split = DatasetKind::OpenStack.generate(Preset::Smoke, 4);
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let truth = split.train_labels();
    let eta = 0.2;
    let mut rng = StdRng::seed_from_u64(6);
    let noisy = NoiseModel::Uniform { eta }.apply(&truth, &mut rng);
    println!("OpenStack-like log anomaly detection at uniform η = {eta}\n");
    println!("{:<8} {:>8} {:>8} {:>9}", "model", "F1%", "FPR%", "AUC-ROC%");

    let models: Vec<Box<dyn SessionClassifier>> = vec![
        Box::new(ClfdModel::default()),
        Box::new(DeepLog::default()),
        Box::new(LogBert::default()),
    ];
    for model in &models {
        let preds = model.fit_predict(&split, &noisy, &cfg, 13, &Obs::null());
        let m = RunMetrics::compute(&preds, &split.test_labels());
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>9.2}",
            model.name(),
            m.f1,
            m.fpr,
            m.auc_roc
        );
    }
}
