//! Future-work extension (§V): session-specific noise rates.
//!
//! Heuristic annotators mislabel long, diverse sessions more often than
//! short stereotyped ones. This example injects length-dependent noise and
//! compares CLFD's corrector against the uniform-noise setting with the
//! same *average* flip rate.
//!
//! ```text
//! cargo run --release --example session_noise
//! ```

use clfd::{Ablation, ClfdConfig, TrainedClfd};
use clfd_data::noise::{disagreement, NoiseModel, SessionDependentNoise};
use clfd_data::session::{DatasetKind, Label, Preset, Session};
use clfd_eval::metrics::ConfusionMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let split = DatasetKind::Cert.generate(Preset::Smoke, 5);
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let train: Vec<&Session> =
        split.train.iter().map(|&i| &split.corpus.sessions[i]).collect();
    let truth = split.train_labels();

    // Length-dependent noise: sessions beyond 12 activities flip more.
    let model = SessionDependentNoise { base: 0.15, slope: 0.02, pivot: 12 };
    let mut rng = StdRng::seed_from_u64(6);
    let session_noisy = model.apply(&train, &truth, &mut rng);
    let realized = disagreement(&truth, &session_noisy);
    println!("session-dependent noise: realized flip rate {:.3}", realized);

    // Uniform control at the same average rate.
    let mut rng2 = StdRng::seed_from_u64(6);
    let uniform_noisy =
        NoiseModel::Uniform { eta: realized.min(0.49) }.apply(&truth, &mut rng2);

    for (name, noisy) in [("session-dependent", &session_noisy), ("uniform control", &uniform_noisy)]
    {
        let m = TrainedClfd::fit(&split, noisy, &cfg, &Ablation::full(), 13);
        let cm = ConfusionMatrix::from_labels(m.corrected_labels(), &truth);
        println!(
            "{name:<18} corrector TPR {:.1}%  TNR {:.1}%",
            cm.tpr() * 100.0,
            cm.tnr() * 100.0
        );
        let _ = noisy.iter().filter(|&&l| l == Label::Malicious).count();
    }
}
