//! Insider-threat scenario: end-to-end CLFD on the CERT-like simulator,
//! with a per-archetype audit of what the detector catches.
//!
//! The CERT simulator plants four insider archetypes (USB exfiltration,
//! cloud leaking, sabotage, job-hopper theft); this example reports, per
//! discriminative token, how many of the caught / missed malicious test
//! sessions contain it — the "session diversity" the paper's intro
//! motivates, made visible.
//!
//! ```text
//! cargo run --release --example insider_threat
//! ```

use clfd::{Ablation, ClfdConfig, TrainedClfd};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Label, Preset};
use clfd_eval::metrics::RunMetrics;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let split = DatasetKind::Cert.generate(Preset::Smoke, 1);
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(3);
    let noisy = NoiseModel::PAPER_CLASS_DEPENDENT.apply(&truth, &mut rng);
    println!("training CLFD under class-dependent noise (η10=0.3, η01=0.45)...");

    let model = TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 11);
    let preds = model.predict_test(&split);
    let test_truth = split.test_labels();
    let metrics = RunMetrics::compute(&preds, &test_truth);
    println!(
        "test metrics: F1 {:.2}%  FPR {:.2}%  AUC-ROC {:.2}%\n",
        metrics.f1, metrics.fpr, metrics.auc_roc
    );

    // Audit: which insider archetypes does the detector catch?
    let signature_tokens =
        ["usb_connect", "web_leak_site", "file_delete", "web_job_search"];
    println!("caught / total malicious test sessions containing each signature token:");
    for token_name in signature_tokens {
        let token = split.corpus.vocab.id(token_name).expect("known token");
        let mut caught = 0;
        let mut total = 0;
        for ((pred, &t), &session_idx) in
            preds.iter().zip(&test_truth).zip(&split.test)
        {
            if t != Label::Malicious {
                continue;
            }
            if split.corpus.sessions[session_idx].activities.contains(&token) {
                total += 1;
                if pred.label == Label::Malicious {
                    caught += 1;
                }
            }
        }
        println!("  {token_name:<16} {caught}/{total}");
    }
}
