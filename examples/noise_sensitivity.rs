//! Noise-sensitivity sweep: CLFD and its corrector quality across the
//! paper's uniform-noise grid, printed as CSV for plotting.
//!
//! ```text
//! cargo run --release --example noise_sensitivity > sweep.csv
//! ```

use clfd::{Ablation, ClfdConfig, TrainedClfd};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Preset};
use clfd_eval::metrics::{ConfusionMatrix, RunMetrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    println!("eta,f1,fpr,auc_roc,corrector_tpr,corrector_tnr");
    for &eta in &NoiseModel::PAPER_UNIFORM_GRID {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 21);
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(17);
        let noisy = NoiseModel::Uniform { eta }.apply(&truth, &mut rng);
        let model = TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 23);

        let corrector_cm = ConfusionMatrix::from_labels(model.corrected_labels(), &truth);
        let preds = model.predict_test(&split);
        let m = RunMetrics::compute(&preds, &split.test_labels());
        println!(
            "{eta},{:.2},{:.2},{:.2},{:.2},{:.2}",
            m.f1,
            m.fpr,
            m.auc_roc,
            corrector_cm.tpr() * 100.0,
            corrector_cm.tnr() * 100.0
        );
    }
}
