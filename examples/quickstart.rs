//! Quickstart: train CLFD on a small synthetic insider-threat dataset with
//! noisy labels and print test metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clfd::{Ablation, ClfdConfig, TrainedClfd};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Preset};
use clfd_eval::metrics::RunMetrics;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate a CERT-like dataset with the paper's split recipe.
    let split = DatasetKind::Cert.generate(Preset::Smoke, 42);
    let (train_normal, train_malicious, test_normal, test_malicious) = split.composition();
    println!(
        "dataset: {train_normal} normal + {train_malicious} malicious train, \
         {test_normal} normal + {test_malicious} malicious test"
    );

    // 2. Corrupt the training labels with 20% uniform noise — the
    //    automated-annotation setting the paper targets.
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(0);
    let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
    let flipped = truth.iter().zip(&noisy).filter(|(a, b)| a != b).count();
    println!("injected noise: {flipped}/{} labels flipped", truth.len());

    // 3. Train the full CLFD framework (label corrector + fraud detector).
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let model = TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 7);

    // 4. How well did the label corrector clean the training labels?
    let corrected = model.corrected_labels();
    let recovered = corrected.iter().zip(&truth).filter(|(a, b)| a == b).count();
    println!(
        "label corrector: {recovered}/{} corrected labels match the ground truth \
         (noisy labels matched {})",
        truth.len(),
        truth.len() - flipped
    );

    // 5. Detect malicious sessions in the (clean-labeled) test set.
    let preds = model.predict_test(&split);
    let metrics = RunMetrics::compute(&preds, &split.test_labels());
    println!(
        "test metrics: F1 {:.2}%  FPR {:.2}%  AUC-ROC {:.2}%",
        metrics.f1, metrics.fpr, metrics.auc_roc
    );
}
