//! Future-work extension (§V): co-teaching label correction.
//!
//! Trains two independent label correctors and combines their verdicts
//! (agreement → joint confidence, disagreement → keep the noisy label at
//! confidence 0.5), then compares the combined correction against a single
//! corrector's.
//!
//! ```text
//! cargo run --release --example co_teaching
//! ```

use clfd::{Ablation, ClfdConfig, CoTeachingCorrector, LabelCorrector};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Label, Preset, Session};
use clfd_data::word2vec::ActivityEmbeddings;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let split = DatasetKind::Cert.generate(Preset::Smoke, 3);
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let train: Vec<&Session> =
        split.train.iter().map(|&i| &split.corpus.sessions[i]).collect();
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(4);
    let noisy = NoiseModel::Uniform { eta: 0.3 }.apply(&truth, &mut rng);
    let embeddings = ActivityEmbeddings::train(
        &train,
        split.corpus.vocab.len(),
        &cfg.w2v_config(),
        &mut rng,
    );
    let agree = |labels: &[Label]| -> usize {
        labels.iter().zip(&truth).filter(|(a, b)| a == b).count()
    };
    println!("noisy labels agree with ground truth: {}/{}", agree(&noisy), truth.len());

    // Single corrector.
    let single = LabelCorrector::train(
        &train,
        &noisy,
        &embeddings,
        &cfg,
        &Ablation::full(),
        &mut rng,
    );
    let single_labels: Vec<Label> = single
        .predict(&train, &embeddings, &cfg)
        .iter()
        .map(|p| p.label)
        .collect();
    println!("single corrector agreement:            {}/{}", agree(&single_labels), truth.len());

    // Co-teaching pair.
    let co = CoTeachingCorrector::train(
        &train,
        &noisy,
        &embeddings,
        &cfg,
        &Ablation::full(),
        11,
    );
    let result = co.correct(&train, &noisy, &embeddings, &cfg);
    println!(
        "co-teaching agreement:                 {}/{} (correctors agreed on {:.0}% of sessions)",
        agree(&result.labels),
        truth.len(),
        result.agreement * 100.0
    );
}
