//! Wikipedia-vandal scenario: CLFD against two representative baselines
//! (Sel-CL — the closest competing noisy-label method — and CLDet — the
//! noise-sensitive ancestor) on the UMD-Wikipedia-like simulator.
//!
//! ```text
//! cargo run --release --example wiki_vandals
//! ```

use clfd::ClfdConfig;
use clfd_baselines::{cldet::ClDet, selcl::SelCl, ClfdModel, SessionClassifier};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Preset};
use clfd_eval::metrics::RunMetrics;
use clfd_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let split = DatasetKind::UmdWikipedia.generate(Preset::Smoke, 2);
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let truth = split.train_labels();
    let eta = 0.3;
    let mut rng = StdRng::seed_from_u64(5);
    let noisy = NoiseModel::Uniform { eta }.apply(&truth, &mut rng);
    println!("UMD-Wikipedia-like vandal detection at uniform η = {eta}\n");
    println!("{:<8} {:>8} {:>8} {:>9}", "model", "F1%", "FPR%", "AUC-ROC%");

    let models: Vec<Box<dyn SessionClassifier>> = vec![
        Box::new(ClfdModel::default()),
        Box::new(SelCl::default()),
        Box::new(ClDet),
    ];
    for model in &models {
        let preds = model.fit_predict(&split, &noisy, &cfg, 9, &Obs::null());
        let m = RunMetrics::compute(&preds, &split.test_labels());
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>9.2}",
            model.name(),
            m.f1,
            m.fpr,
            m.auc_roc
        );
    }
}
