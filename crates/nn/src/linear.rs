//! Affine (fully-connected) layer.

use crate::Layer;
use clfd_autograd::{Tape, Var};
use clfd_tensor::{init, Matrix};
use rand::Rng;

/// Affine layer `y = x W + b` for `x: batch x in_dim`.
///
/// The CLFD fraud detector's classifier head is a two-layer FCNN of these:
/// an input layer with LeakyReLU and a softmax output layer (§III-B2).
#[derive(Debug, Clone)]
pub struct Linear {
    w: Var,
    b: Var,
    in_dim: usize,
    out_dim: usize,
}

/// Weight-init family for a [`Linear`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearInit {
    /// Xavier/Glorot uniform — tanh/sigmoid/softmax layers.
    Xavier,
    /// He normal — ReLU-family layers.
    He,
}

impl Linear {
    /// Registers a new layer's parameters on `tape` (bias starts at zero).
    pub fn new(
        tape: &mut Tape,
        in_dim: usize,
        out_dim: usize,
        init_kind: LinearInit,
        rng: &mut impl Rng,
    ) -> Self {
        let w = match init_kind {
            LinearInit::Xavier => init::xavier_uniform(in_dim, out_dim, rng),
            LinearInit::He => init::he_normal(in_dim, out_dim, rng),
        };
        Self {
            w: tape.param(w),
            b: tape.param(Matrix::zeros(1, out_dim)),
            in_dim,
            out_dim,
        }
    }

    /// Records `x W + b` on the tape.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        debug_assert_eq!(
            tape.value(x).cols(),
            self.in_dim,
            "Linear expects {} input features",
            self.in_dim
        );
        let xw = tape.matmul(x, self.w);
        tape.add_row_broadcast(xw, self.b)
    }

    /// Value-only `x W + b` for shared concurrent inference: reads the
    /// parameter values from `tape` without recording anything. Performs
    /// the same `Matrix` operations as [`Linear::forward`], so the result
    /// is bit-identical to the tape-recorded pass.
    pub fn infer(&self, tape: &Tape, x: &Matrix) -> Matrix {
        debug_assert_eq!(
            x.cols(),
            self.in_dim,
            "Linear expects {} input features",
            self.in_dim
        );
        x.matmul(tape.value(self.w)).add_row_broadcast(tape.value(self.b))
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Linear {
    fn params(&self) -> Vec<Var> {
        vec![self.w, self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let layer = Linear::new(&mut tape, 5, 3, LinearInit::Xavier, &mut rng);
        tape.seal();
        let x = tape.constant(Matrix::ones(7, 5));
        let y = layer.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (7, 3));
        assert_eq!(layer.params().len(), 2);
    }

    #[test]
    fn infer_is_bit_identical_to_forward() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut tape = Tape::new();
        let layer = Linear::new(&mut tape, 6, 4, LinearInit::He, &mut rng);
        tape.seal();
        let x = Matrix::from_fn(5, 6, |r, c| ((r * 7 + c) as f32 * 0.13).sin());
        let xv = tape.constant(x.clone());
        let y = layer.forward(&mut tape, xv);
        let recorded = tape.value(y).clone();
        tape.reset();
        let inferred = layer.infer(&tape, &x);
        assert_eq!(recorded.shape(), inferred.shape());
        for (a, b) in recorded.as_slice().iter().zip(inferred.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn learns_linear_map() {
        // Fit y = 2x0 - x1 with a 2->1 linear layer.
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let layer = Linear::new(&mut tape, 2, 1, LinearInit::Xavier, &mut rng);
        tape.seal();
        let mut opt = Adam::new(0.05);
        let params = layer.params();
        for _ in 0..400 {
            let x = Matrix::from_fn(8, 2, |r, c| ((r * 2 + c) as f32 * 0.37).sin());
            let target = Matrix::from_fn(8, 1, |r, _| 2.0 * x.get(r, 0) - x.get(r, 1));
            let xv = tape.constant(x);
            let tv = tape.constant(target);
            let pred = layer.forward(&mut tape, xv);
            let err = tape.sub(pred, tv);
            let sq = tape.mul(err, err);
            let loss = tape.mean_all(sq);
            tape.backward(loss);
            opt.step(&mut tape, &params);
            tape.reset();
        }
        let w = tape.value(params[0]);
        assert!((w.get(0, 0) - 2.0).abs() < 0.05, "w0 = {}", w.get(0, 0));
        assert!((w.get(1, 0) + 1.0).abs() < 0.05, "w1 = {}", w.get(1, 0));
    }
}
