//! Optimizers: Adam (the paper's choice, lr = 0.005) and SGD with momentum.

use clfd_autograd::{Tape, Var};
use clfd_tensor::Matrix;
use std::collections::HashMap;

/// Global-norm gradient clipping configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GradClip {
    /// No clipping.
    None,
    /// Rescale all gradients so their global L2 norm is at most the value.
    GlobalNorm(f32),
}

/// Common optimizer interface: consume gradients on the tape and update the
/// parameter values in place.
///
/// The learning-rate accessors and [`Optimizer::reset_state`] exist for the
/// divergence guard ([`crate::guard::TrainGuard`]), which backs off the
/// learning rate and discards stale accumulator state after rolling a model
/// back to a checkpoint.
pub trait Optimizer {
    /// Applies one update step using the gradients currently on the tape.
    fn step(&mut self, tape: &mut Tape, params: &[Var]);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Replaces the learning rate (used by guard backoff).
    fn set_lr(&mut self, lr: f32);

    /// Clears internal accumulator state (moments, velocity, step counters).
    ///
    /// After a checkpoint rollback the accumulators were computed against
    /// parameter trajectories that no longer exist; reusing them would push
    /// the restored parameters along the diverged direction.
    fn reset_state(&mut self);
}

/// Computes the clip factor (≤ 1) for a set of gradients.
fn clip_factor(tape: &Tape, params: &[Var], clip: GradClip) -> f32 {
    match clip {
        GradClip::None => 1.0,
        GradClip::GlobalNorm(max_norm) => {
            let total: f32 = params
                .iter()
                .map(|&p| {
                    let g = tape.grad(p);
                    g.as_slice().iter().map(|x| x * x).sum::<f32>()
                })
                .sum();
            let norm = total.sqrt();
            if norm > max_norm && norm > 0.0 {
                max_norm / norm
            } else {
                1.0
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015) — the optimizer used throughout the
/// paper's experiments with a learning rate of 0.005 (§IV-A2).
#[derive(Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Gradient clipping policy.
    pub clip: GradClip,
    /// Decoupled (AdamW-style) weight decay; 0 disables it.
    pub weight_decay: f32,
    t: u64,
    moments: HashMap<usize, (Matrix, Matrix)>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: GradClip::GlobalNorm(5.0),
            weight_decay: 0.0,
            t: 0,
            moments: HashMap::new(),
        }
    }

    /// Enables decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the gradient-clipping policy.
    pub fn with_clip(mut self, clip: GradClip) -> Self {
        self.clip = clip;
        self
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, tape: &mut Tape, params: &[Var]) {
        self.t += 1;
        let factor = clip_factor(tape, params, self.clip);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for &p in params {
            let g = tape.grad(p).scale(factor);
            let (rows, cols) = g.shape();
            let (m, v) = self
                .moments
                .entry(p.index())
                .or_insert_with(|| (Matrix::zeros(rows, cols), Matrix::zeros(rows, cols)));
            let value = tape.value_mut(p);
            let (ms, vs, gs, xs) =
                (m.as_mut_slice(), v.as_mut_slice(), g.as_slice(), value.as_mut_slice());
            for i in 0..gs.len() {
                ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * gs[i];
                vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * gs[i] * gs[i];
                let m_hat = ms[i] / bc1;
                let v_hat = vs[i] / bc2;
                xs[i] -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * xs[i]);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn reset_state(&mut self) {
        self.t = 0;
        self.moments.clear();
    }
}

/// SGD with (optional) classical momentum.
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Gradient clipping policy.
    pub clip: GradClip,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Creates a plain SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, clip: GradClip::None, velocity: HashMap::new() }
    }

    /// Enables classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, tape: &mut Tape, params: &[Var]) {
        let factor = clip_factor(tape, params, self.clip);
        for &p in params {
            let g = tape.grad(p).scale(factor);
            if self.momentum == 0.0 {
                tape.value_mut(p).add_scaled(&g, -self.lr);
            } else {
                let (rows, cols) = g.shape();
                let v = self
                    .velocity
                    .entry(p.index())
                    .or_insert_with(|| Matrix::zeros(rows, cols));
                for (vi, &gi) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *vi = self.momentum * *vi + gi;
                }
                let vc = v.clone();
                tape.value_mut(p).add_scaled(&vc, -self.lr);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a test matrix from literal data (dimensions always consistent).
    pub(super) fn m(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        Matrix::from_vec(rows, cols, data).expect("test matrix dimensions are consistent")
    }

    /// Minimizes `(w - 3)^2` and checks convergence.
    fn quadratic_convergence(opt: &mut dyn Optimizer, tol: f32, iters: usize) {
        let mut tape = Tape::new();
        let w = tape.param(m(1, 1, vec![0.0]));
        tape.seal();
        for _ in 0..iters {
            let c = tape.constant(m(1, 1, vec![-3.0]));
            let d = tape.add(w, c);
            let sq = tape.mul(d, d);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            opt.step(&mut tape, &[w]);
            tape.reset();
        }
        let wv = tape.value(w).as_slice()[0];
        assert!((wv - 3.0).abs() < tol, "w converged to {wv}");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        quadratic_convergence(&mut Adam::new(0.1), 0.05, 300);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        quadratic_convergence(&mut Sgd::new(0.1), 0.01, 200);
    }

    #[test]
    fn sgd_with_momentum_minimizes_quadratic() {
        quadratic_convergence(&mut Sgd::new(0.02).with_momentum(0.9), 0.05, 300);
    }

    #[test]
    fn global_norm_clip_rescales() {
        let mut tape = Tape::new();
        let w = tape.param(m(1, 2, vec![0.0, 0.0]));
        tape.seal();
        // Loss = 300*w0 + 400*w1 → grad (300, 400), norm 500.
        let weights = m(1, 2, vec![300.0, 400.0]);
        let loss = tape.weighted_sum_all(w, weights);
        tape.backward(loss);
        let mut opt = Sgd::new(1.0);
        opt.clip = GradClip::GlobalNorm(5.0);
        opt.step(&mut tape, &[w]);
        // Clipped gradient is (3, 4): w becomes (-3, -4).
        let v = tape.value(w).as_slice();
        assert!((v[0] + 3.0).abs() < 1e-4 && (v[1] + 4.0).abs() < 1e-4, "{v:?}");
    }

    #[test]
    fn adam_step_counter_advances() {
        let mut tape = Tape::new();
        let w = tape.param(Matrix::zeros(1, 1));
        tape.seal();
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.steps(), 0);
        let loss = tape.sum_all(w);
        tape.backward(loss);
        opt.step(&mut tape, &[w]);
        assert_eq!(opt.steps(), 1);
    }
}

#[cfg(test)]
mod weight_decay_tests {
    use super::tests::m;
    use super::*;

    #[test]
    fn weight_decay_shrinks_unused_parameters() {
        // A parameter with zero gradient must decay toward zero.
        let mut tape = Tape::new();
        let w = tape.param(m(1, 1, vec![4.0]));
        tape.seal();
        let mut opt = Adam::new(0.1).with_weight_decay(0.1);
        for _ in 0..50 {
            let zero = tape.constant(Matrix::zeros(1, 1));
            let prod = tape.mul(w, zero);
            let loss = tape.sum_all(prod);
            tape.backward(loss);
            opt.step(&mut tape, &[w]);
            tape.reset();
        }
        let v = tape.value(w).as_slice()[0];
        assert!(v.abs() < 4.0 * 0.99_f32.powi(40), "w barely decayed: {v}");
    }
}
