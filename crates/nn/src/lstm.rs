//! Multi-layer LSTM session encoder.
//!
//! The paper adopts "LSTM as the foundation of our encoder ... two hidden
//! layers with the same dimensions" and derives the session representation
//! "by averaging the LSTM final hidden layer representations" (§III-B1).
//! [`Lstm::forward_sequence`] returns the top-layer hidden state at every
//! timestep and [`Lstm::mean_pool`] averages them over the valid (unpadded)
//! steps of each session.

use crate::Layer;
use clfd_autograd::{Tape, Var};
use clfd_tensor::{init, Matrix};
use rand::Rng;

#[derive(Debug, Clone)]
struct LstmCell {
    /// Input weights `in_dim x 4*hidden` (gate order: i, f, g, o).
    wx: Var,
    /// Recurrent weights `hidden x 4*hidden`.
    wh: Var,
    /// Bias `1 x 4*hidden`; forget-gate block initialized to 1.
    b: Var,
    hidden: usize,
}

impl LstmCell {
    fn new(tape: &mut Tape, in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let wx = init::xavier_uniform(in_dim, 4 * hidden, rng);
        let wh = init::xavier_uniform(hidden, 4 * hidden, rng);
        // Forget-gate bias of 1 is the standard fix for early-training
        // vanishing memory.
        let mut b = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            b.set(0, c, 1.0);
        }
        Self { wx: tape.param(wx), wh: tape.param(wh), b: tape.param(b), hidden }
    }

    /// Value-only timestep for the shared-inference path: reads parameter
    /// values from the (immutable) tape and evaluates exactly the same
    /// float expressions in the same order as [`LstmCell::step`] (via the
    /// fused [`Matrix::lstm_cell_update`] kernel), so the result is
    /// bit-identical to the tape-recorded forward pass.
    fn infer_step(
        &self,
        tape: &Tape,
        x: &Matrix,
        h_prev: &Matrix,
        c_prev: &Matrix,
    ) -> (Matrix, Matrix) {
        let zx = x.matmul(tape.value(self.wx));
        let zh = h_prev.matmul(tape.value(self.wh));
        let z = zx.add(&zh).add_row_broadcast(tape.value(self.b));
        z.lstm_cell_update(c_prev)
    }

    /// One timestep: returns `(h_t, c_t)`.
    fn step(&self, tape: &mut Tape, x: Var, h_prev: Var, c_prev: Var) -> (Var, Var) {
        let hd = self.hidden;
        let zx = tape.matmul(x, self.wx);
        let zh = tape.matmul(h_prev, self.wh);
        let z = tape.add(zx, zh);
        let z = tape.add_row_broadcast(z, self.b);
        let i_gate = tape.slice_cols(z, 0, hd);
        let f_gate = tape.slice_cols(z, hd, 2 * hd);
        let g_gate = tape.slice_cols(z, 2 * hd, 3 * hd);
        let o_gate = tape.slice_cols(z, 3 * hd, 4 * hd);
        let i = tape.sigmoid(i_gate);
        let f = tape.sigmoid(f_gate);
        let g = tape.tanh(g_gate);
        let o = tape.sigmoid(o_gate);
        let fc = tape.mul(f, c_prev);
        let ig = tape.mul(i, g);
        let c = tape.add(fc, ig);
        let c_tanh = tape.tanh(c);
        let h = tape.mul(o, c_tanh);
        (h, c)
    }
}

/// Stacked LSTM; layer `l > 0` consumes the hidden sequence of layer `l-1`.
#[derive(Debug, Clone)]
pub struct Lstm {
    cells: Vec<LstmCell>,
    in_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Registers a stacked LSTM (`num_layers ≥ 1`) on the tape.
    pub fn new(
        tape: &mut Tape,
        in_dim: usize,
        hidden: usize,
        num_layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_layers >= 1, "LSTM needs at least one layer");
        let mut cells = Vec::with_capacity(num_layers);
        cells.push(LstmCell::new(tape, in_dim, hidden, rng));
        for _ in 1..num_layers {
            cells.push(LstmCell::new(tape, hidden, hidden, rng));
        }
        Self { cells, in_dim, hidden }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Unrolls the LSTM over `xs` (one `batch x in_dim` node per timestep)
    /// and returns the top layer's hidden state at every timestep.
    pub fn forward_sequence(&self, tape: &mut Tape, xs: &[Var]) -> Vec<Var> {
        assert!(!xs.is_empty(), "empty input sequence");
        let batch = tape.value(xs[0]).rows();
        let mut sequence: Vec<Var> = xs.to_vec();
        for cell in &self.cells {
            let mut h = tape.constant(Matrix::zeros(batch, self.hidden));
            let mut c = tape.constant(Matrix::zeros(batch, self.hidden));
            let mut next = Vec::with_capacity(sequence.len());
            for &x in &sequence {
                let (h2, c2) = cell.step(tape, x, h, c);
                h = h2;
                c = c2;
                next.push(h);
            }
            sequence = next;
        }
        sequence
    }

    /// Averages per-timestep hidden states over each row's valid prefix.
    ///
    /// `lengths[r]` is the number of real (unpadded) activities in session
    /// `r`; hidden states at `t >= lengths[r]` contribute nothing to row `r`.
    pub fn mean_pool(&self, tape: &mut Tape, hs: &[Var], lengths: &[usize]) -> Var {
        assert!(!hs.is_empty(), "empty hidden sequence");
        let batch = tape.value(hs[0]).rows();
        assert_eq!(lengths.len(), batch, "one length per batch row");
        let mut acc: Option<Var> = None;
        for (t, &h) in hs.iter().enumerate() {
            let scales: Vec<f32> = lengths
                .iter()
                .map(|&len| if t < len { 1.0 / len.max(1) as f32 } else { 0.0 })
                .collect();
            if scales.iter().all(|&s| s == 0.0) {
                continue;
            }
            let contrib = tape.row_scale(h, scales);
            acc = Some(match acc {
                Some(a) => tape.add(a, contrib),
                None => contrib,
            });
        }
        acc.expect("at least one valid timestep")
    }

    /// Convenience: unroll and mean-pool in one call.
    pub fn encode(&self, tape: &mut Tape, xs: &[Var], lengths: &[usize]) -> Var {
        let hs = self.forward_sequence(tape, xs);
        self.mean_pool(tape, &hs, lengths)
    }

    /// Value-only unroll for shared concurrent inference: the top layer's
    /// hidden state at every timestep, reading parameter values from
    /// `tape` without recording anything, so it needs only `&Tape` and can
    /// run from multiple threads at once.
    ///
    /// Bit-identical to [`Lstm::forward_sequence`] (see
    /// [`LstmCell::infer_step`]).
    pub fn infer_sequence(&self, tape: &Tape, xs: &[Matrix]) -> Vec<Matrix> {
        assert!(!xs.is_empty(), "empty input sequence");
        let batch = xs[0].rows();
        let mut sequence: Vec<Matrix> = xs.to_vec();
        for cell in &self.cells {
            let mut h = Matrix::zeros(batch, self.hidden);
            let mut c = Matrix::zeros(batch, self.hidden);
            let mut next = Vec::with_capacity(sequence.len());
            for x in &sequence {
                let (h2, c2) = cell.infer_step(tape, x, &h, &c);
                h = h2;
                c = c2;
                next.push(h.clone());
            }
            sequence = next;
        }
        sequence
    }

    /// Value-only encode for shared concurrent inference:
    /// [`Lstm::infer_sequence`] followed by length-masked mean pooling.
    ///
    /// Performs exactly the same `Matrix` operations in the same order as
    /// [`Lstm::encode`]'s tape-recorded path, so its output is
    /// bit-identical — the golden determinism test relies on this.
    pub fn infer(&self, tape: &Tape, xs: &[Matrix], lengths: &[usize]) -> Matrix {
        assert!(!xs.is_empty(), "empty input sequence");
        let batch = xs[0].rows();
        assert_eq!(lengths.len(), batch, "one length per batch row");
        let sequence = self.infer_sequence(tape, xs);
        // Mean-pool over each row's valid prefix, mirroring `mean_pool`.
        let mut acc: Option<Matrix> = None;
        for (t, h) in sequence.iter().enumerate() {
            let scales: Vec<f32> = lengths
                .iter()
                .map(|&len| if t < len { 1.0 / len.max(1) as f32 } else { 0.0 })
                .collect();
            if scales.iter().all(|&s| s == 0.0) {
                continue;
            }
            let mut contrib = h.clone();
            for (r, &s) in scales.iter().enumerate() {
                for x in contrib.row_mut(r) {
                    *x *= s;
                }
            }
            acc = Some(match acc {
                Some(a) => a.add(&contrib),
                None => contrib,
            });
        }
        acc.expect("at least one valid timestep")
    }
}

impl Layer for Lstm {
    fn params(&self) -> Vec<Var> {
        self.cells
            .iter()
            .flat_map(|c| [c.wx, c.wh, c.b])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_inputs(tape: &mut Tape, seq: &[Matrix]) -> Vec<Var> {
        seq.iter().map(|m| tape.constant(m.clone())).collect()
    }

    #[test]
    fn forward_shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let lstm = Lstm::new(&mut tape, 4, 6, 2, &mut rng);
        tape.seal();
        assert_eq!(lstm.params().len(), 6); // 3 per layer

        let xs: Vec<Matrix> = (0..5).map(|_| Matrix::ones(3, 4)).collect();
        let vars = step_inputs(&mut tape, &xs);
        let hs = lstm.forward_sequence(&mut tape, &vars);
        assert_eq!(hs.len(), 5);
        assert_eq!(tape.value(hs[0]).shape(), (3, 6));
        let pooled = lstm.mean_pool(&mut tape, &hs, &[5, 3, 1]);
        assert_eq!(tape.value(pooled).shape(), (3, 6));
    }

    #[test]
    fn mean_pool_respects_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let lstm = Lstm::new(&mut tape, 2, 3, 1, &mut rng);
        tape.seal();
        let xs: Vec<Matrix> = (0..4)
            .map(|t| Matrix::full(2, 2, t as f32 * 0.1))
            .collect();
        let vars = step_inputs(&mut tape, &xs);
        let hs = lstm.forward_sequence(&mut tape, &vars);
        // Row 1 has length 2: pooling must equal the average of h_0, h_1.
        let pooled = lstm.mean_pool(&mut tape, &hs, &[4, 2]);
        let expected: Vec<f32> = (0..3)
            .map(|c| (tape.value(hs[0]).get(1, c) + tape.value(hs[1]).get(1, c)) / 2.0)
            .collect();
        for (c, &e) in expected.iter().enumerate() {
            assert!((tape.value(pooled).get(1, c) - e).abs() < 1e-6);
        }
    }

    #[test]
    fn infer_is_bit_identical_to_tape_encode() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut tape = Tape::new();
        let lstm = Lstm::new(&mut tape, 3, 5, 2, &mut rng);
        tape.seal();
        let xs: Vec<Matrix> = (0..6)
            .map(|t| Matrix::from_fn(4, 3, |r, c| ((t * 11 + r * 3 + c) as f32 * 0.17).sin()))
            .collect();
        let lengths = [6, 4, 1, 3];
        let vars = step_inputs(&mut tape, &xs);
        let z = lstm.encode(&mut tape, &vars, &lengths);
        let recorded = tape.value(z).clone();
        tape.reset();
        let inferred = lstm.infer(&tape, &xs, &lengths);
        assert_eq!(recorded.shape(), inferred.shape());
        for (a, b) in recorded.as_slice().iter().zip(inferred.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lstm_learns_sequence_sum_sign() {
        // Classify whether the sum of a short scalar sequence is positive —
        // requires integrating information across timesteps.
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let lstm = Lstm::new(&mut tape, 1, 8, 1, &mut rng);
        let head = crate::linear::Linear::new(
            &mut tape,
            8,
            2,
            crate::linear::LinearInit::Xavier,
            &mut rng,
        );
        tape.seal();
        let mut params = lstm.params();
        params.extend(head.params());
        let mut opt = Adam::new(0.02);

        let mut data_rng = StdRng::seed_from_u64(3);
        let gen = |rng: &mut StdRng| -> (Vec<Matrix>, Vec<usize>) {
            let batch = 16;
            let t = 6;
            let mut seq = vec![Matrix::zeros(batch, 1); t];
            let mut labels = vec![0usize; batch];
            let mut sums = vec![0.0f32; batch];
            for step in seq.iter_mut() {
                for (r, sum) in sums.iter_mut().enumerate() {
                    let v: f32 = rng.gen_range(-1.0..1.0);
                    step.set(r, 0, v);
                    *sum += v;
                }
            }
            for r in 0..batch {
                labels[r] = usize::from(sums[r] > 0.0);
            }
            (seq, labels)
        };

        for _ in 0..150 {
            let (seq, labels) = gen(&mut data_rng);
            let vars = step_inputs(&mut tape, &seq);
            let lens = vec![seq.len(); 16];
            let z = lstm.encode(&mut tape, &vars, &lens);
            let logits = head.forward(&mut tape, z);
            let logp = tape.log_softmax_rows(logits);
            let w = Matrix::from_fn(16, 2, |r, c| {
                if c == labels[r] {
                    -1.0 / 16.0
                } else {
                    0.0
                }
            });
            let loss = tape.weighted_sum_all(logp, w);
            tape.backward(loss);
            opt.step(&mut tape, &params);
            tape.reset();
        }

        // Evaluate accuracy on fresh data.
        let (seq, labels) = gen(&mut data_rng);
        let vars = step_inputs(&mut tape, &seq);
        let z = lstm.encode(&mut tape, &vars, &[seq.len(); 16]);
        let logits = head.forward(&mut tape, z);
        let preds = tape.value(logits).argmax_rows();
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(correct >= 13, "LSTM only classified {correct}/16 correctly");
    }
}
