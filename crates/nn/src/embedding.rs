//! Trainable token-embedding table.

use crate::Layer;
use clfd_autograd::{Tape, Var};
use clfd_tensor::init;
use rand::Rng;

/// Embedding lookup `ids -> rows of a trainable table`.
///
/// Used by the DeepLog and LogBert baselines, which learn log-key embeddings
/// jointly with the model (unlike CLFD, which consumes fixed word2vec
/// activity vectors from `clfd-data`).
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Var,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `vocab x dim` table initialized to N(0, 0.1²).
    pub fn new(tape: &mut Tape, vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let table = init::gaussian(vocab, dim, 0.0, 0.1, rng);
        Self { table: tape.param(table), vocab, dim }
    }

    /// Looks up a batch of token ids, returning an `ids.len() x dim` node.
    ///
    /// # Panics
    /// Panics if any id is out of vocabulary.
    pub fn forward(&self, tape: &mut Tape, ids: &[usize]) -> Var {
        assert!(
            ids.iter().all(|&i| i < self.vocab),
            "embedding id out of range (vocab = {})",
            self.vocab
        );
        tape.gather(self.table, ids.to_vec())
    }

    /// Value-only lookup for shared concurrent inference: copies the table
    /// rows for `ids` without recording a tape node, so it needs only
    /// `&Tape`. Bit-identical to [`Embedding::forward`]'s gather.
    ///
    /// # Panics
    /// Panics if any id is out of vocabulary.
    pub fn infer(&self, tape: &Tape, ids: &[usize]) -> clfd_tensor::Matrix {
        assert!(
            ids.iter().all(|&i| i < self.vocab),
            "embedding id out of range (vocab = {})",
            self.vocab
        );
        let table = tape.value(self.table);
        let mut out = clfd_tensor::Matrix::zeros(ids.len(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            out.row_mut(r).copy_from_slice(table.row(id));
        }
        out
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for Embedding {
    fn params(&self) -> Vec<Var> {
        vec![self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let emb = Embedding::new(&mut tape, 10, 4, &mut rng);
        tape.seal();
        let out = emb.forward(&mut tape, &[3, 3, 7]);
        let v = tape.value(out).clone();
        assert_eq!(v.shape(), (3, 4));
        assert_eq!(v.row(0), v.row(1));
        assert_eq!(v.row(0), tape.value(emb.table).row(3));
    }

    #[test]
    fn duplicate_ids_accumulate_gradient() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let emb = Embedding::new(&mut tape, 5, 2, &mut rng);
        tape.seal();
        let out = emb.forward(&mut tape, &[2, 2]);
        let loss = tape.sum_all(out);
        tape.backward(loss);
        let g = tape.grad(emb.table);
        assert_eq!(g.row(2), &[2.0, 2.0]); // two lookups, accumulated
        assert_eq!(g.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::new();
        let emb = Embedding::new(&mut tape, 12, 6, &mut rng);
        tape.seal();
        let ids = [0, 11, 4, 4, 7];
        let node = emb.forward(&mut tape, &ids);
        let recorded = tape.value(node).clone();
        tape.reset();
        let inferred = emb.infer(&tape, &ids);
        assert_eq!(recorded.shape(), inferred.shape());
        for (a, b) in recorded.as_slice().iter().zip(inferred.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_vocab_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let emb = Embedding::new(&mut tape, 5, 2, &mut rng);
        tape.seal();
        emb.forward(&mut tape, &[5]);
    }
}
