//! Multi-head self-attention and a compact transformer encoder.
//!
//! This is the from-scratch BERT stand-in for the Few-Shot [2] and
//! LogBert [48] baselines (see DESIGN.md's substitution table). It operates
//! on one session at a time: a `T x d` node of activity embeddings plus
//! sinusoidal position encodings.

use crate::linear::{Linear, LinearInit};
use crate::norm::LayerNorm;
use crate::Layer;
use clfd_autograd::{Tape, Var};
use clfd_tensor::Matrix;
use rand::Rng;

/// Multi-head scaled-dot-product self-attention for a single sequence.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Registers projection parameters. `dim` must be divisible by `heads`.
    pub fn new(tape: &mut Tape, dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(heads >= 1 && dim.is_multiple_of(heads), "dim {dim} not divisible by heads {heads}");
        Self {
            wq: Linear::new(tape, dim, dim, LinearInit::Xavier, rng),
            wk: Linear::new(tape, dim, dim, LinearInit::Xavier, rng),
            wv: Linear::new(tape, dim, dim, LinearInit::Xavier, rng),
            wo: Linear::new(tape, dim, dim, LinearInit::Xavier, rng),
            heads,
            dim,
        }
    }

    /// Self-attention over a `T x dim` sequence node.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let dk = self.dim / self.heads;
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        let mut merged: Option<Var> = None;
        for h in 0..self.heads {
            let (s, e) = (h * dk, (h + 1) * dk);
            let qh = tape.slice_cols(q, s, e);
            let kh = tape.slice_cols(k, s, e);
            let vh = tape.slice_cols(v, s, e);
            let scores = tape.matmul_transpose(qh, kh);
            let scaled = tape.scale(scores, 1.0 / (dk as f32).sqrt());
            let attn = tape.softmax_rows(scaled);
            let ctx = tape.matmul(attn, vh);
            merged = Some(match merged {
                Some(m) => tape.concat_cols(m, ctx),
                None => ctx,
            });
        }
        let ctx = merged.expect("at least one head");
        self.wo.forward(tape, ctx)
    }
}

impl Layer for MultiHeadAttention {
    fn params(&self) -> Vec<Var> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }
}

/// One post-norm transformer block: attention + residual + LN, then a
/// two-layer feed-forward + residual + LN.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    ln2: LayerNorm,
}

impl TransformerBlock {
    /// Registers a block with feed-forward width `ff_dim`.
    pub fn new(tape: &mut Tape, dim: usize, heads: usize, ff_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            attn: MultiHeadAttention::new(tape, dim, heads, rng),
            ln1: LayerNorm::new(tape, dim),
            ff1: Linear::new(tape, dim, ff_dim, LinearInit::He, rng),
            ff2: Linear::new(tape, ff_dim, dim, LinearInit::Xavier, rng),
            ln2: LayerNorm::new(tape, dim),
        }
    }

    /// Records the block on the tape (`T x dim` in, `T x dim` out).
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let a = self.attn.forward(tape, x);
        let res1 = tape.add(x, a);
        let n1 = self.ln1.forward(tape, res1);
        let f = self.ff1.forward(tape, n1);
        let f = tape.leaky_relu(f, 0.0); // plain ReLU
        let f = self.ff2.forward(tape, f);
        let res2 = tape.add(n1, f);
        self.ln2.forward(tape, res2)
    }
}

impl Layer for TransformerBlock {
    fn params(&self) -> Vec<Var> {
        let mut p = self.attn.params();
        p.extend(self.ln1.params());
        p.extend(self.ff1.params());
        p.extend(self.ff2.params());
        p.extend(self.ln2.params());
        p
    }
}

/// Stack of transformer blocks with sinusoidal position encodings.
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    blocks: Vec<TransformerBlock>,
    dim: usize,
}

impl TransformerEncoder {
    /// Registers `num_blocks` blocks of the given geometry.
    pub fn new(
        tape: &mut Tape,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        num_blocks: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let blocks = (0..num_blocks)
            .map(|_| TransformerBlock::new(tape, dim, heads, ff_dim, rng))
            .collect();
        Self { blocks, dim }
    }

    /// The classic sinusoidal position-encoding matrix (`T x dim`).
    pub fn positional_encoding(len: usize, dim: usize) -> Matrix {
        Matrix::from_fn(len, dim, |pos, i| {
            let exponent = (2 * (i / 2)) as f32 / dim as f32;
            let angle = pos as f32 / 10_000_f32.powf(exponent);
            if i % 2 == 0 {
                angle.sin()
            } else {
                angle.cos()
            }
        })
    }

    /// Encodes one `T x dim` sequence; position encodings are added first.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let (t, d) = {
            let v = tape.value(x);
            (v.rows(), v.cols())
        };
        debug_assert_eq!(d, self.dim);
        let pe = tape.constant(Self::positional_encoding(t, d));
        let mut h = tape.add(x, pe);
        for b in &self.blocks {
            h = b.forward(tape, h);
        }
        h
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for TransformerEncoder {
    fn params(&self) -> Vec<Var> {
        self.blocks.iter().flat_map(|b| b.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attention_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let mha = MultiHeadAttention::new(&mut tape, 8, 2, &mut rng);
        tape.seal();
        let x = tape.constant(Matrix::from_fn(5, 8, |r, c| ((r + c) as f32 * 0.3).sin()));
        let y = mha.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (5, 8));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_heads_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        MultiHeadAttention::new(&mut tape, 7, 2, &mut rng);
    }

    #[test]
    fn positional_encoding_properties() {
        let pe = TransformerEncoder::positional_encoding(16, 8);
        assert_eq!(pe.shape(), (16, 8));
        // Position 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
        for c in 0..8 {
            let expected = if c % 2 == 0 { 0.0 } else { 1.0 };
            assert!((pe.get(0, c) - expected).abs() < 1e-6);
        }
        // Distinct positions get distinct encodings.
        assert!(pe.row(1) != pe.row(2));
        assert!(pe.as_slice().iter().all(|x| (-1.0..=1.0).contains(x)));
    }

    #[test]
    fn encoder_forward_and_param_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let enc = TransformerEncoder::new(&mut tape, 8, 2, 16, 2, &mut rng);
        tape.seal();
        let x = tape.constant(Matrix::from_fn(6, 8, |r, c| ((r * 8 + c) as f32 * 0.1).cos()));
        let y = enc.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (6, 8));
        let loss = tape.mean_all(y);
        tape.backward(loss);
        // Every block's parameters must receive gradient from the loss.
        let nonzero = enc
            .params()
            .iter()
            .filter(|&&p| tape.grad(p).max_abs() > 0.0)
            .count();
        assert!(
            nonzero > enc.params().len() / 2,
            "only {nonzero}/{} params got gradient",
            enc.params().len()
        );
    }

    #[test]
    fn transformer_learns_first_token_classification() {
        // Predict the (binary) identity of the first token from the pooled
        // encoding — requires attention to route position-0 information.
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let enc = TransformerEncoder::new(&mut tape, 4, 2, 8, 1, &mut rng);
        let head = Linear::new(&mut tape, 4, 2, LinearInit::Xavier, &mut rng);
        tape.seal();
        let mut params = enc.params();
        params.extend(head.params());
        let mut opt = Adam::new(0.01);
        let mut data_rng = StdRng::seed_from_u64(3);

        let run = |train: bool, opt: &mut Adam, tape: &mut Tape, rng: &mut StdRng| -> f32 {
            let mut correct = 0;
            let n = 16;
            for _ in 0..n {
                let label: usize = rng.gen_range(0..2);
                let x = Matrix::from_fn(5, 4, |r, c| {
                    if r == 0 {
                        if label == 1 { 1.0 } else { -1.0 }
                    } else {
                        ((r * 4 + c) as f32 * 0.7).sin() * 0.3
                    }
                });
                let xv = tape.constant(x);
                let h = enc.forward(tape, xv);
                // Mean-pool over timesteps via a constant averaging matrix.
                let avg = tape.constant(Matrix::full(1, 5, 1.0 / 5.0));
                let pooled = tape.matmul(avg, h);
                let logits = head.forward(tape, pooled);
                if tape.value(logits).argmax_rows()[0] == label {
                    correct += 1;
                }
                if train {
                    let logp = tape.log_softmax_rows(logits);
                    let w = Matrix::from_fn(1, 2, |_, c| if c == label { -1.0 } else { 0.0 });
                    let loss = tape.weighted_sum_all(logp, w);
                    tape.backward(loss);
                    opt.step(tape, &params);
                }
                tape.reset();
            }
            correct as f32 / n as f32
        };

        for _ in 0..12 {
            run(true, &mut opt, &mut tape, &mut data_rng);
        }
        let acc = run(false, &mut opt, &mut tape, &mut data_rng);
        assert!(acc >= 0.9, "transformer accuracy {acc}");
    }
}
