//! Parameter snapshots: save / restore model weights.
//!
//! A [`Snapshot`] is the ordered list of parameter matrices of a model (the
//! order is whatever [`Layer::params`](crate::Layer::params) yields). It
//! serializes with serde, so trained models can be persisted as JSON and
//! reloaded into a freshly constructed model of the same architecture.

use clfd_autograd::{Tape, Var};
use clfd_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Ordered parameter values captured from a tape.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Snapshot {
    /// Parameter matrices, in the model's `params()` order.
    pub values: Vec<Matrix>,
}

/// Errors when applying a snapshot to a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Snapshot holds a different number of parameters than the model.
    CountMismatch {
        /// Parameters expected by the model.
        expected: usize,
        /// Parameters present in the snapshot.
        found: usize,
    },
    /// A parameter's shape differs between snapshot and model.
    ShapeMismatch {
        /// Position in the parameter list.
        index: usize,
        /// Shape expected by the model.
        expected: (usize, usize),
        /// Shape present in the snapshot.
        found: (usize, usize),
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CountMismatch { expected, found } => {
                write!(f, "snapshot has {found} parameters, model expects {expected}")
            }
            Self::ShapeMismatch { index, expected, found } => write!(
                f,
                "parameter {index}: snapshot shape {found:?}, model shape {expected:?}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl Snapshot {
    /// Captures the current values of `params` from `tape`.
    pub fn capture(tape: &Tape, params: &[Var]) -> Self {
        Self { values: params.iter().map(|&p| tape.value(p).clone()).collect() }
    }

    /// Writes the captured values back into `params` on `tape`.
    ///
    /// # Errors
    /// Fails without modifying anything if counts or shapes disagree.
    pub fn restore(&self, tape: &mut Tape, params: &[Var]) -> Result<(), SnapshotError> {
        if self.values.len() != params.len() {
            return Err(SnapshotError::CountMismatch {
                expected: params.len(),
                found: self.values.len(),
            });
        }
        for (i, (&p, v)) in params.iter().zip(&self.values).enumerate() {
            if tape.value(p).shape() != v.shape() {
                return Err(SnapshotError::ShapeMismatch {
                    index: i,
                    expected: tape.value(p).shape(),
                    found: v.shape(),
                });
            }
        }
        for (&p, v) in params.iter().zip(&self.values) {
            *tape.value_mut(p) = v.clone();
        }
        Ok(())
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Deserializes from a JSON string.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{Linear, LinearInit};
    use crate::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn capture_restore_round_trip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let layer = Linear::new(&mut tape, 3, 2, LinearInit::Xavier, &mut rng);
        tape.seal();
        let params = layer.params();
        let snap = Snapshot::capture(&tape, &params);

        // Clobber the weights, then restore.
        for &p in &params {
            tape.value_mut(p).map_inplace(|_| 99.0);
        }
        snap.restore(&mut tape, &params).unwrap();
        assert_eq!(Snapshot::capture(&tape, &params), snap);
    }

    #[test]
    fn json_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let layer = Linear::new(&mut tape, 2, 2, LinearInit::He, &mut rng);
        tape.seal();
        let snap = Snapshot::capture(&tape, &layer.params());
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn restore_rejects_wrong_architecture() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let small = Linear::new(&mut tape, 2, 2, LinearInit::Xavier, &mut rng);
        let big = Linear::new(&mut tape, 4, 4, LinearInit::Xavier, &mut rng);
        tape.seal();
        let snap = Snapshot::capture(&tape, &small.params());
        let err = snap.restore(&mut tape, &big.params()).unwrap_err();
        assert!(matches!(err, SnapshotError::ShapeMismatch { .. }));

        let err = snap.restore(&mut tape, &big.params()[..1]).unwrap_err();
        assert!(matches!(err, SnapshotError::CountMismatch { .. }));
    }
}
