//! Divergence guard: fault-tolerant optimizer stepping with
//! checkpoint-rollback recovery.
//!
//! [`TrainGuard`] wraps the `backward → optimizer step → tape reset`
//! sequence of a training loop. Before committing an update it verifies
//! that the loss is finite and unexceptional (an EWMA spike detector
//! catches finite-but-diverging losses) and that every parameter gradient
//! is finite. Healthy steps are applied and periodically checkpointed via
//! [`Snapshot`]; faulty steps are *not* applied — the guard rolls the
//! parameters back to the last checkpoint, backs off the learning rate,
//! clears stale optimizer accumulators, and lets the caller retry with the
//! next batch. Once `max_retries` consecutive steps fault, the guard gives
//! up with a typed [`GuardError`] instead of panicking or silently
//! training on garbage.
//!
//! The guard is deliberately transparent on the healthy path: it never
//! modifies values, gradients, or RNG state, so guarded and unguarded
//! training produce bit-identical trajectories until the first fault.

use crate::fault::FaultInjector;
use crate::optim::Optimizer;
use crate::snapshot::Snapshot;
use clfd_autograd::{Tape, Var};
use clfd_obs::{Event, GuardAction, Obs};

/// Tuning knobs for [`TrainGuard`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// A loss counts as a spike when it exceeds
    /// `spike_factor * ewma + spike_margin`.
    pub spike_factor: f32,
    /// Absolute slack added to the spike threshold so small-loss noise
    /// (e.g. a GCE loss fluctuating around 0.1) never trips the detector.
    pub spike_margin: f32,
    /// Smoothing coefficient of the loss EWMA (weight of the newest loss).
    pub ewma_alpha: f32,
    /// Number of initial steps exempt from spike detection, letting the
    /// EWMA settle while early losses are still moving fast.
    pub warmup_steps: u64,
    /// Consecutive faulty steps tolerated before giving up.
    pub max_retries: u32,
    /// Learning-rate multiplier applied per consecutive recovery
    /// (`0.5` halves the rate on each retry).
    pub lr_backoff: f32,
    /// Learning-rate multiplier applied at each checkpoint while the rate
    /// sits below its starting value, undoing backoff once training is
    /// stable again (capped at the starting rate, so transient faults do
    /// not permanently slow training down). `1.0` disables re-warming.
    pub lr_rewarm: f32,
    /// A checkpoint is captured every this many healthy steps.
    pub snapshot_every: u64,
    /// Global gradient-norm ceiling applied to healthy steps (the L2 norm
    /// over *all* guarded parameters is rescaled to this bound when it
    /// exceeds it). `None` disables clipping and leaves guarded training
    /// bit-identical to unguarded training.
    pub max_grad_norm: Option<f32>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            spike_factor: 4.0,
            spike_margin: 1.0,
            ewma_alpha: 0.1,
            warmup_steps: 5,
            max_retries: 3,
            lr_backoff: 0.5,
            lr_rewarm: 2.0,
            snapshot_every: 10,
            max_grad_norm: None,
        }
    }
}

impl GuardConfig {
    /// A loose preset for production training loops whose losses move
    /// fast early on (cross-entropy on freshly initialised heads,
    /// contrastive losses over growing batches). The spike threshold is
    /// twice as permissive as [`GuardConfig::default`] and warmup twice
    /// as long, so healthy-but-noisy trajectories never trip the
    /// detector while genuine NaN/Inf faults and order-of-magnitude
    /// blowups are still caught.
    pub fn conservative() -> Self {
        Self {
            spike_factor: 8.0,
            spike_margin: 2.0,
            warmup_steps: 10,
            ..Self::default()
        }
    }
}

/// What the guard detected on a faulty step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The loss evaluated to NaN or infinity.
    NonFiniteLoss,
    /// The loss is finite but exceeded the EWMA spike threshold.
    LossSpike {
        /// Observed loss value.
        loss: f32,
        /// EWMA of recent healthy losses at detection time.
        ewma: f32,
    },
    /// A parameter gradient contains NaN or infinity.
    NonFiniteGrad {
        /// Position of the offending parameter in the guarded `params` slice.
        param_index: usize,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::NonFiniteLoss => write!(f, "non-finite loss"),
            Fault::LossSpike { loss, ewma } => {
                write!(f, "loss spike ({loss} against an EWMA of {ewma})")
            }
            Fault::NonFiniteGrad { param_index } => {
                write!(f, "non-finite gradient on parameter {param_index}")
            }
        }
    }
}

/// Result of a successful [`TrainGuard::step`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// The update was healthy and has been applied.
    Applied,
    /// A fault was detected; the update was discarded, parameters were
    /// rolled back to the last checkpoint, and the learning rate was
    /// reduced. The caller should simply continue with the next batch.
    Recovered(Fault),
}

/// Terminal guard failure: the retry budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardError {
    /// Guarded step index at which training was abandoned.
    pub step: u64,
    /// Number of consecutive recoveries attempted before giving up.
    pub retries: u32,
    /// The fault observed on the final attempt.
    pub fault: Fault,
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "training diverged at step {}: {} ({} consecutive rollbacks exhausted the retry budget)",
            self.step, self.fault, self.retries
        )
    }
}

impl std::error::Error for GuardError {}

/// Checkpoint of parameter values plus the learning rate they were
/// captured under.
#[derive(Debug)]
struct Checkpoint {
    snapshot: Snapshot,
    lr: f32,
}

/// Fault-tolerant wrapper around a training loop's optimizer steps.
///
/// One guard instance watches one `(tape, optimizer, params)` triple for
/// the duration of a training phase. See the [module docs](self) for the
/// recovery protocol.
#[derive(Debug, Default)]
pub struct TrainGuard {
    cfg: GuardConfig,
    injector: Option<FaultInjector>,
    obs: Obs,
    stage: String,
    ewma: Option<f32>,
    base_lr: Option<f32>,
    step_idx: u64,
    consecutive_retries: u32,
    recoveries: u64,
    last_grad_norm: Option<f32>,
    checkpoint: Option<Checkpoint>,
}

impl TrainGuard {
    /// Creates a guard with the given configuration.
    pub fn new(cfg: GuardConfig) -> Self {
        Self { cfg, ..Self::default() }
    }

    /// Attaches a deterministic fault injector (test harness). Injected
    /// corruption is applied after `backward()` and before the health
    /// checks, exactly where real numerical faults surface.
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Attaches a telemetry handle; every intervention (rollback, clip,
    /// re-warm, abort, injected fault) is emitted as an [`Event`] tagged
    /// with `stage`. Telemetry only reads values the guard already
    /// computed, so guarded training stays bit-identical with or without
    /// a recorder.
    pub fn with_obs(mut self, obs: Obs, stage: impl Into<String>) -> Self {
        self.obs = obs;
        self.stage = stage.into();
        self
    }

    /// Number of guarded steps attempted so far (healthy or not).
    pub fn steps(&self) -> u64 {
        self.step_idx
    }

    /// Total number of rollback recoveries performed.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Faults the attached injector has fired so far (empty without one).
    pub fn injected_faults(&self) -> &[(u64, crate::fault::FaultKind)] {
        self.injector.as_ref().map_or(&[], FaultInjector::fired)
    }

    /// Global gradient L2 norm observed on the most recent healthy step.
    /// Computed only when clipping or telemetry asks for it; `None`
    /// otherwise (and after a rollback, whose gradients were discarded).
    pub fn last_grad_norm(&self) -> Option<f32> {
        self.last_grad_norm
    }

    /// Runs one guarded training step: `backward(loss)`, health checks,
    /// optimizer update, `tape.reset()`.
    ///
    /// On a healthy step the update is applied and `Ok(Applied)` returned.
    /// On a faulty step the update is discarded, the parameters roll back
    /// to the last checkpoint, the learning rate is multiplied by
    /// `lr_backoff` per consecutive retry, and `Ok(Recovered(fault))` is
    /// returned so the caller can proceed with the next batch. After
    /// `max_retries` *consecutive* faults the guard returns a
    /// [`GuardError`].
    ///
    /// The tape is reset in every case, so the caller must not touch
    /// non-persistent nodes afterwards.
    pub fn step(
        &mut self,
        tape: &mut Tape,
        opt: &mut dyn Optimizer,
        params: &[Var],
        loss: Var,
    ) -> Result<StepOutcome, GuardError> {
        let step = self.step_idx;
        self.step_idx += 1;
        // The pristine starting rate is the ceiling re-warming climbs back
        // toward after backoff.
        if self.base_lr.is_none() {
            self.base_lr = Some(opt.lr());
        }

        if let Some(fault) = self.check_loss(tape, loss) {
            // Skip backward(): differentiating a non-finite or spiking loss
            // would only spread the damage into the gradients.
            return self.recover(tape, opt, params, step, fault);
        }

        tape.backward(loss);
        let fired_before = self.injector.as_ref().map_or(0, |i| i.fired().len());
        if let Some(injector) = self.injector.as_mut() {
            injector.apply(step, tape, opt, params);
        }
        if let Some(injector) = self.injector.as_ref() {
            for &(at, kind) in &injector.fired()[fired_before..] {
                self.obs.emit(Event::FaultInjected {
                    stage: self.stage.clone(),
                    step: at,
                    kind: kind.to_string(),
                });
            }
        }
        if let Some(idx) = params.iter().position(|&p| tape.grad_has_non_finite(p)) {
            return self.recover(tape, opt, params, step, Fault::NonFiniteGrad { param_index: idx });
        }
        // The norm is a pure read of already-computed gradients; skipping
        // it when nobody wants it keeps the no-clip no-telemetry path free.
        self.last_grad_norm = None;
        if self.cfg.max_grad_norm.is_some() || self.obs.enabled() {
            let norm = global_grad_norm(tape, params);
            self.last_grad_norm = Some(norm);
            if let Some(max_norm) = self.cfg.max_grad_norm {
                if norm > max_norm && norm > 0.0 {
                    scale_grads(tape, params, max_norm / norm);
                    self.obs.emit(Event::Guard {
                        stage: self.stage.clone(),
                        step,
                        action: GuardAction::Clip,
                        detail: format!("grad norm {norm} clipped to {max_norm}"),
                        lr: opt.lr(),
                    });
                }
            }
        }

        // Healthy: checkpoint the pre-update parameters on the configured
        // cadence (always including step 0, so a rollback target exists
        // before the first update can go wrong). Reaching a checkpoint also
        // certifies a stable stretch, so a backed-off learning rate is
        // re-warmed one notch toward its starting value — a transient fault
        // must not depress the rate for the rest of the run. (If the higher
        // rate re-diverges, the next recovery simply backs it off again.)
        if step.is_multiple_of(self.cfg.snapshot_every) {
            if let Some(base) = self.base_lr {
                if opt.lr() < base {
                    let before = opt.lr();
                    opt.set_lr((opt.lr() * self.cfg.lr_rewarm).min(base));
                    if opt.lr() != before {
                        self.obs.emit(Event::Guard {
                            stage: self.stage.clone(),
                            step,
                            action: GuardAction::Rewarm,
                            detail: format!("lr re-warmed from {before} toward base {base}"),
                            lr: opt.lr(),
                        });
                    }
                }
            }
            self.checkpoint =
                Some(Checkpoint { snapshot: Snapshot::capture(tape, params), lr: opt.lr() });
        }
        let loss_val = tape.scalar(loss);
        self.ewma = Some(match self.ewma {
            None => loss_val,
            Some(e) => e + self.cfg.ewma_alpha * (loss_val - e),
        });
        self.consecutive_retries = 0;
        opt.step(tape, params);
        tape.reset();
        Ok(StepOutcome::Applied)
    }

    /// Loss health check: finite and below the EWMA spike threshold.
    fn check_loss(&self, tape: &Tape, loss: Var) -> Option<Fault> {
        let loss_val = tape.scalar(loss);
        if !loss_val.is_finite() {
            return Some(Fault::NonFiniteLoss);
        }
        if self.step_idx > self.cfg.warmup_steps {
            if let Some(ewma) = self.ewma {
                let threshold = self.cfg.spike_factor * ewma.max(0.0) + self.cfg.spike_margin;
                if loss_val > threshold {
                    return Some(Fault::LossSpike { loss: loss_val, ewma });
                }
            }
        }
        None
    }

    /// Rollback path: discard the step, restore the last checkpoint, back
    /// off the learning rate, and clear optimizer accumulators.
    fn recover(
        &mut self,
        tape: &mut Tape,
        opt: &mut dyn Optimizer,
        params: &[Var],
        step: u64,
        fault: Fault,
    ) -> Result<StepOutcome, GuardError> {
        tape.reset();
        self.consecutive_retries += 1;
        self.recoveries += 1;
        self.last_grad_norm = None;
        if self.consecutive_retries > self.cfg.max_retries {
            let err = GuardError { step, retries: self.consecutive_retries - 1, fault };
            self.obs.emit(Event::Guard {
                stage: self.stage.clone(),
                step,
                action: GuardAction::Abort,
                detail: err.to_string(),
                lr: opt.lr(),
            });
            return Err(err);
        }
        // Back off from the *smaller* of the live rate and the checkpointed
        // rate: the live rate may have been corrupted upward (LR blow-up),
        // while the checkpointed rate may predate earlier backoffs. The
        // reduced rate is written back into the checkpoint so repeated
        // recoveries keep compounding even across interleaved healthy steps.
        let base = self.checkpoint.as_ref().map_or(opt.lr(), |cp| opt.lr().min(cp.lr));
        let new_lr = base * self.cfg.lr_backoff;
        if let Some(cp) = &mut self.checkpoint {
            cp.snapshot
                .restore(tape, params)
                .expect("checkpoint captured from these exact params");
            cp.lr = new_lr;
        }
        // Without a checkpoint (fault before the first healthy step) the
        // parameters are still at initialisation; only the rate backs off.
        opt.set_lr(new_lr);
        opt.reset_state();
        self.obs.emit(Event::Guard {
            stage: self.stage.clone(),
            step,
            action: GuardAction::Rollback,
            detail: format!(
                "{fault}; rolled back, lr backed off to {new_lr} (retry {}/{})",
                self.consecutive_retries, self.cfg.max_retries
            ),
            lr: new_lr,
        });
        // The spike baseline belongs to the diverged trajectory; let it
        // re-settle on the restored one.
        self.ewma = None;
        Ok(StepOutcome::Recovered(fault))
    }
}

/// Global L2 norm over the gradients of `params` (pure read).
fn global_grad_norm(tape: &mut Tape, params: &[Var]) -> f32 {
    let mut sq_sum = 0.0_f64;
    for &p in params {
        for &g in tape.grad_mut(p).as_slice() {
            sq_sum += f64::from(g) * f64::from(g);
        }
    }
    sq_sum.sqrt() as f32
}

/// Rescales every parameter gradient in place by `scale`.
fn scale_grads(tape: &mut Tape, params: &[Var], scale: f32) {
    for &p in params {
        for g in tape.grad_mut(p).as_mut_slice() {
            *g *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{GradClip, Sgd};
    use clfd_tensor::Matrix;

    /// Builds a sealed tape holding one scalar parameter.
    fn scalar_param(init: f32) -> (Tape, Var) {
        let mut tape = Tape::new();
        let w = tape.param(Matrix::from_vec(1, 1, vec![init]).unwrap());
        tape.seal();
        (tape, w)
    }

    /// Records the quadratic loss `(w - 3)^2` on the tape.
    fn quadratic_loss(tape: &mut Tape, w: Var) -> Var {
        let c = tape.constant(Matrix::from_vec(1, 1, vec![-3.0]).unwrap());
        let d = tape.add(w, c);
        let sq = tape.mul(d, d);
        tape.sum_all(sq)
    }

    #[test]
    fn healthy_training_is_unaffected() {
        // Guarded and unguarded optimisation of the same problem from the
        // same init must produce bit-identical parameters.
        let (mut tape_a, wa) = scalar_param(0.0);
        let mut opt_a = Sgd::new(0.1);
        for _ in 0..40 {
            let loss = quadratic_loss(&mut tape_a, wa);
            tape_a.backward(loss);
            opt_a.step(&mut tape_a, &[wa]);
            tape_a.reset();
        }

        let (mut tape_b, wb) = scalar_param(0.0);
        let mut opt_b = Sgd::new(0.1);
        let mut guard = TrainGuard::new(GuardConfig::default());
        for _ in 0..40 {
            let loss = quadratic_loss(&mut tape_b, wb);
            let out = guard.step(&mut tape_b, &mut opt_b, &[wb], loss).unwrap();
            assert_eq!(out, StepOutcome::Applied);
        }

        assert_eq!(tape_a.value(wa).as_slice(), tape_b.value(wb).as_slice());
        assert_eq!(guard.recoveries(), 0);
    }

    #[test]
    fn gradient_clipping_bounds_the_update() {
        // At w = 0 the quadratic's gradient is 2(w - 3) = -6 (norm 6);
        // clipped to norm 1 it becomes -1, so SGD at lr 0.1 moves w to
        // exactly +0.1 instead of +0.6.
        let cfg = GuardConfig { max_grad_norm: Some(1.0), ..GuardConfig::default() };
        let (mut tape, w) = scalar_param(0.0);
        let mut opt = Sgd::new(0.1);
        let mut guard = TrainGuard::new(cfg);
        let loss = quadratic_loss(&mut tape, w);
        assert_eq!(guard.step(&mut tape, &mut opt, &[w], loss).unwrap(), StepOutcome::Applied);
        let v = tape.value(w).as_slice()[0];
        assert!((v - 0.1).abs() < 1e-6, "clipped update moved w to {v}");
    }

    #[test]
    fn non_finite_loss_rolls_back_without_update() {
        let (mut tape, w) = scalar_param(1.0);
        let mut opt = Sgd::new(0.1);
        let mut guard = TrainGuard::new(GuardConfig::default());
        // One healthy step so a checkpoint exists.
        let loss = quadratic_loss(&mut tape, w);
        guard.step(&mut tape, &mut opt, &[w], loss).unwrap();

        // Poison the parameter value and present it as the "loss": the
        // guard must flag it before backward() ever runs.
        *tape.value_mut(w) = Matrix::from_vec(1, 1, vec![f32::NAN]).unwrap();
        let out = guard.step(&mut tape, &mut opt, &[w], w).unwrap();
        assert_eq!(out, StepOutcome::Recovered(Fault::NonFiniteLoss));
        // Rollback restored the checkpointed (pre-first-update) value.
        assert_eq!(tape.value(w).as_slice()[0], 1.0);
        // Backoff halved the checkpointed learning rate.
        assert!((opt.lr() - 0.05).abs() < 1e-7, "lr {}", opt.lr());
        assert_eq!(guard.recoveries(), 1);
    }

    #[test]
    fn loss_spike_is_detected_after_warmup() {
        let cfg = GuardConfig { warmup_steps: 3, ..GuardConfig::default() };
        let (mut tape, w) = scalar_param(2.9);
        let mut opt = Sgd::new(0.001);
        let mut guard = TrainGuard::new(cfg);
        // Settle the EWMA near the tiny quadratic loss (~0.01).
        for _ in 0..8 {
            let loss = quadratic_loss(&mut tape, w);
            assert_eq!(guard.step(&mut tape, &mut opt, &[w], loss).unwrap(), StepOutcome::Applied);
        }
        // Teleport the parameter far away: loss jumps to ~2500, well past
        // 4 * ewma + 1.
        *tape.value_mut(w) = Matrix::from_vec(1, 1, vec![-47.0]).unwrap();
        let loss = quadratic_loss(&mut tape, w);
        match guard.step(&mut tape, &mut opt, &[w], loss).unwrap() {
            StepOutcome::Recovered(Fault::LossSpike { loss, .. }) => {
                assert!(loss > 2000.0, "spike loss {loss}");
            }
            other => panic!("expected a spike recovery, got {other:?}"),
        }
        // The rollback re-landed the parameter on a checkpointed value.
        let restored = tape.value(w).as_slice()[0];
        assert!((restored - 2.9).abs() < 0.1, "restored to {restored}");
    }

    #[test]
    fn retry_budget_exhaustion_returns_typed_error() {
        let cfg = GuardConfig { max_retries: 2, ..GuardConfig::default() };
        let (mut tape, w) = scalar_param(0.5);
        let mut opt = Sgd::new(0.1);
        let mut guard = TrainGuard::new(cfg);
        let loss = quadratic_loss(&mut tape, w);
        guard.step(&mut tape, &mut opt, &[w], loss).unwrap();

        let mut failures = 0;
        let err = loop {
            *tape.value_mut(w) = Matrix::from_vec(1, 1, vec![f32::INFINITY]).unwrap();
            match guard.step(&mut tape, &mut opt, &[w], w) {
                Ok(StepOutcome::Recovered(_)) => failures += 1,
                Ok(StepOutcome::Applied) => panic!("poisoned step applied"),
                Err(e) => break e,
            }
        };
        assert_eq!(failures, 2);
        assert_eq!(err.fault, Fault::NonFiniteLoss);
        assert_eq!(err.retries, 2);
        let msg = err.to_string();
        assert!(msg.contains("diverged") && msg.contains("retry budget"), "{msg}");
    }

    #[test]
    fn recovery_counter_resets_on_healthy_step() {
        let cfg = GuardConfig { max_retries: 1, ..GuardConfig::default() };
        let (mut tape, w) = scalar_param(0.5);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut guard = TrainGuard::new(cfg);
        // Alternate healthy / poisoned steps: each single fault stays within
        // the consecutive-retry budget, so training never aborts.
        for round in 0..4 {
            let loss = quadratic_loss(&mut tape, w);
            assert_eq!(guard.step(&mut tape, &mut opt, &[w], loss).unwrap(), StepOutcome::Applied);
            *tape.value_mut(w) = Matrix::from_vec(1, 1, vec![f32::NAN]).unwrap();
            let out = guard.step(&mut tape, &mut opt, &[w], w).unwrap();
            assert!(matches!(out, StepOutcome::Recovered(_)), "round {round}");
        }
        assert_eq!(guard.recoveries(), 4);
    }

    #[test]
    fn diverging_sgd_is_caught_and_stabilised() {
        // SGD with an absurd learning rate on a quadratic oscillates with
        // exponentially growing amplitude. The guard must catch the blow-up
        // (spike or non-finite loss) and keep backing the rate off until
        // the optimisation stops diverging. (Re-warming is disabled: a
        // genuinely unstable base rate would otherwise be legitimately
        // revisited at every checkpoint.)
        let cfg = GuardConfig {
            warmup_steps: 0,
            max_retries: 8,
            lr_rewarm: 1.0,
            ..GuardConfig::default()
        };
        let (mut tape, w) = scalar_param(2.0);
        let mut opt = Sgd::new(40.0); // |1 - 2*lr| = 79 → wild divergence
        opt.clip = GradClip::None;
        let mut guard = TrainGuard::new(cfg);
        for _ in 0..60 {
            let loss = quadratic_loss(&mut tape, w);
            guard
                .step(&mut tape, &mut opt, &[w], loss)
                .expect("guard should stabilise, not abort");
        }
        assert!(guard.recoveries() > 0, "divergence was never detected");
        assert!(opt.lr() < 1.0, "learning rate never backed off: {}", opt.lr());
        let v = tape.value(w).as_slice()[0];
        assert!(v.is_finite(), "parameter still non-finite: {v}");
    }

    #[test]
    fn interventions_are_emitted_as_guard_events() {
        use clfd_obs::{Event, GuardAction, MemorySink, Obs};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let cfg = GuardConfig {
            max_grad_norm: Some(1.0),
            snapshot_every: 2,
            ..GuardConfig::default()
        };
        let (mut tape, w) = scalar_param(0.0);
        let mut opt = Sgd::new(0.1);
        let mut guard = TrainGuard::new(cfg).with_obs(Obs::from_arc(sink.clone()), "test/stage");

        // Step 0: gradient norm 6 > 1 → clip event.
        let loss = quadratic_loss(&mut tape, w);
        guard.step(&mut tape, &mut opt, &[w], loss).unwrap();
        assert!((guard.last_grad_norm().unwrap() - 6.0).abs() < 1e-4);

        // A poisoned loss → rollback event.
        *tape.value_mut(w) = Matrix::from_vec(1, 1, vec![f32::NAN]).unwrap();
        guard.step(&mut tape, &mut opt, &[w], w).unwrap();

        // Healthy steps up to the next checkpoint → rewarm event.
        for _ in 0..4 {
            let loss = quadratic_loss(&mut tape, w);
            guard.step(&mut tape, &mut opt, &[w], loss).unwrap();
        }

        let events = sink.take();
        let actions: Vec<GuardAction> = events
            .iter()
            .filter_map(|e| match e {
                Event::Guard { action, stage, .. } => {
                    assert_eq!(stage, "test/stage");
                    Some(*action)
                }
                _ => None,
            })
            .collect();
        assert!(actions.contains(&GuardAction::Clip), "no clip event: {actions:?}");
        assert!(actions.contains(&GuardAction::Rollback), "no rollback event: {actions:?}");
        assert!(actions.contains(&GuardAction::Rewarm), "no rewarm event: {actions:?}");
    }

    #[test]
    fn exhausted_retries_emit_an_abort_event() {
        use clfd_obs::{Event, GuardAction, MemorySink, Obs};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let cfg = GuardConfig { max_retries: 1, ..GuardConfig::default() };
        let (mut tape, w) = scalar_param(0.5);
        let mut opt = Sgd::new(0.1);
        let mut guard = TrainGuard::new(cfg).with_obs(Obs::from_arc(sink.clone()), "test/abort");
        let err = loop {
            *tape.value_mut(w) = Matrix::from_vec(1, 1, vec![f32::NAN]).unwrap();
            match guard.step(&mut tape, &mut opt, &[w], w) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        let events = sink.take();
        let abort = events.iter().find_map(|e| match e {
            Event::Guard { action: GuardAction::Abort, detail, .. } => Some(detail.clone()),
            _ => None,
        });
        assert_eq!(abort.as_deref(), Some(err.to_string().as_str()));
    }

    #[test]
    fn learning_rate_rewarms_after_recovery() {
        let cfg = GuardConfig { snapshot_every: 4, ..GuardConfig::default() };
        let (mut tape, w) = scalar_param(1.0);
        let mut opt = Sgd::new(0.1);
        let mut guard = TrainGuard::new(cfg);
        // Healthy step 0 checkpoints; a poisoned step 1 halves the rate.
        let loss = quadratic_loss(&mut tape, w);
        guard.step(&mut tape, &mut opt, &[w], loss).unwrap();
        *tape.value_mut(w) = Matrix::from_vec(1, 1, vec![f32::NAN]).unwrap();
        guard.step(&mut tape, &mut opt, &[w], w).unwrap();
        assert!((opt.lr() - 0.05).abs() < 1e-7, "lr {}", opt.lr());
        // The next checkpoint (step 4) certifies stability and doubles the
        // rate back to — but never past — the starting value.
        for _ in 0..6 {
            let loss = quadratic_loss(&mut tape, w);
            assert_eq!(
                guard.step(&mut tape, &mut opt, &[w], loss).unwrap(),
                StepOutcome::Applied
            );
        }
        assert!((opt.lr() - 0.1).abs() < 1e-7, "lr never re-warmed: {}", opt.lr());
    }
}
