//! Affine layer normalization.

use crate::Layer;
use clfd_autograd::{Tape, Var};
use clfd_tensor::Matrix;

/// Layer normalization with learnable gain and bias:
/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`, per row.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Var,
    beta: Var,
    eps: f32,
    dim: usize,
}

impl LayerNorm {
    /// Registers gamma = 1, beta = 0 parameters of width `dim`.
    pub fn new(tape: &mut Tape, dim: usize) -> Self {
        Self {
            gamma: tape.param(Matrix::ones(1, dim)),
            beta: tape.param(Matrix::zeros(1, dim)),
            eps: 1e-5,
            dim,
        }
    }

    /// Records the normalization on the tape.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        debug_assert_eq!(tape.value(x).cols(), self.dim);
        let n = tape.layer_norm_rows(x, self.eps);
        let scaled = tape.mul_row_broadcast(n, self.gamma);
        tape.add_row_broadcast(scaled, self.beta)
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for LayerNorm {
    fn params(&self) -> Vec<Var> {
        vec![self.gamma, self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_layer_standardizes_rows() {
        let mut tape = Tape::new();
        let ln = LayerNorm::new(&mut tape, 6);
        tape.seal();
        let x = tape.constant(Matrix::from_fn(3, 6, |r, c| (r * 6 + c) as f32 * 1.7 + 4.0));
        let y = ln.forward(&mut tape, x);
        let v = tape.value(y);
        for r in 0..3 {
            let mean: f32 = v.row(r).iter().sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn gamma_beta_shift_output() {
        let mut tape = Tape::new();
        let ln = LayerNorm::new(&mut tape, 2);
        tape.seal();
        *tape.value_mut(ln.gamma) = Matrix::from_vec(1, 2, vec![2.0, 2.0]).unwrap();
        *tape.value_mut(ln.beta) = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let x = tape.constant(Matrix::from_vec(1, 2, vec![-1.0, 1.0]).unwrap());
        let y = ln.forward(&mut tape, x);
        // Normalized x is (-1, 1); output is 2*(-1,1)+1 = (-1, 3).
        let v = tape.value(y);
        assert!((v.get(0, 0) + 1.0).abs() < 1e-3);
        assert!((v.get(0, 1) - 3.0).abs() < 1e-3);
    }
}
