//! Neural-network layers and optimizers on top of the `clfd-autograd` tape.
//!
//! Layers register their parameters on a [`Tape`](clfd_autograd::Tape)
//! at construction time (before `seal()`), keep the returned [`Var`]
//! handles, and re-record the forward computation each training step.
//! Optimizers ([`optim::Adam`], [`optim::Sgd`]) update parameter values in
//! place after `backward()`.
//!
//! Forward and backward passes inherit the tensor crate's intra-op
//! threading (`clfd_tensor::set_threads`) and its bit-identity contract:
//! layer outputs and parameter gradients are byte-for-byte identical at
//! any kernel thread count.
//!
//! The layer set covers everything the CLFD paper and its baselines need:
//!
//! - [`linear::Linear`] — affine layer (FCNN classifier heads)
//! - [`lstm::Lstm`] — multi-layer LSTM session encoder (§III-B1: "two hidden
//!   layers with the same dimensions", mean-pooled final hidden states)
//! - [`embedding::Embedding`] — trainable token embeddings (DeepLog, LogBert)
//! - [`norm::LayerNorm`] — affine layer normalization (transformer blocks)
//! - [`attention::TransformerEncoder`] — multi-head self-attention encoder
//!   (the BERT stand-in for the Few-Shot and LogBert baselines)
//! - [`snapshot`] — serde-based parameter save/restore
//! - [`guard`] — divergence guard wrapping optimizer steps with health
//!   checks and checkpoint-rollback recovery
//! - [`fault`] — deterministic fault injection for exercising the guard

pub mod attention;
pub mod embedding;
pub mod fault;
pub mod guard;
pub mod linear;
pub mod lstm;
pub mod norm;
pub mod optim;
pub mod snapshot;

pub use attention::{TransformerBlock, TransformerEncoder};
pub use embedding::Embedding;
pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use guard::{Fault, GuardConfig, GuardError, StepOutcome, TrainGuard};
pub use linear::Linear;
pub use lstm::Lstm;
pub use norm::LayerNorm;
pub use optim::{Adam, GradClip, Optimizer, Sgd};

use clfd_autograd::Var;

/// A trainable component that can enumerate its parameter handles.
pub trait Layer {
    /// Parameter handles in a stable order (used by snapshots).
    fn params(&self) -> Vec<Var>;
}
