//! Deterministic fault injection for exercising the divergence guard.
//!
//! A [`FaultPlan`] schedules numerical corruption at exact guarded-step
//! indices; the [`FaultInjector`] executes the plan from inside
//! [`TrainGuard::step`](crate::guard::TrainGuard::step), after
//! `backward()` and before the gradient health checks — the same place
//! real numerical faults (overflowing activations, poisoned batches,
//! mis-set hyper-parameters) surface in a training loop. Being purely
//! step-indexed, an injection run is exactly reproducible.

use crate::optim::Optimizer;
use clfd_autograd::{Tape, Var};

/// A single kind of injected numerical corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Overwrites one element of the first parameter's gradient with NaN.
    NanGrad,
    /// Overwrites one element of the first parameter's gradient with +∞.
    InfGrad,
    /// Multiplies the optimizer's learning rate by the factor, simulating
    /// a runaway LR schedule. Undetectable by the gradient checks; the
    /// guard's loss-spike detector has to catch the ensuing divergence.
    LrBlowup(f32),
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::NanGrad => write!(f, "NaN gradient"),
            FaultKind::InfGrad => write!(f, "infinite gradient"),
            FaultKind::LrBlowup(factor) => write!(f, "learning rate blown up {factor}x"),
        }
    }
}

/// Schedule of faults keyed by guarded-step index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// Empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at guarded-step `step` (builder style). A step may
    /// carry at most one fault; scheduling twice replaces the earlier one.
    pub fn at(mut self, step: u64, kind: FaultKind) -> Self {
        self.faults.retain(|&(s, _)| s != step);
        self.faults.push((step, kind));
        self
    }

    /// Schedules `kind` at every step in `steps`.
    pub fn at_each(mut self, steps: impl IntoIterator<Item = u64>, kind: FaultKind) -> Self {
        for s in steps {
            self = self.at(s, kind);
        }
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Executes a [`FaultPlan`] against a live training step.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired: Vec<(u64, FaultKind)>,
}

impl From<FaultPlan> for FaultInjector {
    fn from(plan: FaultPlan) -> Self {
        Self::new(plan)
    }
}

impl FaultInjector {
    /// Creates an injector for the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, fired: Vec::new() }
    }

    /// Applies any fault scheduled for `step`. Called by the guard with
    /// gradients already populated.
    pub fn apply(&mut self, step: u64, tape: &mut Tape, opt: &mut dyn Optimizer, params: &[Var]) {
        let Some(&(_, kind)) = self.plan.faults.iter().find(|&&(s, _)| s == step) else {
            return;
        };
        match kind {
            FaultKind::NanGrad => Self::poison_grad(tape, params, f32::NAN),
            FaultKind::InfGrad => Self::poison_grad(tape, params, f32::INFINITY),
            FaultKind::LrBlowup(factor) => opt.set_lr(opt.lr() * factor),
        }
        self.fired.push((step, kind));
    }

    /// Faults fired so far, in firing order.
    pub fn fired(&self) -> &[(u64, FaultKind)] {
        &self.fired
    }

    fn poison_grad(tape: &mut Tape, params: &[Var], value: f32) {
        if let Some(&p) = params.first() {
            let g = tape.grad_mut(p);
            if let Some(first) = g.as_mut_slice().first_mut() {
                *first = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{Fault, GuardConfig, StepOutcome, TrainGuard};
    use crate::optim::Sgd;
    use clfd_tensor::Matrix;

    fn scalar_problem() -> (Tape, Var, Sgd) {
        let mut tape = Tape::new();
        let w = tape.param(Matrix::from_vec(1, 1, vec![0.0]).unwrap());
        tape.seal();
        (tape, w, Sgd::new(0.1))
    }

    fn quadratic_loss(tape: &mut Tape, w: Var) -> Var {
        let c = tape.constant(Matrix::from_vec(1, 1, vec![-3.0]).unwrap());
        let d = tape.add(w, c);
        let sq = tape.mul(d, d);
        tape.sum_all(sq)
    }

    #[test]
    fn plan_replaces_duplicate_steps() {
        let plan = FaultPlan::new()
            .at(3, FaultKind::NanGrad)
            .at(3, FaultKind::InfGrad)
            .at_each([7, 9], FaultKind::NanGrad);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn injected_nan_grad_is_caught_and_training_recovers() {
        let (mut tape, w, mut opt) = scalar_problem();
        let plan = FaultPlan::new().at(4, FaultKind::NanGrad).at(11, FaultKind::InfGrad);
        let mut guard =
            TrainGuard::new(GuardConfig::default()).with_injector(FaultInjector::new(plan));
        let mut recovered = Vec::new();
        // Two rollbacks halve the LR twice; the longer horizon gives the
        // backed-off rate time to close the remaining gap.
        for _ in 0..120 {
            let loss = quadratic_loss(&mut tape, w);
            match guard.step(&mut tape, &mut opt, &[w], loss).unwrap() {
                StepOutcome::Applied => {}
                StepOutcome::Recovered(fault) => recovered.push(fault),
            }
        }
        assert_eq!(
            recovered,
            vec![Fault::NonFiniteGrad { param_index: 0 }, Fault::NonFiniteGrad { param_index: 0 }]
        );
        assert_eq!(guard.injected_faults().len(), 2);
        // Despite two rollbacks (and their LR backoffs) the optimisation
        // still converges on the quadratic's minimum.
        let v = tape.value(w).as_slice()[0];
        assert!((v - 3.0).abs() < 0.1, "w converged to {v}");
    }

    #[test]
    fn persistent_faults_exhaust_the_retry_budget() {
        let (mut tape, w, mut opt) = scalar_problem();
        let plan = FaultPlan::new().at_each(0..100, FaultKind::NanGrad);
        let cfg = GuardConfig { max_retries: 3, ..GuardConfig::default() };
        let mut guard = TrainGuard::new(cfg).with_injector(FaultInjector::new(plan));
        let err = loop {
            let loss = quadratic_loss(&mut tape, w);
            match guard.step(&mut tape, &mut opt, &[w], loss) {
                Ok(StepOutcome::Recovered(_)) => continue,
                Ok(StepOutcome::Applied) => panic!("corrupted step applied"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.retries, 3);
        assert_eq!(err.fault, Fault::NonFiniteGrad { param_index: 0 });
    }

    #[test]
    fn lr_blowup_is_caught_by_the_spike_detector() {
        let (mut tape, w, mut opt) = scalar_problem();
        let plan = FaultPlan::new().at(8, FaultKind::LrBlowup(1.0e4));
        let cfg = GuardConfig { warmup_steps: 0, ..GuardConfig::default() };
        let mut guard = TrainGuard::new(cfg).with_injector(FaultInjector::new(plan));
        let mut spiked = false;
        for _ in 0..80 {
            let loss = quadratic_loss(&mut tape, w);
            match guard.step(&mut tape, &mut opt, &[w], loss).unwrap() {
                StepOutcome::Recovered(Fault::LossSpike { .. }) => spiked = true,
                StepOutcome::Recovered(_) | StepOutcome::Applied => {}
            }
        }
        assert!(spiked, "LR blow-up never tripped the spike detector");
        assert!(opt.lr() <= 0.1, "rate not re-stabilised: {}", opt.lr());
        let v = tape.value(w).as_slice()[0];
        assert!(v.is_finite() && (v - 3.0).abs() < 0.5, "w ended at {v}");
    }
}
