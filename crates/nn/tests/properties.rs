//! Property-based tests for the neural-network layers.

use clfd_autograd::Tape;
use clfd_nn::linear::LinearInit;
use clfd_nn::{Layer, Linear, Lstm, TransformerEncoder};
use clfd_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linear layers map any batch size to the declared output width, and
    /// gradients reach both weight and bias.
    #[test]
    fn linear_shape_and_gradient_flow(
        batch in 1_usize..6,
        in_dim in 1_usize..8,
        out_dim in 1_usize..8,
        seed in 0_u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tape = Tape::new();
        let layer = Linear::new(&mut tape, in_dim, out_dim, LinearInit::Xavier, &mut rng);
        tape.seal();
        let x = tape.constant(Matrix::from_fn(batch, in_dim, |r, c| {
            ((r * in_dim + c) as f32 * 0.7).sin()
        }));
        let y = layer.forward(&mut tape, x);
        prop_assert_eq!(tape.value(y).shape(), (batch, out_dim));
        let loss = tape.sum_all(y);
        tape.backward(loss);
        for p in layer.params() {
            let g = tape.grad(p);
            prop_assert!(!g.has_non_finite());
        }
    }

    /// The LSTM is causal: changing inputs at time t must not change hidden
    /// states before t.
    #[test]
    fn lstm_is_causal(seed in 0_u64..50, t_changed in 1_usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tape = Tape::new();
        let lstm = Lstm::new(&mut tape, 3, 4, 1, &mut rng);
        tape.seal();

        let steps: Vec<Matrix> = (0..4)
            .map(|t| Matrix::from_fn(2, 3, |r, c| ((t + r * 3 + c) as f32 * 0.31).cos()))
            .collect();
        let run = |tape: &mut Tape, steps: &[Matrix]| -> Vec<Matrix> {
            let vars: Vec<_> = steps.iter().map(|m| tape.constant(m.clone())).collect();
            let hs = lstm.forward_sequence(tape, &vars);
            let out = hs.iter().map(|&h| tape.value(h).clone()).collect();
            tape.reset();
            out
        };
        let base = run(&mut tape, &steps);
        let mut perturbed_steps = steps.clone();
        perturbed_steps[t_changed].map_inplace(|x| x + 1.0);
        let perturbed = run(&mut tape, &perturbed_steps);

        for t in 0..t_changed {
            prop_assert_eq!(&base[t], &perturbed[t], "state at t={} changed", t);
        }
        // And the change must propagate forward.
        prop_assert!(base[t_changed] != perturbed[t_changed]);
    }

    /// Mean pooling over a full-length mask equals the plain average.
    #[test]
    fn lstm_mean_pool_full_length_is_average(seed in 0_u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tape = Tape::new();
        let lstm = Lstm::new(&mut tape, 2, 3, 1, &mut rng);
        tape.seal();
        let steps: Vec<Matrix> =
            (0..3).map(|t| Matrix::full(2, 2, t as f32 * 0.2 - 0.1)).collect();
        let vars: Vec<_> = steps.iter().map(|m| tape.constant(m.clone())).collect();
        let hs = lstm.forward_sequence(&mut tape, &vars);
        let pooled = lstm.mean_pool(&mut tape, &hs, &[3, 3]);
        for r in 0..2 {
            for c in 0..3 {
                let avg: f32 = (0..3).map(|t| tape.value(hs[t]).get(r, c)).sum::<f32>() / 3.0;
                prop_assert!((tape.value(pooled).get(r, c) - avg).abs() < 1e-5);
            }
        }
    }

    /// The transformer encoder preserves sequence shape for any length.
    #[test]
    fn transformer_preserves_shape(len in 2_usize..8, seed in 0_u64..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tape = Tape::new();
        let enc = TransformerEncoder::new(&mut tape, 8, 2, 16, 1, &mut rng);
        tape.seal();
        let x = tape.constant(Matrix::from_fn(len, 8, |r, c| ((r + c) as f32 * 0.4).sin()));
        let y = enc.forward(&mut tape, x);
        prop_assert_eq!(tape.value(y).shape(), (len, 8));
        prop_assert!(!tape.value(y).has_non_finite());
    }
}

/// Forward and backward passes of the layers are bit-identical at any
/// kernel thread count: layer outputs and parameter gradients must carry
/// exactly the serial bytes (the tensor crate's bit-identity contract,
/// checked here end-to-end through real layer graphs).
#[test]
fn linear_and_lstm_are_bit_identical_across_thread_counts() {
    // 64-wide batch and dims push the gate matmuls past the spawn
    // threshold, so the threaded path genuinely executes.
    let run = |threads: usize| -> Vec<Matrix> {
        clfd_tensor::with_threads(threads, || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut tape = Tape::new();
            let linear = Linear::new(&mut tape, 64, 64, LinearInit::Xavier, &mut rng);
            let lstm = Lstm::new(&mut tape, 64, 64, 1, &mut rng);
            tape.seal();
            let x = tape.constant(clfd_tensor::init::gaussian(64, 64, 0.0, 1.0, &mut rng));
            let h = linear.forward(&mut tape, x);
            let h = tape.tanh(h);
            let hs = lstm.forward_sequence(&mut tape, &[h, x, h]);
            let pooled = lstm.mean_pool(&mut tape, &hs, &vec![3; 64]);
            let loss = tape.mean_all(pooled);
            tape.backward(loss);
            let mut out: Vec<Matrix> = vec![tape.value(pooled).clone()];
            out.extend(tape.param_vars().into_iter().map(|p| tape.grad(p)));
            out
        })
    };
    let serial = run(1);
    for t in [2, 4] {
        let threaded = run(t);
        assert_eq!(serial.len(), threaded.len());
        for (which, (a, b)) in serial.iter().zip(&threaded).enumerate() {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "matrix {which} diverged at {t} threads"
                );
            }
        }
    }
}
