//! One-line import of the blessed CLFD surface.
//!
//! ```
//! use clfd::prelude::*;
//! ```
//!
//! brings in everything a typical training-and-scoring program needs: the
//! builder-based construction surface, the unified [`Scorer`] trait, the
//! configuration and ablation types, the typed error, and the session/data
//! types those APIs consume.

pub use crate::api::{Precision, Scorer};
pub use crate::builder::ClfdBuilder;
pub use crate::config::{Ablation, ClfdConfig};
pub use crate::error::ClfdError;
pub use crate::model::Prediction;
pub use crate::pipeline::{TrainOptions, TrainedClfd};
pub use crate::snapshot::ClfdSnapshot;
pub use clfd_data::session::{DatasetKind, Label, Preset, Session, SplitCorpus};
pub use clfd_nn::GuardConfig;
pub use clfd_obs::Obs;
pub use clfd_tensor::{BlockSizes, KernelPolicy};
