//! Shared model building blocks: the LSTM session-encoder wrapper and the
//! FCNN classifier head used by both the label corrector and the fraud
//! detector.

use crate::config::ClfdConfig;
use crate::error::ClfdError;
use clfd_autograd::{Tape, Var};
use clfd_nn::snapshot::Snapshot;
use clfd_data::batch::{assemble_features, batch_indices, one_hot, SessionBatch};
use clfd_data::session::{Label, Session};
use clfd_data::word2vec::ActivityEmbeddings;
use clfd_losses::{try_cce_loss, try_gce_loss, LossError, MixupPlan};
use clfd_nn::{
    Adam, GuardConfig, GuardError, Layer, Linear, Lstm, Optimizer, StepOutcome, TrainGuard,
};
use clfd_nn::linear::LinearInit;
use clfd_obs::{Event, Obs, Stopwatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use clfd_tensor::Matrix;

/// A fault surfaced while training one model component; callers wrap it
/// into [`crate::error::ClfdError`] with the stage attached.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TrainFault {
    /// A loss constructor rejected its inputs.
    Loss(LossError),
    /// The divergence guard ran out of retries.
    Guard(GuardError),
}

impl std::fmt::Display for TrainFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Loss(e) => e.fmt(f),
            Self::Guard(e) => e.fmt(f),
        }
    }
}

impl TrainFault {
    /// Attaches the pipeline stage, producing the public error type.
    pub(crate) fn into_clfd(self, stage: crate::error::TrainStage) -> crate::error::ClfdError {
        match self {
            Self::Loss(source) => crate::error::ClfdError::Loss { stage, source },
            Self::Guard(source) => crate::error::ClfdError::Diverged { stage, source },
        }
    }
}

impl From<LossError> for TrainFault {
    fn from(e: LossError) -> Self {
        Self::Loss(e)
    }
}

impl From<GuardError> for TrainFault {
    fn from(e: GuardError) -> Self {
        Self::Guard(e)
    }
}

/// An LSTM session encoder with its own tape and optimizer state.
pub(crate) struct EncoderModel {
    pub tape: Tape,
    pub lstm: Lstm,
    pub params: Vec<Var>,
    pub opt: Adam,
}

impl EncoderModel {
    pub fn new(cfg: &ClfdConfig, rng: &mut StdRng) -> Self {
        let mut tape = Tape::new();
        let lstm = Lstm::new(&mut tape, cfg.embed_dim, cfg.hidden, cfg.lstm_layers, rng);
        tape.seal();
        let params = lstm.params();
        let opt = Adam::new(cfg.lr);
        Self { tape, lstm, params, opt }
    }

    /// Records one encoding pass on the tape (caller later resets).
    pub fn encode(&mut self, batch: &SessionBatch) -> Var {
        let steps: Vec<Var> = batch
            .steps
            .iter()
            .map(|m| self.tape.constant(m.clone()))
            .collect();
        self.lstm.encode(&mut self.tape, &steps, &batch.lengths)
    }

    /// Runs one *guarded* step from a recorded (not yet backwarded) loss:
    /// the guard performs `backward`, the health checks, the optimizer
    /// update (or a checkpoint rollback), and the tape reset.
    pub fn guarded_step(
        &mut self,
        guard: &mut TrainGuard,
        loss: Var,
    ) -> Result<StepOutcome, GuardError> {
        guard.step(&mut self.tape, &mut self.opt, &self.params, loss)
    }

    /// Captures the encoder's parameter values.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(&self.tape, &self.params)
    }

    /// Overwrites the encoder's parameters from a snapshot.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), ClfdError> {
        snapshot
            .restore(&mut self.tape, &self.params)
            .map_err(|e| ClfdError::Snapshot(e.to_string()))
    }

    /// Encodes every session with the (frozen) encoder, returning an
    /// `n x hidden` feature matrix.
    ///
    /// This is the shared inference path: it reads parameter values through
    /// [`Lstm::infer`] without recording on the tape, so it takes `&self`
    /// and may run from multiple threads concurrently. The value-only
    /// forward pass performs the same `Matrix` operations as the recorded
    /// one, keeping it bit-identical to training-time encoding.
    pub fn encode_frozen(
        &self,
        sessions: &[&Session],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
    ) -> Matrix {
        assemble_features(sessions, embeddings, cfg.batch_size, cfg.max_seq_len, cfg.hidden, |b| {
            self.lstm.infer(&self.tape, &b.steps, &b.lengths)
        })
    }
}

/// Which classification loss trains a head (full framework vs. ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LossKind {
    /// The paper's mixup GCE (Eq. 2–3).
    MixupGce,
    /// Vanilla GCE (Eq. 1) — the `w/o l^λ_GCE` ablation.
    VanillaGce,
    /// Plain cross-entropy — the `w/o GCE` ablation.
    CrossEntropy,
}

impl LossKind {
    pub fn from_ablation(use_mixup: bool, use_gce: bool) -> Self {
        match (use_gce, use_mixup) {
            (false, _) => LossKind::CrossEntropy,
            (true, true) => LossKind::MixupGce,
            (true, false) => LossKind::VanillaGce,
        }
    }
}

/// The two-layer FCNN classifier of §III-B2 (LeakyReLU hidden layer +
/// softmax output), trained over cached session representations.
pub(crate) struct ClassifierHead {
    tape: Tape,
    l1: Linear,
    l2: Linear,
    params: Vec<Var>,
}

const LEAKY_SLOPE: f32 = 0.01;

impl ClassifierHead {
    pub fn new(hidden: usize, lr: f32, weight_decay: f32, rng: &mut StdRng) -> (Self, Adam) {
        let mut tape = Tape::new();
        let l1 = Linear::new(&mut tape, hidden, hidden, LinearInit::He, rng);
        let l2 = Linear::new(&mut tape, hidden, 2, LinearInit::Xavier, rng);
        tape.seal();
        let mut params = l1.params();
        params.extend(l2.params());
        (Self { tape, l1, l2, params }, Adam::new(lr).with_weight_decay(weight_decay))
    }

    fn logits(&mut self, x: Var) -> Var {
        let h = self.l1.forward(&mut self.tape, x);
        let h = self.tape.leaky_relu(h, LEAKY_SLOPE);
        self.l2.forward(&mut self.tape, h)
    }

    /// Trains the head on cached features with the selected loss, with
    /// every optimizer step wrapped by a divergence guard.
    ///
    /// Mixup (when enabled) follows Algorithm 1 lines 13–19: partners are
    /// drawn from the opposite class *of the supplied labels* within each
    /// mini-batch, λ ~ Beta(β, β).
    ///
    /// # Errors
    /// Returns a [`TrainFault`] when a loss constructor rejects its inputs
    /// or the guard exhausts its retry budget.
    #[allow(clippy::too_many_arguments)]
    pub fn try_train(
        &mut self,
        opt: &mut Adam,
        features: &Matrix,
        labels: &[Label],
        cfg: &ClfdConfig,
        loss_kind: LossKind,
        guard_cfg: &GuardConfig,
        stage: &str,
        obs: &Obs,
        rng: &mut StdRng,
    ) -> Result<(), TrainFault> {
        assert_eq!(features.rows(), labels.len(), "one label per feature row");
        let span = obs.stage(stage);
        let mut guard = TrainGuard::new(*guard_cfg).with_obs(obs.clone(), stage);
        let mut order: Vec<usize> = (0..labels.len()).collect();
        for epoch in 0..cfg.classifier_epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(rng);
            for chunk in batch_indices(&order, cfg.batch_size) {
                let feats = features.select_rows(&chunk);
                let batch_labels: Vec<Label> = chunk.iter().map(|&i| labels[i]).collect();
                let targets = one_hot(&batch_labels);
                let x = self.tape.constant(feats);
                let loss = match loss_kind {
                    LossKind::MixupGce => {
                        let plan = MixupPlan::sample(&batch_labels, cfg.beta, rng);
                        let mixed = plan.apply(&mut self.tape, x);
                        let mixed_targets = plan.mixed_targets(&targets);
                        let logits = self.logits(mixed);
                        try_gce_loss(&mut self.tape, logits, &mixed_targets, cfg.q)?
                    }
                    LossKind::VanillaGce => {
                        let logits = self.logits(x);
                        try_gce_loss(&mut self.tape, logits, &targets, cfg.q)?
                    }
                    LossKind::CrossEntropy => {
                        let logits = self.logits(x);
                        try_cce_loss(&mut self.tape, logits, &targets)?
                    }
                };
                // Pure read of an already-computed scalar — telemetry only.
                loss_sum += f64::from(self.tape.scalar(loss));
                batches += 1;
                guard.step(&mut self.tape, opt, &self.params, loss)?;
            }
            obs.emit(Event::EpochEnd {
                stage: stage.to_string(),
                epoch,
                epochs: cfg.classifier_epochs,
                batches,
                loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                grad_norm: guard.last_grad_norm(),
                lr: opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        span.finish();
        Ok(())
    }

    /// Captures the head's parameter values.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(&self.tape, &self.params)
    }

    /// Overwrites the head's parameters from a snapshot.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), ClfdError> {
        snapshot
            .restore(&mut self.tape, &self.params)
            .map_err(|e| ClfdError::Snapshot(e.to_string()))
    }

    /// Softmax class probabilities for cached features (`n x 2`).
    ///
    /// Shared inference path: value-only forward through [`Linear::infer`],
    /// bit-identical to the tape-recorded logits and safe to call from
    /// multiple threads on one model.
    pub fn predict_proba(&self, features: &Matrix) -> Matrix {
        let h = self.l1.infer(&self.tape, features).leaky_relu(LEAKY_SLOPE);
        self.l2.infer(&self.tape, &h).softmax_rows()
    }
}

/// Prediction with class probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted label (argmax class).
    pub label: Label,
    /// Softmax probability of the malicious class (AUC score).
    pub malicious_score: f32,
    /// Confidence of the predicted class, `max(f_0, f_1)` — the `c_i` the
    /// paper feeds into the weighted supervised contrastive loss.
    pub confidence: f32,
}

/// Converts an `n x 2` probability matrix into [`Prediction`]s.
pub(crate) fn predictions_from_proba(probs: &Matrix) -> Vec<Prediction> {
    (0..probs.rows())
        .map(|r| {
            let p0 = probs.get(r, 0);
            let p1 = probs.get(r, 1);
            Prediction {
                label: if p1 > p0 { Label::Malicious } else { Label::Normal },
                malicious_score: p1,
                confidence: p0.max(p1),
            }
        })
        .collect()
}

/// Samples `count` indices (with replacement if the pool is smaller) from a
/// pool; used for the auxiliary malicious batch `S¹`.
pub(crate) fn sample_pool(pool: &[usize], count: usize, rng: &mut impl Rng) -> Vec<usize> {
    assert!(!pool.is_empty(), "cannot sample from an empty pool");
    (0..count).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn loss_kind_from_ablation_matrix() {
        assert_eq!(LossKind::from_ablation(true, true), LossKind::MixupGce);
        assert_eq!(LossKind::from_ablation(false, true), LossKind::VanillaGce);
        assert_eq!(LossKind::from_ablation(true, false), LossKind::CrossEntropy);
        assert_eq!(LossKind::from_ablation(false, false), LossKind::CrossEntropy);
    }

    #[test]
    fn head_learns_separable_features() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = ClfdConfig {
            classifier_epochs: 60,
            batch_size: 16,
            ..ClfdConfig::for_preset(clfd_data::session::Preset::Smoke)
        };
        let n = 64;
        let features = Matrix::from_fn(n, cfg.hidden, |r, c| {
            let class = if r % 2 == 0 { 1.0 } else { -1.0 };
            class * (0.5 + (c as f32 * 0.3).sin() * 0.2)
        });
        let labels: Vec<Label> = (0..n)
            .map(|r| if r % 2 == 0 { Label::Malicious } else { Label::Normal })
            .collect();
        let (mut head, mut opt) = ClassifierHead::new(cfg.hidden, 0.01, 0.0, &mut rng);
        head.try_train(
            &mut opt,
            &features,
            &labels,
            &cfg,
            LossKind::MixupGce,
            &GuardConfig::conservative(),
            "test/head",
            &Obs::null(),
            &mut rng,
        )
        .expect("separable features train cleanly");
        let probs = head.predict_proba(&features);
        let preds = predictions_from_proba(&probs);
        let correct = preds
            .iter()
            .zip(&labels)
            .filter(|(p, &l)| p.label == l)
            .count();
        assert!(correct as f32 / n as f32 > 0.9, "accuracy {correct}/{n}");
    }

    #[test]
    fn predictions_expose_confidence_and_score() {
        let probs = Matrix::from_vec(2, 2, vec![0.8, 0.2, 0.3, 0.7]).unwrap();
        let preds = predictions_from_proba(&probs);
        assert_eq!(preds[0].label, Label::Normal);
        assert!((preds[0].confidence - 0.8).abs() < 1e-6);
        assert!((preds[0].malicious_score - 0.2).abs() < 1e-6);
        assert_eq!(preds[1].label, Label::Malicious);
        assert!((preds[1].confidence - 0.7).abs() < 1e-6);
    }

    #[test]
    fn sample_pool_draws_from_pool() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = vec![3, 5, 9];
        let s = sample_pool(&pool, 50, &mut rng);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|i| pool.contains(i)));
    }
}
