//! Fluent construction of CLFD training runs.
//!
//! [`TrainedClfd::fit`]/[`try_fit`](TrainedClfd::try_fit) accumulated six
//! positional arguments as the framework grew; [`ClfdBuilder`] replaces
//! that surface with named, defaulted knobs:
//!
//! ```no_run
//! # use clfd::prelude::*;
//! # use clfd_data::session::{DatasetKind, Preset};
//! # let split = DatasetKind::Cert.generate(Preset::Smoke, 1);
//! # let noisy = split.train_labels();
//! let model = TrainedClfd::builder()
//!     .preset(Preset::Smoke)
//!     .ablation(Ablation::without_fraud_detector())
//!     .seed(7)
//!     .try_fit(&split, &noisy)?;
//! # Ok::<(), ClfdError>(())
//! ```
//!
//! Every knob the old surface exposed is here: the hyper-parameter
//! [`config`](ClfdBuilder::config) (or its [`preset`](ClfdBuilder::preset)
//! shorthand), the [`ablation`](ClfdBuilder::ablation) switches, the RNG
//! [`seed`](ClfdBuilder::seed), the divergence-[`guard`](ClfdBuilder::guard)
//! tuning, the [`obs`](ClfdBuilder::obs) telemetry sink, and the
//! fault-injection plans used by the robustness tests.

use crate::api::Precision;
use crate::config::{Ablation, ClfdConfig};
use crate::error::ClfdError;
use crate::pipeline::{TrainOptions, TrainedClfd};
use clfd_data::session::{Label, Preset, SplitCorpus};
use clfd_nn::{FaultPlan, GuardConfig};
use clfd_obs::Obs;
use clfd_tensor::KernelPolicy;

/// Builder for a CLFD training run; start from [`TrainedClfd::builder`].
///
/// Defaults: the `Default` preset's hyper-parameters, the full framework
/// (no ablation), seed 0, a conservative divergence guard, no fault
/// injection, and no telemetry.
#[derive(Debug, Clone)]
pub struct ClfdBuilder {
    cfg: ClfdConfig,
    ablation: Ablation,
    seed: u64,
    opts: TrainOptions,
}

impl Default for ClfdBuilder {
    fn default() -> Self {
        Self {
            cfg: ClfdConfig::for_preset(Preset::Default),
            ablation: Ablation::full(),
            seed: 0,
            opts: TrainOptions::conservative(),
        }
    }
}

impl ClfdBuilder {
    /// A builder with the documented defaults (equivalent to
    /// [`TrainedClfd::builder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the full hyper-parameter configuration.
    pub fn config(mut self, cfg: ClfdConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Shorthand for [`config`](Self::config) with a preset's
    /// hyper-parameters ([`ClfdConfig::for_preset`]).
    pub fn preset(mut self, preset: Preset) -> Self {
        self.cfg = ClfdConfig::for_preset(preset);
        self
    }

    /// Sets the ablation switches (default: the full framework).
    pub fn ablation(mut self, ablation: Ablation) -> Self {
        self.ablation = ablation;
        self
    }

    /// Sets the training RNG seed (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the serving-precision preference carried into exported
    /// artifacts ([`ClfdConfig::precision`]; default:
    /// [`Precision::F32`]). Training math is unaffected — this only tells
    /// the serving stack which precision to quantize the frozen artifact
    /// to, behind its accuracy gate.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.cfg.precision = precision;
        self
    }

    /// Installs an explicit kernel-tuning policy (thread count, matmul
    /// block shape, SIMD lane hint) for the duration of the run via
    /// [`clfd_tensor::with_policy`]. Default: inherit the process-wide
    /// policy. Every policy produces bit-identical trained parameters and
    /// predictions; only wall-clock changes.
    pub fn kernel_policy(mut self, policy: KernelPolicy) -> Self {
        self.opts.kernel_policy = Some(policy);
        self
    }

    /// Tunes the divergence guard shared by all training stages.
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.opts.guard = guard;
        self
    }

    /// Attaches a telemetry sink to every training stage.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.opts.obs = obs;
        self
    }

    /// Injects faults into the corrector's SimCLR pre-training (robustness
    /// tests only).
    pub fn corrector_faults(mut self, plan: FaultPlan) -> Self {
        self.opts.corrector_encoder_faults = Some(plan);
        self
    }

    /// Injects faults into the detector's supervised-contrastive
    /// pre-training (robustness tests only).
    pub fn detector_faults(mut self, plan: FaultPlan) -> Self {
        self.opts.detector_encoder_faults = Some(plan);
        self
    }

    /// Replaces the whole options bag at once (guard + faults + obs) —
    /// the bridge for call sites still holding a [`TrainOptions`].
    pub fn options(mut self, opts: TrainOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Trains CLFD on the training part of `split` with labels
    /// `noisy_labels` (parallel to `split.train`).
    ///
    /// # Errors
    /// Returns [`ClfdError::InvalidInput`] for structurally unusable
    /// inputs, [`ClfdError::Loss`] when a loss rejects a batch, and
    /// [`ClfdError::Diverged`] when a guard's retry budget runs out.
    pub fn try_fit(
        &self,
        split: &SplitCorpus,
        noisy_labels: &[Label],
    ) -> Result<TrainedClfd, ClfdError> {
        TrainedClfd::train_impl(
            split,
            noisy_labels,
            &self.cfg,
            &self.ablation,
            self.seed,
            &self.opts,
        )
    }

    /// Panicking wrapper over [`ClfdBuilder::try_fit`].
    ///
    /// # Panics
    /// Panics on any [`ClfdError`].
    pub fn fit(&self, split: &SplitCorpus, noisy_labels: &[Label]) -> TrainedClfd {
        self.try_fit(split, noisy_labels).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::DatasetKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_fit_is_bit_identical_to_the_legacy_surface() {
        let split = DatasetKind::OpenStack.generate(Preset::Smoke, 5);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = NoiseModel::Uniform { eta: 0.3 }.apply(&truth, &mut rng);
        let ablation = Ablation::without_fraud_detector();

        let legacy = TrainedClfd::fit(&split, &noisy, &cfg, &ablation, 9);
        let built = TrainedClfd::builder()
            .config(cfg)
            .ablation(ablation)
            .seed(9)
            .fit(&split, &noisy);

        let legacy_preds = legacy.predict_test(&split);
        let built_preds = built.predict_test(&split);
        assert_eq!(legacy_preds.len(), built_preds.len());
        for (a, b) in legacy_preds.iter().zip(&built_preds) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.malicious_score.to_bits(), b.malicious_score.to_bits());
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
    }

    #[test]
    fn builder_surfaces_typed_errors() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 2);
        let mut ablation = Ablation::without_fraud_detector();
        ablation.use_label_corrector = false;
        let err = match TrainedClfd::builder()
            .preset(Preset::Smoke)
            .ablation(ablation)
            .try_fit(&split, &split.train_labels())
        {
            Ok(_) => panic!("a corrector-less, detector-less build must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, ClfdError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn kernel_policy_and_precision_leave_training_bit_identical() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 8);
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(6);
        let noisy = NoiseModel::Uniform { eta: 0.25 }.apply(&truth, &mut rng);
        let ablation = Ablation::without_fraud_detector();

        let base = TrainedClfd::builder()
            .preset(Preset::Smoke)
            .ablation(ablation)
            .seed(11)
            .fit(&split, &noisy);
        // An explicit multi-threaded, odd-block policy plus a quantization
        // preference: neither may perturb a single trained bit.
        let tuned = TrainedClfd::builder()
            .preset(Preset::Smoke)
            .ablation(ablation)
            .seed(11)
            .precision(crate::api::Precision::Int8)
            .kernel_policy(
                KernelPolicy::auto()
                    .threads(4)
                    .block_sizes(clfd_tensor::BlockSizes { rows: 3, cols: 8 }),
            )
            .fit(&split, &noisy);

        assert_eq!(tuned.config().precision, crate::api::Precision::Int8);
        let a = base.predict_test(&split);
        let b = tuned.predict_test(&split);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.malicious_score.to_bits(), y.malicious_score.to_bits());
            assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
        }
    }
}
