//! Typed errors for fault-tolerant CLFD training.
//!
//! [`TrainedClfd::try_fit`](crate::TrainedClfd::try_fit) and the
//! `try_train` constructors of the corrector and detector return
//! [`ClfdError`] instead of panicking, so sweep drivers can record a
//! failed cell and keep going. The panicking `fit`/`train` entry points
//! are thin wrappers whose messages are these errors' `Display` output.

use clfd_losses::LossError;
use clfd_nn::GuardError;

/// Which phase of the CLFD pipeline an error came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainStage {
    /// SimCLR pre-training of the label corrector's encoder.
    CorrectorEncoder,
    /// Mixup-GCE training of the label corrector's classifier head.
    CorrectorHead,
    /// Supervised-contrastive pre-training of the fraud detector's encoder.
    DetectorEncoder,
    /// Mixup-GCE training of the fraud detector's classifier head.
    DetectorHead,
}

impl std::fmt::Display for TrainStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::CorrectorEncoder => "label-corrector encoder pre-training",
            Self::CorrectorHead => "label-corrector head training",
            Self::DetectorEncoder => "fraud-detector encoder pre-training",
            Self::DetectorHead => "fraud-detector head training",
        };
        f.write_str(name)
    }
}

/// Error training or restoring a CLFD model.
#[derive(Debug, Clone, PartialEq)]
pub enum ClfdError {
    /// The inputs are structurally unusable (length mismatches, empty
    /// training set, an ablation that disables every model, …).
    InvalidInput(String),
    /// A loss function rejected its inputs during some training stage.
    Loss {
        /// Training stage the loss belongs to.
        stage: TrainStage,
        /// The underlying loss error.
        source: LossError,
    },
    /// Training diverged and the guard's retry budget ran out.
    Diverged {
        /// Training stage that diverged.
        stage: TrainStage,
        /// The underlying guard error.
        source: GuardError,
    },
    /// A serialized model could not be restored (shape or count mismatch,
    /// malformed JSON).
    Snapshot(String),
}

impl std::fmt::Display for ClfdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidInput(msg) => f.write_str(msg),
            Self::Loss { stage, source } => write!(f, "{stage}: {source}"),
            Self::Diverged { stage, source } => write!(f, "{stage}: {source}"),
            Self::Snapshot(msg) => write!(f, "snapshot restore failed: {msg}"),
        }
    }
}

impl std::error::Error for ClfdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Loss { source, .. } => Some(source),
            Self::Diverged { source, .. } => Some(source),
            Self::InvalidInput(_) | Self::Snapshot(_) => None,
        }
    }
}
