//! Extensions beyond the paper — its own stated future work (§V):
//! "we will also explore benefits of integrating supervised contrastive
//! learning model with co-teaching based noisy label learning approaches."
//!
//! [`CoTeachingCorrector`] trains **two** independent label correctors
//! (different initialization and batch order) and combines their verdicts:
//!
//! - where the two agree, the agreed label is used with the *joint*
//!   confidence `√(c_a · c_b)` — agreement between independently-trained
//!   models is strong evidence;
//! - where they disagree, the sample is treated as *unresolved*: the
//!   original noisy label is kept but its confidence is floored at 0.5, so
//!   the fraud detector's weighted supervised contrastive loss (Eq. 5)
//!   nearly mutes the pair terms it appears in.

use crate::config::{Ablation, ClfdConfig};
use crate::corrector::LabelCorrector;
use clfd_data::session::{Label, Session};
use clfd_data::word2vec::ActivityEmbeddings;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two cross-checking label correctors (co-teaching future-work extension).
pub struct CoTeachingCorrector {
    corrector_a: LabelCorrector,
    corrector_b: LabelCorrector,
}

/// Combined correction output of [`CoTeachingCorrector::correct`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoCorrection {
    /// Combined corrected labels.
    pub labels: Vec<Label>,
    /// Combined confidences (joint where agreed, 0.5 where disputed).
    pub confidences: Vec<f32>,
    /// Fraction of samples the two correctors agreed on.
    pub agreement: f32,
}

impl CoTeachingCorrector {
    /// Trains both correctors on the same noisy set with decorrelated
    /// randomness (seeds derived from `seed`).
    pub fn train(
        sessions: &[&Session],
        noisy_labels: &[Label],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
        ablation: &Ablation,
        seed: u64,
    ) -> Self {
        let mut rng_a = StdRng::seed_from_u64(seed.wrapping_mul(2).wrapping_add(1));
        let mut rng_b = StdRng::seed_from_u64(seed.wrapping_mul(2).wrapping_add(2));
        let corrector_a =
            LabelCorrector::train(sessions, noisy_labels, embeddings, cfg, ablation, &mut rng_a);
        let corrector_b =
            LabelCorrector::train(sessions, noisy_labels, embeddings, cfg, ablation, &mut rng_b);
        Self { corrector_a, corrector_b }
    }

    /// Produces the agreement-gated corrections for `sessions` given their
    /// original noisy labels.
    pub fn correct(
        &self,
        sessions: &[&Session],
        noisy_labels: &[Label],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
    ) -> CoCorrection {
        assert_eq!(sessions.len(), noisy_labels.len());
        let preds_a = self.corrector_a.predict(sessions, embeddings, cfg);
        let preds_b = self.corrector_b.predict(sessions, embeddings, cfg);
        let mut labels = Vec::with_capacity(sessions.len());
        let mut confidences = Vec::with_capacity(sessions.len());
        let mut agreed = 0usize;
        for ((a, b), &given) in preds_a.iter().zip(&preds_b).zip(noisy_labels) {
            if a.label == b.label {
                agreed += 1;
                labels.push(a.label);
                confidences.push((a.confidence * b.confidence).sqrt());
            } else {
                labels.push(given);
                confidences.push(0.5);
            }
        }
        CoCorrection {
            labels,
            confidences,
            agreement: agreed as f32 / sessions.len().max(1) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    #[test]
    fn co_teaching_correction_is_at_least_as_accurate_as_noisy_labels() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 51);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let train: Vec<&Session> =
            split.train.iter().map(|&i| &split.corpus.sessions[i]).collect();
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
        let embeddings = ActivityEmbeddings::train(
            &train,
            split.corpus.vocab.len(),
            &cfg.w2v_config(),
            &mut rng,
        );
        let co = CoTeachingCorrector::train(
            &train,
            &noisy,
            &embeddings,
            &cfg,
            &Ablation::full(),
            9,
        );
        let result = co.correct(&train, &noisy, &embeddings, &cfg);
        assert_eq!(result.labels.len(), train.len());
        assert!((0.0..=1.0).contains(&result.agreement));
        let agree = |labels: &[Label]| {
            labels.iter().zip(&truth).filter(|(a, b)| a == b).count()
        };
        assert!(
            agree(&result.labels) >= agree(&noisy),
            "co-teaching correction lost ground: {} vs {}",
            agree(&result.labels),
            agree(&noisy)
        );
        // Disputed samples are floored at confidence 0.5; agreed ones ≥ 0.5.
        assert!(result.confidences.iter().all(|&c| (0.5..=1.0).contains(&c)));
    }
}
