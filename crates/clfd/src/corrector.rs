//! The CLFD label corrector (§III-A).
//!
//! A CLDet-style [3] two-stage model: (1) an LSTM session encoder
//! pre-trained with the self-supervised SimCLR NT-Xent loss over
//! session-reordering views — representations that *cannot* be corrupted by
//! the noisy labels; (2) a classifier head over the frozen representations
//! trained with the paper's **mixup GCE** loss on the noisy labels. Its
//! predictions on the training set become the *corrected labels*, and its
//! softmax confidence `c_i` quantifies correction uncertainty for the fraud
//! detector's weighted supervised contrastive loss.

use crate::config::{Ablation, ClfdConfig};
use crate::error::{ClfdError, TrainStage};
use crate::model::{
    predictions_from_proba, ClassifierHead, EncoderModel, LossKind, Prediction,
};
use crate::snapshot::CorrectorSnapshot;
use clfd_data::augment::clear_view;
use clfd_data::batch::{batch_indices, SessionBatch};
use clfd_data::session::{Label, Session};
use clfd_data::word2vec::ActivityEmbeddings;
use clfd_losses::try_nt_xent;
use clfd_nn::{FaultInjector, GuardConfig, Optimizer, TrainGuard};
use clfd_obs::{Event, Obs, Stopwatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Trained label corrector.
pub struct LabelCorrector {
    encoder: EncoderModel,
    head: ClassifierHead,
}

impl LabelCorrector {
    /// Trains the corrector on the noisy training set.
    ///
    /// Panicking wrapper over [`LabelCorrector::try_train`] with the
    /// default guard and no fault injection.
    ///
    /// # Panics
    /// Panics on any [`ClfdError`].
    pub fn train(
        sessions: &[&Session],
        noisy_labels: &[Label],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
        ablation: &Ablation,
        rng: &mut StdRng,
    ) -> Self {
        Self::try_train(
            sessions,
            noisy_labels,
            embeddings,
            cfg,
            ablation,
            &GuardConfig::conservative(),
            None,
            &Obs::null(),
            rng,
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Trains the corrector on the noisy training set, guarding every
    /// optimizer step against divergence.
    ///
    /// `sessions[i]` carries the noisy label `noisy_labels[i]`.
    /// `encoder_faults` (used by the fault-injection tests) corrupts
    /// chosen SimCLR pre-training steps to exercise the recovery path.
    /// `obs` receives stage spans, per-epoch losses, and every guard
    /// intervention (stages `corrector/simclr` and `corrector/head`).
    ///
    /// # Errors
    /// Returns [`ClfdError::InvalidInput`] for structurally unusable
    /// inputs, [`ClfdError::Loss`] when a loss rejects a batch, and
    /// [`ClfdError::Diverged`] when the guard's retry budget runs out.
    #[allow(clippy::too_many_arguments)]
    pub fn try_train(
        sessions: &[&Session],
        noisy_labels: &[Label],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
        ablation: &Ablation,
        guard_cfg: &GuardConfig,
        encoder_faults: Option<FaultInjector>,
        obs: &Obs,
        rng: &mut StdRng,
    ) -> Result<Self, ClfdError> {
        if sessions.len() != noisy_labels.len() {
            return Err(ClfdError::InvalidInput(format!(
                "one noisy label per training session: {} sessions vs {} labels",
                sessions.len(),
                noisy_labels.len()
            )));
        }
        if sessions.is_empty() {
            return Err(ClfdError::InvalidInput("empty training set".into()));
        }
        let mut encoder = EncoderModel::new(cfg, rng);
        let mut guard =
            TrainGuard::new(*guard_cfg).with_obs(obs.clone(), "corrector/simclr");
        if let Some(injector) = encoder_faults {
            guard = guard.with_injector(injector);
        }

        // Stage 1: self-supervised SimCLR pre-training on reordering views.
        // NT-Xent needs at least two sessions per batch to have negatives.
        let span = obs.stage("corrector/simclr");
        let mut order: Vec<usize> = (0..sessions.len()).collect();
        for epoch in 0..cfg.pretrain_epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(rng);
            for chunk in batch_indices(&order, cfg.batch_size) {
                if chunk.len() < 2 {
                    continue;
                }
                let mut views_a = Vec::with_capacity(chunk.len());
                let mut views_b = Vec::with_capacity(chunk.len());
                for &i in &chunk {
                    views_a.push(clear_view(
                        sessions[i],
                        cfg.reorder_window,
                        cfg.view_dropout,
                        rng,
                    ));
                    views_b.push(clear_view(
                        sessions[i],
                        cfg.reorder_window,
                        cfg.view_dropout,
                        rng,
                    ));
                }
                // Rows 0..N are view A, rows N..2N view B — the pairing
                // NT-Xent expects.
                let all: Vec<&Session> = views_a.iter().chain(views_b.iter()).collect();
                let batch = SessionBatch::build(&all, embeddings, cfg.max_seq_len);
                let z = encoder.encode(&batch);
                let loss = try_nt_xent(&mut encoder.tape, z, cfg.simclr_temperature)
                    .map_err(|source| ClfdError::Loss {
                        stage: TrainStage::CorrectorEncoder,
                        source,
                    })?;
                // Pure read of the recorded loss scalar — telemetry only.
                loss_sum += f64::from(encoder.tape.scalar(loss));
                batches += 1;
                encoder.guarded_step(&mut guard, loss).map_err(|source| {
                    ClfdError::Diverged {
                        stage: TrainStage::CorrectorEncoder,
                        source,
                    }
                })?;
            }
            obs.emit(Event::EpochEnd {
                stage: "corrector/simclr".to_string(),
                epoch,
                epochs: cfg.pretrain_epochs,
                batches,
                loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                grad_norm: guard.last_grad_norm(),
                lr: encoder.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        span.finish();

        // Stage 2: mixup-GCE classifier over the frozen representations.
        // Representations are L2-normalized before the head — the encoder
        // was trained with a cosine-similarity objective, so the unit
        // sphere is its native geometry.
        let features = encoder
            .encode_frozen(sessions, embeddings, cfg)
            .l2_normalize_rows(1e-9);
        let (mut head, mut opt) = ClassifierHead::new(cfg.hidden, cfg.lr, cfg.head_weight_decay, rng);
        let loss_kind = LossKind::from_ablation(ablation.use_mixup, ablation.use_gce);
        head.try_train(
            &mut opt,
            &features,
            noisy_labels,
            cfg,
            loss_kind,
            guard_cfg,
            "corrector/head",
            obs,
            rng,
        )
        .map_err(|fault| fault.into_clfd(TrainStage::CorrectorHead))?;

        Ok(Self { encoder, head })
    }

    /// Captures the corrector's encoder + head parameters.
    pub fn snapshot(&self) -> CorrectorSnapshot {
        CorrectorSnapshot { encoder: self.encoder.snapshot(), head: self.head.snapshot() }
    }

    /// Overwrites the corrector's parameters from a snapshot.
    ///
    /// # Errors
    /// Returns [`ClfdError::Snapshot`] when the snapshot's parameter count
    /// or shapes do not match this model.
    pub fn restore(&mut self, snapshot: &CorrectorSnapshot) -> Result<(), ClfdError> {
        self.encoder.restore(&snapshot.encoder)?;
        self.head.restore(&snapshot.head)
    }

    /// Predicts labels + confidences for arbitrary sessions.
    ///
    /// Applied to the training set this yields the corrected labels `ŷ_i`
    /// and confidences `c_i`; applied to the test set it is the `w/o FD`
    /// ablation's inference path.
    ///
    /// Takes `&self`: inference is value-only (no tape recording), so one
    /// trained corrector can serve predictions from multiple threads.
    pub fn predict(
        &self,
        sessions: &[&Session],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
    ) -> Vec<Prediction> {
        let features = self
            .encoder
            .encode_frozen(sessions, embeddings, cfg)
            .l2_normalize_rows(1e-9);
        let probs = self.head.predict_proba(&features);
        predictions_from_proba(&probs)
    }

    /// Binds this corrector to its embedding table and config, producing a
    /// [`Scorer`](crate::api::Scorer) view of this single stage (the
    /// `w/o FD` ablation's deployment mode).
    pub fn scorer<'a>(
        &'a self,
        embeddings: &'a ActivityEmbeddings,
        cfg: &'a ClfdConfig,
    ) -> crate::api::CorrectorScorer<'a> {
        crate::api::CorrectorScorer { corrector: self, embeddings, cfg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};
    use clfd_data::word2vec::ActivityEmbeddings;
    use rand::SeedableRng;

    /// End-to-end smoke test: on a Smoke-scale CERT dataset with moderate
    /// uniform noise, the corrector's training-set predictions must agree
    /// with the ground truth substantially better than the noisy labels do.
    /// (η = 0.2 here: at Smoke scale — 172 training sessions — the η = 0.45
    /// regime is statistically unrecoverable for *any* method; the
    /// Default-scale benchmark binaries cover the full noise grid.)
    #[test]
    fn corrector_denoises_training_labels() {
        let mut rng = StdRng::seed_from_u64(0);
        let split = DatasetKind::Cert.generate(Preset::Smoke, 42);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);

        let train_sessions: Vec<&Session> =
            split.train.iter().map(|&i| &split.corpus.sessions[i]).collect();
        let truth = split.train_labels();
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);

        let embeddings = ActivityEmbeddings::train(
            &train_sessions,
            split.corpus.vocab.len(),
            &cfg.w2v_config(),
            &mut rng,
        );
        let corrector = LabelCorrector::train(
            &train_sessions,
            &noisy,
            &embeddings,
            &cfg,
            &Ablation::full(),
            &mut rng,
        );
        let preds = corrector.predict(&train_sessions, &embeddings, &cfg);

        let agree = |labels: &[Label]| {
            labels.iter().zip(&truth).filter(|(a, b)| a == b).count() as f32
                / truth.len() as f32
        };
        let corrected: Vec<Label> = preds.iter().map(|p| p.label).collect();
        let noisy_acc = agree(&noisy);
        let corrected_acc = agree(&corrected);
        assert!(
            corrected_acc > noisy_acc + 0.05,
            "correction accuracy {corrected_acc} vs noisy {noisy_acc}"
        );
        // Confidences are valid softmax maxima.
        assert!(preds.iter().all(|p| (0.5..=1.0).contains(&p.confidence)));
    }
}
