//! The unified scoring surface shared by every trained model in the
//! workspace.
//!
//! Training surfaces differ widely — CLFD's two-stage pipeline, the
//! baselines' single joint loops, the frozen serving artifact — but once
//! trained they all answer the same question: *given sessions, how
//! malicious is each one?* [`Scorer`] is that question as a trait, so
//! evaluation and benchmark code can iterate over heterogeneous models
//! (`&dyn Scorer`) without caring how each was fit.
//!
//! Implementations in this workspace:
//!
//! * [`TrainedClfd`](crate::TrainedClfd) — the full pipeline (detector if
//!   trained, else corrector);
//! * [`DetectorScorer`] / [`CorrectorScorer`] — one CLFD stage bound to
//!   its embedding table and config;
//! * every baseline's trained form (`clfd-baselines`);
//! * the frozen `InferenceArtifact` and serving engine (`clfd-serve`).
//!
//! The contract is *thread-safe, value-only inference*: `score` takes
//! `&self`, never mutates model parameters, and one scorer may be shared
//! across threads (`Send + Sync`).

use crate::config::ClfdConfig;
use crate::corrector::LabelCorrector;
use crate::detector::FraudDetector;
use crate::model::Prediction;
use crate::pipeline::TrainedClfd;
use clfd_data::session::Session;
use clfd_data::word2vec::ActivityEmbeddings;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Numeric precision of a serving path.
///
/// Training always runs in `f32` — the workspace-wide bit-identity
/// guarantee is defined over f32 arithmetic and `Precision` never changes
/// it. What `Precision` selects is what the *serving* stack does with a
/// frozen artifact: [`F32`](Precision::F32) serves the weights exactly as
/// exported, while [`Int8`](Precision::Int8) / [`F16`](Precision::F16) ask
/// the serving layer to quantize the weight matrices (per-row affine int8,
/// or IEEE binary16 storage) with f32 accumulation, admitted only through
/// an accuracy-delta gate against the f32 artifact (`clfd-serve`).
///
/// The preference is carried in [`ClfdConfig::precision`] so it rides
/// inside exported artifacts, and independently on the serving
/// `EngineConfig`; both default to `F32`, and artifact JSON written before
/// this field existed deserializes as `F32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Precision {
    /// Full-precision `f32` weights — the training precision and the
    /// reference every quantized path is gated against.
    #[default]
    F32,
    /// IEEE binary16 (half-precision) weight storage with `f32`
    /// accumulation. Halves artifact weight bytes; near-lossless.
    F16,
    /// Per-row affine 8-bit weight quantization (scale + zero-point per
    /// output row) with `f32` accumulation. Quarters weight bytes.
    Int8,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::F32 => "f32",
            Self::F16 => "f16",
            Self::Int8 => "int8",
        })
    }
}

impl FromStr for Precision {
    type Err = String;

    /// Parses the CLI spellings: `f32`, `f16`, and `int8` (plus the common
    /// aliases `fp32`/`fp16`/`half`/`i8`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f32" | "fp32" | "float32" => Ok(Self::F32),
            "f16" | "fp16" | "half" => Ok(Self::F16),
            "int8" | "i8" | "q8" => Ok(Self::Int8),
            other => Err(format!(
                "unknown precision {other:?} (expected f32, f16, or int8)"
            )),
        }
    }
}

/// A trained model that classifies sessions.
///
/// `score` returns one [`Prediction`] per input session, in input order.
/// Implementations must be pure with respect to model state: scoring the
/// same sessions twice yields bitwise-identical predictions, and scoring
/// may run concurrently from multiple threads.
pub trait Scorer: Send + Sync {
    /// Classifies `sessions`, one prediction per input, in input order.
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction>;
}

impl Scorer for TrainedClfd {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.predict_sessions(sessions)
    }
}

impl<S: Scorer + ?Sized> Scorer for &S {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        (**self).score(sessions)
    }
}

impl<S: Scorer + ?Sized> Scorer for Box<S> {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        (**self).score(sessions)
    }
}

/// A trained fraud detector bound to the embedding table and config it was
/// trained with, satisfying [`Scorer`]. Built by [`FraudDetector::scorer`].
pub struct DetectorScorer<'a> {
    pub(crate) detector: &'a FraudDetector,
    pub(crate) embeddings: &'a ActivityEmbeddings,
    pub(crate) cfg: &'a ClfdConfig,
}

impl Scorer for DetectorScorer<'_> {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.detector.predict(sessions, self.embeddings, self.cfg)
    }
}

/// A trained label corrector bound to the embedding table and config it
/// was trained with, satisfying [`Scorer`]. Built by
/// [`LabelCorrector::scorer`]; this is the inference path of the `w/o FD`
/// ablation.
pub struct CorrectorScorer<'a> {
    pub(crate) corrector: &'a LabelCorrector,
    pub(crate) embeddings: &'a ActivityEmbeddings,
    pub(crate) cfg: &'a ClfdConfig,
}

impl Scorer for CorrectorScorer<'_> {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.corrector.predict(sessions, self.embeddings, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scorer_matches_predict_sessions_across_stage_views() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 11);
        let cfg = crate::ClfdConfig::for_preset(Preset::Smoke);
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(4);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
        let model =
            TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 3);
        let test: Vec<&Session> =
            split.test.iter().map(|&i| &split.corpus.sessions[i]).collect();

        let direct = model.predict_sessions(&test);
        // Through the trait object: identical, by construction.
        let generic: &dyn Scorer = &model;
        assert_eq!(generic.score(&test), direct);
        // The detector stage view is the full model's inference path when
        // the detector is trained.
        let detector = model.detector().expect("full ablation trains a detector");
        let bound = detector.scorer(model.embeddings(), model.config());
        assert_eq!(bound.score(&test), direct);
        // The corrector view exists and produces one prediction per input.
        let corrector = model.corrector().expect("full ablation trains a corrector");
        let cpreds = corrector.scorer(model.embeddings(), model.config()).score(&test);
        assert_eq!(cpreds.len(), test.len());
    }

    #[test]
    fn precision_round_trips_through_json_and_cli_spellings() {
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            let json = serde_json::to_string(&p).expect("serialize");
            let back: Precision = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, p);
            // Display and FromStr agree (the CLI contract).
            assert_eq!(p.to_string().parse::<Precision>(), Ok(p));
        }
        assert_eq!("INT8".parse::<Precision>(), Ok(Precision::Int8));
        assert_eq!("fp16".parse::<Precision>(), Ok(Precision::F16));
        assert!("bf16".parse::<Precision>().is_err());
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn configs_without_a_precision_field_deserialize_as_f32() {
        // Artifact JSON written before `ClfdConfig::precision` existed must
        // keep loading (the registry stores such artifacts on disk).
        let json = serde_json::to_string(&ClfdConfig::paper()).expect("serialize");
        let old = json.replace(",\"precision\":\"f32\"", "");
        assert_ne!(old, json, "precision key not found to strip: {json}");
        let cfg: ClfdConfig = serde_json::from_str(&old).expect("old JSON loads");
        assert_eq!(cfg.precision, Precision::F32);
        assert_eq!(cfg, ClfdConfig::paper());
    }
}
