//! The unified scoring surface shared by every trained model in the
//! workspace.
//!
//! Training surfaces differ widely — CLFD's two-stage pipeline, the
//! baselines' single joint loops, the frozen serving artifact — but once
//! trained they all answer the same question: *given sessions, how
//! malicious is each one?* [`Scorer`] is that question as a trait, so
//! evaluation and benchmark code can iterate over heterogeneous models
//! (`&dyn Scorer`) without caring how each was fit.
//!
//! Implementations in this workspace:
//!
//! * [`TrainedClfd`](crate::TrainedClfd) — the full pipeline (detector if
//!   trained, else corrector);
//! * [`DetectorScorer`] / [`CorrectorScorer`] — one CLFD stage bound to
//!   its embedding table and config;
//! * every baseline's trained form (`clfd-baselines`);
//! * the frozen `InferenceArtifact` and serving engine (`clfd-serve`).
//!
//! The contract is *thread-safe, value-only inference*: `score` takes
//! `&self`, never mutates model parameters, and one scorer may be shared
//! across threads (`Send + Sync`).

use crate::config::ClfdConfig;
use crate::corrector::LabelCorrector;
use crate::detector::FraudDetector;
use crate::model::Prediction;
use crate::pipeline::TrainedClfd;
use clfd_data::session::Session;
use clfd_data::word2vec::ActivityEmbeddings;

/// A trained model that classifies sessions.
///
/// `score` returns one [`Prediction`] per input session, in input order.
/// Implementations must be pure with respect to model state: scoring the
/// same sessions twice yields bitwise-identical predictions, and scoring
/// may run concurrently from multiple threads.
pub trait Scorer: Send + Sync {
    /// Classifies `sessions`, one prediction per input, in input order.
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction>;
}

impl Scorer for TrainedClfd {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.predict_sessions(sessions)
    }
}

impl<S: Scorer + ?Sized> Scorer for &S {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        (**self).score(sessions)
    }
}

impl<S: Scorer + ?Sized> Scorer for Box<S> {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        (**self).score(sessions)
    }
}

/// A trained fraud detector bound to the embedding table and config it was
/// trained with, satisfying [`Scorer`]. Built by [`FraudDetector::scorer`].
pub struct DetectorScorer<'a> {
    pub(crate) detector: &'a FraudDetector,
    pub(crate) embeddings: &'a ActivityEmbeddings,
    pub(crate) cfg: &'a ClfdConfig,
}

impl Scorer for DetectorScorer<'_> {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.detector.predict(sessions, self.embeddings, self.cfg)
    }
}

/// A trained label corrector bound to the embedding table and config it
/// was trained with, satisfying [`Scorer`]. Built by
/// [`LabelCorrector::scorer`]; this is the inference path of the `w/o FD`
/// ablation.
pub struct CorrectorScorer<'a> {
    pub(crate) corrector: &'a LabelCorrector,
    pub(crate) embeddings: &'a ActivityEmbeddings,
    pub(crate) cfg: &'a ClfdConfig,
}

impl Scorer for CorrectorScorer<'_> {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.corrector.predict(sessions, self.embeddings, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scorer_matches_predict_sessions_across_stage_views() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 11);
        let cfg = crate::ClfdConfig::for_preset(Preset::Smoke);
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(4);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
        let model =
            TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 3);
        let test: Vec<&Session> =
            split.test.iter().map(|&i| &split.corpus.sessions[i]).collect();

        let direct = model.predict_sessions(&test);
        // Through the trait object: identical, by construction.
        let generic: &dyn Scorer = &model;
        assert_eq!(generic.score(&test), direct);
        // The detector stage view is the full model's inference path when
        // the detector is trained.
        let detector = model.detector().expect("full ablation trains a detector");
        let bound = detector.scorer(model.embeddings(), model.config());
        assert_eq!(bound.score(&test), direct);
        // The corrector view exists and produces one prediction per input.
        let corrector = model.corrector().expect("full ablation trains a corrector");
        let cpreds = corrector.scorer(model.embeddings(), model.config()).score(&test);
        assert_eq!(cpreds.len(), test.len());
    }
}
