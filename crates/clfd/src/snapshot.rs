//! Whole-pipeline parameter snapshots.
//!
//! [`ClfdSnapshot`] captures everything a trained [`TrainedClfd`] needs to
//! reproduce its predictions exactly: the word2vec embedding table plus the
//! parameters of whichever corrector / detector stages the ablation
//! trained. Snapshots serialize to JSON and restore into any structurally
//! compatible model (same config, any seed), yielding bit-identical
//! predictions — the checkpoint/restore story for long sweeps.
//!
//! [`TrainedClfd`]: crate::TrainedClfd

use crate::error::ClfdError;
use clfd_nn::snapshot::Snapshot;
use serde::{Deserialize, Serialize};

/// Parameters of a trained label corrector: LSTM encoder + FCNN head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrectorSnapshot {
    /// The SimCLR-pre-trained encoder parameters.
    pub encoder: Snapshot,
    /// The mixup-GCE classifier-head parameters.
    pub head: Snapshot,
}

/// Parameters of a trained fraud detector.
///
/// Exactly one of `head` / `centroids` is populated, mirroring the
/// detector's inference mode (classifier vs. the `w/o classifier (FD)`
/// ablation's centroid scoring).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorSnapshot {
    /// The SupCon-pre-trained encoder parameters.
    pub encoder: Snapshot,
    /// Classifier-head parameters; `None` under centroid inference.
    pub head: Option<Snapshot>,
    /// The `[normal, malicious]` class centroids; `None` under classifier
    /// inference.
    pub centroids: Option<Snapshot>,
}

/// Everything needed to reproduce a [`TrainedClfd`]'s predictions.
///
/// [`TrainedClfd`]: crate::TrainedClfd
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClfdSnapshot {
    /// The word2vec activity-embedding table (a single `vocab x dim`
    /// matrix).
    pub embeddings: Snapshot,
    /// Label-corrector parameters; `None` in the `w/o LC` ablation.
    pub corrector: Option<CorrectorSnapshot>,
    /// Fraud-detector parameters; `None` in the `w/o FD` ablation.
    pub detector: Option<DetectorSnapshot>,
}

impl ClfdSnapshot {
    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    /// Returns [`ClfdError::Snapshot`] on malformed JSON or a matrix whose
    /// buffer disagrees with its declared shape.
    pub fn from_json(s: &str) -> Result<Self, ClfdError> {
        let snapshot: Self =
            serde_json::from_str(s).map_err(|e| ClfdError::Snapshot(e.to_string()))?;
        snapshot.check_shapes()?;
        Ok(snapshot)
    }

    /// Deserializes from raw bytes (a file read), rejecting non-UTF-8
    /// input with a typed error instead of panicking — the entry point for
    /// loading snapshots that may be truncated or corrupted on disk.
    ///
    /// # Errors
    /// Returns [`ClfdError::Snapshot`] on non-UTF-8 input, malformed JSON,
    /// or a matrix whose buffer disagrees with its declared shape.
    pub fn from_json_bytes(bytes: &[u8]) -> Result<Self, ClfdError> {
        let s = std::str::from_utf8(bytes)
            .map_err(|e| ClfdError::Snapshot(format!("snapshot is not UTF-8: {e}")))?;
        Self::from_json(s)
    }

    /// Verifies every matrix's buffer matches its declared dimensions —
    /// decoded snapshots come from disk, and restoring a matrix that lies
    /// about its shape would panic deep inside a kernel instead of failing
    /// the load.
    ///
    /// # Errors
    /// Returns [`ClfdError::Snapshot`] naming the first inconsistent
    /// matrix.
    fn check_shapes(&self) -> Result<(), ClfdError> {
        let mut parts: Vec<(&str, &Snapshot)> = vec![("embeddings", &self.embeddings)];
        if let Some(c) = &self.corrector {
            parts.push(("corrector encoder", &c.encoder));
            parts.push(("corrector head", &c.head));
        }
        if let Some(d) = &self.detector {
            parts.push(("detector encoder", &d.encoder));
            if let Some(h) = &d.head {
                parts.push(("detector head", h));
            }
            if let Some(c) = &d.centroids {
                parts.push(("detector centroids", c));
            }
        }
        for (what, snap) in parts {
            for (i, m) in snap.values.iter().enumerate() {
                m.check_shape().map_err(|e| {
                    ClfdError::Snapshot(format!("{what} matrix {i}: {e}"))
                })?;
            }
        }
        Ok(())
    }
}
