//! Whole-pipeline parameter snapshots.
//!
//! [`ClfdSnapshot`] captures everything a trained [`TrainedClfd`] needs to
//! reproduce its predictions exactly: the word2vec embedding table plus the
//! parameters of whichever corrector / detector stages the ablation
//! trained. Snapshots serialize to JSON and restore into any structurally
//! compatible model (same config, any seed), yielding bit-identical
//! predictions — the checkpoint/restore story for long sweeps.
//!
//! [`TrainedClfd`]: crate::TrainedClfd

use crate::error::ClfdError;
use clfd_nn::snapshot::Snapshot;
use serde::{Deserialize, Serialize};

/// Parameters of a trained label corrector: LSTM encoder + FCNN head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrectorSnapshot {
    /// The SimCLR-pre-trained encoder parameters.
    pub encoder: Snapshot,
    /// The mixup-GCE classifier-head parameters.
    pub head: Snapshot,
}

/// Parameters of a trained fraud detector.
///
/// Exactly one of `head` / `centroids` is populated, mirroring the
/// detector's inference mode (classifier vs. the `w/o classifier (FD)`
/// ablation's centroid scoring).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorSnapshot {
    /// The SupCon-pre-trained encoder parameters.
    pub encoder: Snapshot,
    /// Classifier-head parameters; `None` under centroid inference.
    pub head: Option<Snapshot>,
    /// The `[normal, malicious]` class centroids; `None` under classifier
    /// inference.
    pub centroids: Option<Snapshot>,
}

/// Everything needed to reproduce a [`TrainedClfd`]'s predictions.
///
/// [`TrainedClfd`]: crate::TrainedClfd
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClfdSnapshot {
    /// The word2vec activity-embedding table (a single `vocab x dim`
    /// matrix).
    pub embeddings: Snapshot,
    /// Label-corrector parameters; `None` in the `w/o LC` ablation.
    pub corrector: Option<CorrectorSnapshot>,
    /// Fraud-detector parameters; `None` in the `w/o FD` ablation.
    pub detector: Option<DetectorSnapshot>,
}

impl ClfdSnapshot {
    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    /// Returns [`ClfdError::Snapshot`] on malformed JSON.
    pub fn from_json(s: &str) -> Result<Self, ClfdError> {
        serde_json::from_str(s).map_err(|e| ClfdError::Snapshot(e.to_string()))
    }
}
