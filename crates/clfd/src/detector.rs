//! The CLFD fraud detector (§III-B, Algorithm 1).
//!
//! Two-stage training under supervision from the label corrector:
//!
//! 1. **Supervised pre-training** — an LSTM session encoder trained with the
//!    confidence-weighted supervised contrastive loss (Eq. 5). Each batch
//!    `S` of `R` sessions is joined by an auxiliary batch `S¹` of `M`
//!    corrected-malicious sessions so the extremely rare malicious class is
//!    always represented among the contrast candidates.
//! 2. **Mixup-based classifier training** — a two-layer FCNN over the frozen
//!    encoded representations, trained with mixup GCE on the corrected
//!    labels (Algorithm 1 lines 13–19).

use crate::config::{Ablation, ClfdConfig};
use crate::error::{ClfdError, TrainStage};
use crate::model::{
    predictions_from_proba, sample_pool, ClassifierHead, EncoderModel, LossKind, Prediction,
};
use clfd_data::batch::{batch_indices, SessionBatch};
use clfd_data::session::{Label, Session};
use clfd_data::word2vec::ActivityEmbeddings;
use crate::snapshot::DetectorSnapshot;
use clfd_losses::contrastive::try_sup_con_batch;
use clfd_nn::snapshot::Snapshot;
use clfd_nn::{FaultInjector, GuardConfig, Optimizer, TrainGuard};
use clfd_obs::{Event, Obs, Stopwatch};
use clfd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// How the trained detector classifies a test session.
enum Inference {
    /// The FCNN classifier head (the full framework).
    Classifier(ClassifierHead),
    /// Proximity to the corrected-label class centroids in the encoded
    /// space (`w/o classifier (FD)` ablation; [4]'s center-based scoring).
    Centroids {
        normal: Matrix,
        malicious: Matrix,
    },
}

/// Trained fraud detector.
pub struct FraudDetector {
    encoder: EncoderModel,
    inference: Inference,
}

impl FraudDetector {
    /// Trains the detector per Algorithm 1.
    ///
    /// Panicking wrapper over [`FraudDetector::try_train`] with the
    /// default guard and no fault injection.
    ///
    /// # Panics
    /// Panics on any [`ClfdError`].
    pub fn train(
        sessions: &[&Session],
        corrected: &[Label],
        confidences: &[f32],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
        ablation: &Ablation,
        rng: &mut StdRng,
    ) -> Self {
        Self::try_train(
            sessions,
            corrected,
            confidences,
            embeddings,
            cfg,
            ablation,
            &GuardConfig::conservative(),
            None,
            &Obs::null(),
            rng,
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Trains the detector per Algorithm 1, guarding every optimizer step
    /// against divergence.
    ///
    /// `corrected` / `confidences` come from the trained label corrector
    /// (or are the noisy labels with confidence 1 in the `w/o LC` ablation).
    /// `encoder_faults` (used by the fault-injection tests) corrupts chosen
    /// supervised-contrastive pre-training steps to exercise recovery.
    /// `obs` receives stage spans, per-epoch losses, and every guard
    /// intervention (stages `detector/supcon` and `detector/head`).
    ///
    /// # Errors
    /// Returns [`ClfdError::InvalidInput`] for structurally unusable
    /// inputs, [`ClfdError::Loss`] when a loss rejects a batch, and
    /// [`ClfdError::Diverged`] when the guard's retry budget runs out.
    #[allow(clippy::too_many_arguments)]
    pub fn try_train(
        sessions: &[&Session],
        corrected: &[Label],
        confidences: &[f32],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
        ablation: &Ablation,
        guard_cfg: &GuardConfig,
        encoder_faults: Option<FaultInjector>,
        obs: &Obs,
        rng: &mut StdRng,
    ) -> Result<Self, ClfdError> {
        if sessions.len() != corrected.len() || sessions.len() != confidences.len() {
            return Err(ClfdError::InvalidInput(format!(
                "one corrected label and confidence per session: {} sessions vs {} labels vs {} confidences",
                sessions.len(),
                corrected.len(),
                confidences.len()
            )));
        }
        if sessions.is_empty() {
            return Err(ClfdError::InvalidInput("empty training set".into()));
        }
        let mut encoder = EncoderModel::new(cfg, rng);
        let mut guard =
            TrainGuard::new(*guard_cfg).with_obs(obs.clone(), "detector/supcon");
        if let Some(injector) = encoder_faults {
            guard = guard.with_injector(injector);
        }

        // T̃¹: sessions the corrector labeled malicious (Algorithm 1 l.2).
        let malicious_pool: Vec<usize> = corrected
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == Label::Malicious)
            .map(|(i, _)| i)
            .collect();

        // Stage 1: supervised contrastive pre-training (lines 3–12).
        let span = obs.stage("detector/supcon");
        let mut order: Vec<usize> = (0..sessions.len()).collect();
        for epoch in 0..cfg.pretrain_epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(rng);
            for chunk in batch_indices(&order, cfg.batch_size) {
                // Auxiliary malicious batch S¹ (line 5); skipped when the
                // corrector found no malicious sessions at all.
                let aux = if malicious_pool.is_empty() {
                    Vec::new()
                } else {
                    sample_pool(&malicious_pool, cfg.aux_batch, rng)
                };
                let rows: Vec<usize> = chunk.iter().chain(aux.iter()).copied().collect();
                if rows.len() < 2 {
                    continue;
                }
                let refs: Vec<&Session> = rows.iter().map(|&i| sessions[i]).collect();
                let labels: Vec<Label> = rows.iter().map(|&i| corrected[i]).collect();
                let confs: Vec<f32> = rows.iter().map(|&i| confidences[i]).collect();
                let batch = SessionBatch::build(&refs, embeddings, cfg.max_seq_len);
                let z = encoder.encode(&batch);
                let loss = try_sup_con_batch(
                    &mut encoder.tape,
                    z,
                    &labels,
                    &confs,
                    chunk.len(),
                    cfg.temperature,
                    ablation.supcon,
                )
                .map_err(|source| ClfdError::Loss {
                    stage: TrainStage::DetectorEncoder,
                    source,
                })?;
                // Pure read of the recorded loss scalar — telemetry only.
                loss_sum += f64::from(encoder.tape.scalar(loss));
                batches += 1;
                encoder.guarded_step(&mut guard, loss).map_err(|source| {
                    ClfdError::Diverged {
                        stage: TrainStage::DetectorEncoder,
                        source,
                    }
                })?;
            }
            obs.emit(Event::EpochEnd {
                stage: "detector/supcon".to_string(),
                epoch,
                epochs: cfg.pretrain_epochs,
                batches,
                loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                grad_norm: guard.last_grad_norm(),
                lr: encoder.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        span.finish();

        // Stage 2: classifier (or centroid) construction over frozen
        // representations (lines 13–19). As in the corrector, cosine-trained
        // representations are consumed on the unit sphere.
        let features = encoder
            .encode_frozen(sessions, embeddings, cfg)
            .l2_normalize_rows(1e-9);
        let inference = if ablation.use_classifier {
            let (mut head, mut opt) = ClassifierHead::new(cfg.hidden, cfg.lr, cfg.head_weight_decay, rng);
            let loss_kind = LossKind::from_ablation(ablation.use_mixup, ablation.use_gce);
            head.try_train(
                &mut opt,
                &features,
                corrected,
                cfg,
                loss_kind,
                guard_cfg,
                "detector/head",
                obs,
                rng,
            )
            .map_err(|fault| fault.into_clfd(TrainStage::DetectorHead))?;
            Inference::Classifier(head)
        } else {
            Inference::Centroids {
                normal: class_centroid(&features, corrected, Label::Normal),
                malicious: class_centroid(&features, corrected, Label::Malicious),
            }
        };

        Ok(Self { encoder, inference })
    }

    /// Captures the detector's encoder parameters plus its inference state
    /// (classifier head or class centroids).
    pub fn snapshot(&self) -> DetectorSnapshot {
        let (head, centroids) = match &self.inference {
            Inference::Classifier(head) => (Some(head.snapshot()), None),
            Inference::Centroids { normal, malicious } => (
                None,
                Some(Snapshot { values: vec![normal.clone(), malicious.clone()] }),
            ),
        };
        DetectorSnapshot { encoder: self.encoder.snapshot(), head, centroids }
    }

    /// Overwrites the detector's parameters from a snapshot.
    ///
    /// # Errors
    /// Returns [`ClfdError::Snapshot`] when the snapshot's inference mode
    /// (classifier vs. centroids) does not match this model or when the
    /// parameter counts or shapes differ.
    pub fn restore(&mut self, snapshot: &DetectorSnapshot) -> Result<(), ClfdError> {
        self.encoder.restore(&snapshot.encoder)?;
        match (&mut self.inference, &snapshot.head, &snapshot.centroids) {
            (Inference::Classifier(head), Some(s), _) => head.restore(s),
            (Inference::Centroids { normal, malicious }, _, Some(s)) => {
                let [n, m] = s.values.as_slice() else {
                    return Err(ClfdError::Snapshot(format!(
                        "centroid snapshot must hold 2 matrices, found {}",
                        s.values.len()
                    )));
                };
                *normal = n.clone();
                *malicious = m.clone();
                Ok(())
            }
            (Inference::Classifier(_), None, _) => Err(ClfdError::Snapshot(
                "snapshot has no classifier head but the model uses one".into(),
            )),
            (Inference::Centroids { .. }, _, None) => Err(ClfdError::Snapshot(
                "snapshot has no centroids but the model uses centroid inference".into(),
            )),
        }
    }

    /// Classifies sessions, returning label / malicious-score / confidence.
    ///
    /// Takes `&self`: inference is value-only (no tape recording), so one
    /// trained detector can serve predictions from multiple threads.
    pub fn predict(
        &self,
        sessions: &[&Session],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
    ) -> Vec<Prediction> {
        let features = self
            .encoder
            .encode_frozen(sessions, embeddings, cfg)
            .l2_normalize_rows(1e-9);
        let probs = match &self.inference {
            Inference::Classifier(head) => head.predict_proba(&features),
            Inference::Centroids { normal, malicious } => {
                centroid_proba(&features, normal, malicious)
            }
        };
        predictions_from_proba(&probs)
    }

    /// Binds this detector to its embedding table and config, producing a
    /// [`Scorer`](crate::api::Scorer) view of this single stage.
    pub fn scorer<'a>(
        &'a self,
        embeddings: &'a ActivityEmbeddings,
        cfg: &'a ClfdConfig,
    ) -> crate::api::DetectorScorer<'a> {
        crate::api::DetectorScorer { detector: self, embeddings, cfg }
    }
}

/// Mean feature vector of one class; zero vector if the class is absent.
fn class_centroid(features: &Matrix, labels: &[Label], class: Label) -> Matrix {
    let rows: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == class)
        .map(|(i, _)| i)
        .collect();
    if rows.is_empty() {
        return Matrix::zeros(1, features.cols());
    }
    features.select_rows(&rows).col_sums().scale(1.0 / rows.len() as f32)
}

/// Distance-based soft assignment: `p(class) ∝ exp(−‖z − center‖)`.
fn centroid_proba(features: &Matrix, normal: &Matrix, malicious: &Matrix) -> Matrix {
    Matrix::from_fn(features.rows(), 2, |r, c| {
        let row = Matrix::row_vector(features.row(r));
        let d0 = row.euclidean_distance(normal);
        let d1 = row.euclidean_distance(malicious);
        let e0 = (-d0).exp();
        let e1 = (-d1).exp();
        let denom = (e0 + e1).max(f32::MIN_POSITIVE);
        if c == 0 {
            e0 / denom
        } else {
            e1 / denom
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centroid_assignment_prefers_nearer_center() {
        let features = Matrix::from_vec(2, 2, vec![0.9, 0.0, -0.9, 0.1]).unwrap();
        let normal = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let malicious = Matrix::from_vec(1, 2, vec![-1.0, 0.0]).unwrap();
        let p = centroid_proba(&features, &normal, &malicious);
        assert!(p.get(0, 0) > 0.6, "row 0 near normal: {}", p.get(0, 0));
        assert!(p.get(1, 1) > 0.6, "row 1 near malicious: {}", p.get(1, 1));
        for r in 0..2 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn class_centroid_averages_members() {
        let features =
            Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 100.0, 100.0]).unwrap();
        let labels = [Label::Normal, Label::Normal, Label::Malicious];
        let c = class_centroid(&features, &labels, Label::Normal);
        assert_eq!(c.as_slice(), &[2.0, 3.0]);
        // Absent class gives a zero centroid rather than NaN.
        let none = class_centroid(&features, &[Label::Normal; 3], Label::Malicious);
        assert_eq!(none.as_slice(), &[0.0, 0.0]);
    }
}
