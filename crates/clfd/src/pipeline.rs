//! End-to-end CLFD pipeline: word2vec → label corrector → fraud detector.

use crate::config::{Ablation, ClfdConfig};
use crate::corrector::LabelCorrector;
use crate::detector::FraudDetector;
use crate::error::ClfdError;
use crate::model::Prediction;
use crate::snapshot::ClfdSnapshot;
use clfd_data::session::{Label, Session, SplitCorpus};
use clfd_data::word2vec::ActivityEmbeddings;
use clfd_nn::snapshot::Snapshot;
use clfd_nn::{FaultPlan, GuardConfig};
use clfd_obs::{Event, Obs};
use clfd_tensor::KernelPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fault-tolerance and telemetry knobs for [`TrainedClfd::try_fit`].
///
/// The default guards every optimizer step with a conservative divergence
/// guard, injects no faults, and records no telemetry; fault plans exist
/// for the fault-injection tests and for chaos-style robustness
/// experiments, and `obs` attaches a [`clfd_obs::Recorder`] to every
/// training stage.
#[derive(Debug, Clone, Default)]
pub struct TrainOptions {
    /// Divergence-guard tuning shared by all four training stages.
    pub guard: GuardConfig,
    /// Faults injected into the label corrector's SimCLR pre-training.
    pub corrector_encoder_faults: Option<FaultPlan>,
    /// Faults injected into the fraud detector's supervised-contrastive
    /// pre-training.
    pub detector_encoder_faults: Option<FaultPlan>,
    /// Telemetry sink for stage spans, per-epoch losses, and guard events.
    /// Recording is observation-only: attaching a sink never changes the
    /// trained parameters or predictions (see the golden determinism test).
    pub obs: Obs,
    /// Kernel tuning (thread count, matmul block shape, SIMD lane hint)
    /// installed for the duration of the run via
    /// [`clfd_tensor::with_policy`]. `None` (the default) leaves whatever
    /// policy the process has configured untouched. Any value is
    /// prediction-identical to any other — the kernels carry a bit-identity
    /// guarantee across thread counts and blocked/scalar paths.
    pub kernel_policy: Option<KernelPolicy>,
}

impl TrainOptions {
    /// The options [`TrainedClfd::fit`] uses: conservative guard, no faults.
    pub fn conservative() -> Self {
        Self { guard: GuardConfig::conservative(), ..Self::default() }
    }
}

/// A fully trained CLFD model, ready for inference.
pub struct TrainedClfd {
    cfg: ClfdConfig,
    embeddings: ActivityEmbeddings,
    corrector: Option<LabelCorrector>,
    detector: Option<FraudDetector>,
    corrected: Vec<Label>,
    confidences: Vec<f32>,
}

impl TrainedClfd {
    /// Starts a fluent training run — the blessed construction surface.
    ///
    /// See [`ClfdBuilder`](crate::ClfdBuilder) for the available knobs and
    /// defaults.
    pub fn builder() -> crate::builder::ClfdBuilder {
        crate::builder::ClfdBuilder::new()
    }

    /// Trains CLFD on the training part of `split` with labels
    /// `noisy_labels` (parallel to `split.train`).
    ///
    /// Deprecated: prefer [`TrainedClfd::builder`]
    /// (`TrainedClfd::builder().config(*cfg).ablation(*ablation).seed(seed)
    /// .fit(split, noisy_labels)`), which replaces this positional-argument
    /// surface. This forwarder remains for existing call sites and trains
    /// with [`TrainOptions::conservative`].
    ///
    /// # Panics
    /// Panics on any [`ClfdError`].
    pub fn fit(
        split: &SplitCorpus,
        noisy_labels: &[Label],
        cfg: &ClfdConfig,
        ablation: &Ablation,
        seed: u64,
    ) -> Self {
        Self::builder()
            .config(*cfg)
            .ablation(*ablation)
            .seed(seed)
            .fit(split, noisy_labels)
    }

    /// Trains CLFD on the training part of `split` with labels
    /// `noisy_labels` (parallel to `split.train`), returning a typed error
    /// instead of panicking when the inputs are unusable or training
    /// diverges past the guard's retry budget.
    ///
    /// Deprecated: prefer [`TrainedClfd::builder`], which replaces this
    /// positional-argument surface (`opts` unpacks into the builder's
    /// [`guard`](crate::ClfdBuilder::guard)/[`obs`](crate::ClfdBuilder::obs)/
    /// fault knobs, or wholesale via
    /// [`options`](crate::ClfdBuilder::options)). This forwarder remains
    /// for existing call sites.
    ///
    /// # Errors
    /// Returns [`ClfdError::InvalidInput`] for structurally unusable
    /// inputs, [`ClfdError::Loss`] when a loss rejects a batch, and
    /// [`ClfdError::Diverged`] when a guard's retry budget runs out.
    pub fn try_fit(
        split: &SplitCorpus,
        noisy_labels: &[Label],
        cfg: &ClfdConfig,
        ablation: &Ablation,
        seed: u64,
        opts: &TrainOptions,
    ) -> Result<Self, ClfdError> {
        Self::builder()
            .config(*cfg)
            .ablation(*ablation)
            .seed(seed)
            .options(opts.clone())
            .try_fit(split, noisy_labels)
    }

    /// The training pipeline itself: word2vec → label corrector → fraud
    /// detector. All public construction surfaces funnel here.
    ///
    /// Installs [`TrainOptions::kernel_policy`] (when set) around the whole
    /// run, then delegates to [`TrainedClfd::train_body`].
    pub(crate) fn train_impl(
        split: &SplitCorpus,
        noisy_labels: &[Label],
        cfg: &ClfdConfig,
        ablation: &Ablation,
        seed: u64,
        opts: &TrainOptions,
    ) -> Result<Self, ClfdError> {
        match opts.kernel_policy {
            Some(policy) => clfd_tensor::with_policy(policy, || {
                Self::train_body(split, noisy_labels, cfg, ablation, seed, opts)
            }),
            None => Self::train_body(split, noisy_labels, cfg, ablation, seed, opts),
        }
    }

    /// The ablation switches reproduce every row of Tables IV/V; use
    /// [`Ablation::full`] for the complete framework.
    fn train_body(
        split: &SplitCorpus,
        noisy_labels: &[Label],
        cfg: &ClfdConfig,
        ablation: &Ablation,
        seed: u64,
        opts: &TrainOptions,
    ) -> Result<Self, ClfdError> {
        if noisy_labels.len() != split.train.len() {
            return Err(ClfdError::InvalidInput(format!(
                "one noisy label per training session: {} labels vs {} sessions",
                noisy_labels.len(),
                split.train.len()
            )));
        }
        if !ablation.use_fraud_detector && !ablation.use_label_corrector {
            return Err(ClfdError::InvalidInput(
                "disabling both the corrector and the detector leaves no model".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let train_sessions: Vec<&Session> =
            split.train.iter().map(|&i| &split.corpus.sessions[i]).collect();

        // Activity embeddings are trained on the raw (label-free) corpus.
        let obs = &opts.obs;
        let w2v_span = obs.stage("embeddings");
        let embeddings = ActivityEmbeddings::train(
            &train_sessions,
            split.corpus.vocab.len(),
            &cfg.w2v_config(),
            &mut rng,
        );
        w2v_span.finish();

        // Stage 1: label correction (skipped in the `w/o LC` ablation, where
        // the noisy labels pass through with full confidence).
        let (corrector, corrected, confidences) = if ablation.use_label_corrector {
            let corrector = LabelCorrector::try_train(
                &train_sessions,
                noisy_labels,
                &embeddings,
                cfg,
                ablation,
                &opts.guard,
                opts.corrector_encoder_faults.clone().map(Into::into),
                obs,
                &mut rng,
            )?;
            let preds = corrector.predict(&train_sessions, &embeddings, cfg);
            let corrected: Vec<Label> = preds.iter().map(|p| p.label).collect();
            let confidences: Vec<f32> = preds.iter().map(|p| p.confidence).collect();
            // The c_i distribution is the health signal of two-stage noise
            // correction: a collapse toward 0.5 means Stage 2 trains on
            // coin flips. Emit it where it's produced.
            if obs.enabled() {
                obs.emit(Event::confidence("corrector/confidence", &confidences));
            }
            (Some(corrector), corrected, confidences)
        } else {
            (None, noisy_labels.to_vec(), vec![1.0; noisy_labels.len()])
        };

        // Stage 2: fraud detector (skipped in the `w/o FD` ablation, which
        // deploys the corrector directly).
        let detector = if ablation.use_fraud_detector {
            Some(FraudDetector::try_train(
                &train_sessions,
                &corrected,
                &confidences,
                &embeddings,
                cfg,
                ablation,
                &opts.guard,
                opts.detector_encoder_faults.clone().map(Into::into),
                obs,
                &mut rng,
            )?)
        } else {
            None
        };
        obs.emit(Event::Message {
            text: format!(
                "fit complete: {} training sessions, ablation {ablation:?}",
                train_sessions.len()
            ),
        });

        Ok(Self {
            cfg: *cfg,
            embeddings,
            corrector,
            detector,
            corrected,
            confidences,
        })
    }

    /// Captures everything needed to reproduce this model's predictions:
    /// the embedding table plus all trained stage parameters.
    pub fn snapshot(&self) -> ClfdSnapshot {
        ClfdSnapshot {
            embeddings: Snapshot { values: vec![self.embeddings.matrix().clone()] },
            corrector: self.corrector.as_ref().map(LabelCorrector::snapshot),
            detector: self.detector.as_ref().map(FraudDetector::snapshot),
        }
    }

    /// Overwrites this model's embeddings and stage parameters from a
    /// snapshot. The model must be structurally compatible (same config and
    /// ablation); afterwards its predictions are bit-identical to the
    /// snapshotted model's.
    ///
    /// # Errors
    /// Returns [`ClfdError::Snapshot`] when the snapshot's stages,
    /// parameter counts, or shapes do not match this model.
    pub fn restore(&mut self, snapshot: &ClfdSnapshot) -> Result<(), ClfdError> {
        let [embeddings] = snapshot.embeddings.values.as_slice() else {
            return Err(ClfdError::Snapshot(format!(
                "embedding snapshot must hold 1 matrix, found {}",
                snapshot.embeddings.values.len()
            )));
        };
        match (&mut self.corrector, &snapshot.corrector) {
            (Some(model), Some(s)) => model.restore(s)?,
            (None, None) => {}
            (Some(_), None) => {
                return Err(ClfdError::Snapshot(
                    "snapshot has no corrector but the model trained one".into(),
                ))
            }
            (None, Some(_)) => {
                return Err(ClfdError::Snapshot(
                    "snapshot has a corrector but the model trained none".into(),
                ))
            }
        }
        match (&mut self.detector, &snapshot.detector) {
            (Some(model), Some(s)) => model.restore(s)?,
            (None, None) => {}
            (Some(_), None) => {
                return Err(ClfdError::Snapshot(
                    "snapshot has no detector but the model trained one".into(),
                ))
            }
            (None, Some(_)) => {
                return Err(ClfdError::Snapshot(
                    "snapshot has a detector but the model trained none".into(),
                ))
            }
        }
        self.embeddings = ActivityEmbeddings::from_matrix(embeddings.clone());
        Ok(())
    }

    /// Classifies arbitrary sessions.
    ///
    /// Takes `&self`: inference is value-only (no tape recording), so one
    /// trained model can serve predictions from multiple threads at once.
    pub fn predict_sessions(&self, sessions: &[&Session]) -> Vec<Prediction> {
        if let Some(detector) = &self.detector {
            detector.predict(sessions, &self.embeddings, &self.cfg)
        } else {
            self.corrector
                .as_ref()
                .expect("fit() guarantees at least one model")
                .predict(sessions, &self.embeddings, &self.cfg)
        }
    }

    /// Classifies the test split of `split`.
    ///
    /// Takes `&self`; see [`TrainedClfd::predict_sessions`].
    pub fn predict_test(&self, split: &SplitCorpus) -> Vec<Prediction> {
        let test: Vec<&Session> =
            split.test.iter().map(|&i| &split.corpus.sessions[i]).collect();
        self.predict_sessions(&test)
    }

    /// The hyper-parameters this model was trained with.
    pub fn config(&self) -> &ClfdConfig {
        &self.cfg
    }

    /// The activity-embedding table this model was trained with.
    pub fn embeddings(&self) -> &ActivityEmbeddings {
        &self.embeddings
    }

    /// The trained fraud detector, when the ablation kept one.
    pub fn detector(&self) -> Option<&FraudDetector> {
        self.detector.as_ref()
    }

    /// The trained label corrector, when the ablation kept one.
    pub fn corrector(&self) -> Option<&LabelCorrector> {
        self.corrector.as_ref()
    }

    /// The corrected labels the detector was supervised with (parallel to
    /// `split.train`; equals the noisy labels in the `w/o LC` ablation).
    /// This is what Table III evaluates against the ground truth.
    pub fn corrected_labels(&self) -> &[Label] {
        &self.corrected
    }

    /// Correction confidences `c_i` (all 1.0 in the `w/o LC` ablation).
    pub fn correction_confidences(&self) -> &[f32] {
        &self.confidences
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    fn smoke_run(ablation: Ablation) -> (f32, usize) {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 7);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
        let model = TrainedClfd::fit(&split, &noisy, &cfg, &ablation, 5);
        let preds = model.predict_test(&split);
        let test_truth = split.test_labels();
        let correct = preds
            .iter()
            .zip(&test_truth)
            .filter(|(p, &l)| p.label == l)
            .count();
        (correct as f32 / test_truth.len() as f32, preds.len())
    }

    #[test]
    fn full_pipeline_beats_chance_on_smoke_data() {
        let (acc, n) = smoke_run(Ablation::full());
        assert_eq!(n, 68); // 60 normal + 8 malicious test sessions
        assert!(acc > 0.7, "test accuracy {acc}");
    }

    #[test]
    fn without_fd_uses_corrector_for_inference() {
        let (acc, _) = smoke_run(Ablation::without_fraud_detector());
        assert!(acc > 0.6, "corrector-only accuracy {acc}");
    }

    #[test]
    fn without_classifier_uses_centroids() {
        let (acc, _) = smoke_run(Ablation::without_classifier());
        assert!(acc > 0.5, "centroid accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "leaves no model")]
    fn disabling_everything_panics() {
        let mut ablation = Ablation::without_fraud_detector();
        ablation.use_label_corrector = false;
        smoke_run(ablation);
    }

    #[test]
    fn corrected_labels_align_with_training_set() {
        let split = DatasetKind::UmdWikipedia.generate(Preset::Smoke, 3);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let truth = split.train_labels();
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = NoiseModel::PAPER_CLASS_DEPENDENT.apply(&truth, &mut rng);
        let model = TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 8);
        assert_eq!(model.corrected_labels().len(), split.train.len());
        assert_eq!(model.correction_confidences().len(), split.train.len());
        assert!(model
            .correction_confidences()
            .iter()
            .all(|&c| (0.5..=1.0).contains(&c)));
    }
}
