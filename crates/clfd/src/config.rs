//! Hyper-parameters and ablation switches for the CLFD framework.

use crate::api::Precision;
use clfd_data::session::Preset;
use clfd_data::word2vec::Word2VecConfig;
use clfd_losses::SupConVariant;
use serde::{Deserialize, Serialize};

/// CLFD hyper-parameters (§IV-A2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClfdConfig {
    /// Activity/word2vec embedding width (paper: 50).
    pub embed_dim: usize,
    /// LSTM hidden width (paper: 50).
    pub hidden: usize,
    /// LSTM depth (paper: 2).
    pub lstm_layers: usize,
    /// Sessions longer than this are truncated during batching.
    pub max_seq_len: usize,
    /// Contrastive/classifier batch size `R` (paper: 100).
    pub batch_size: usize,
    /// Auxiliary malicious batch size `M` (paper: 20).
    pub aux_batch: usize,
    /// GCE exponent `q` (paper: 0.7, following [13]).
    pub q: f32,
    /// Mixup Beta concentration `β`.
    ///
    /// §III-A1 constrains `β ∈ [0, 1]`, while §IV-A2 reports `β = 16`.
    /// Those are mutually inconsistent: with the paper's *opposite-class*
    /// partner sampling, `Beta(16, 16)` concentrates every λ at 0.5, so all
    /// mixed targets collapse to (0.5, 0.5) and the classifier degenerates
    /// to maximum entropy (we verified this empirically). We follow the
    /// method section's constraint with β = 0.75, which yields diverse λ
    /// values and preserves the anti-memorization effect. See DESIGN.md.
    pub beta: f32,
    /// Supervised-contrastive temperature `α` of Eq. 6 (paper: 1).
    pub temperature: f32,
    /// NT-Xent temperature for the label corrector's self-supervised
    /// pre-training. The paper inherits this stage from CLDet [3] without
    /// stating its temperature; we use the standard SimCLR value 0.5, which
    /// empirically yields far better linear separability than 1.0.
    pub simclr_temperature: f32,
    /// Token-deletion probability for the self-supervised views. The
    /// paper's contrastive stage follows CLEAR [50], whose augmentation set
    /// includes word deletion alongside reordering; deletion coarsens the
    /// representation from session-identity granularity to composition
    /// granularity, which label correction requires at reproduction scale.
    pub view_dropout: f32,
    /// Adam learning rate (paper: 0.005).
    pub lr: f32,
    /// Epochs for both self-supervised and supervised pre-training
    /// (paper: 10).
    pub pretrain_epochs: usize,
    /// Epochs for the mixup-based classifier stages (paper: 500).
    pub classifier_epochs: usize,
    /// Session-reordering window (paper: 3).
    pub reorder_window: usize,
    /// Skip-gram settings for the activity embeddings.
    pub w2v_epochs: usize,
    /// Decoupled weight decay applied to the classifier heads (0 = off).
    pub head_weight_decay: f32,
    /// Word2vec identity residual (see `clfd-data`); off only for the
    /// reproduction-choice ablation bench.
    pub w2v_identity_residual: bool,
    /// Serving-precision preference carried into exported artifacts.
    ///
    /// Training itself always runs in `f32`; this field only tells the
    /// serving stack (`clfd-serve` / `clfd-registry`) which precision to
    /// quantize the frozen artifact to, behind its accuracy-delta gate.
    /// Absent in artifact JSON written before this field existed, hence
    /// the serde default ([`Precision::F32`]).
    #[serde(default)]
    pub precision: Precision,
}

impl ClfdConfig {
    /// The paper's exact hyper-parameters (§IV-A2). Expect long CPU runs.
    pub fn paper() -> Self {
        Self {
            embed_dim: 50,
            hidden: 50,
            lstm_layers: 2,
            max_seq_len: 32,
            batch_size: 100,
            aux_batch: 20,
            q: 0.7,
            beta: 0.75,
            temperature: 1.0,
            simclr_temperature: 0.5,
            view_dropout: 0.2,
            lr: 0.005,
            pretrain_epochs: 10,
            classifier_epochs: 500,
            reorder_window: 3,
            w2v_epochs: 5,
            head_weight_decay: 0.0,
            w2v_identity_residual: true,
            precision: Precision::F32,
        }
    }

    /// Scaled configuration for a preset: `Paper` is [`ClfdConfig::paper`];
    /// the smaller presets shrink widths/epochs but never change the
    /// algorithm.
    pub fn for_preset(preset: Preset) -> Self {
        match preset {
            Preset::Paper => Self::paper(),
            Preset::Default => Self {
                embed_dim: 32,
                hidden: 32,
                max_seq_len: 20,
                batch_size: 64,
                aux_batch: 16,
                pretrain_epochs: 12,
                classifier_epochs: 300,
                w2v_epochs: 3,
                ..Self::paper()
            },
            Preset::Smoke => Self {
                embed_dim: 32,
                hidden: 24,
                max_seq_len: 12,
                batch_size: 32,
                aux_batch: 8,
                pretrain_epochs: 24,
                classifier_epochs: 200,
                w2v_epochs: 1,
                ..Self::paper()
            },
        }
    }

    /// Word2vec configuration derived from this config.
    pub fn w2v_config(&self) -> Word2VecConfig {
        Word2VecConfig {
            dim: self.embed_dim,
            epochs: self.w2v_epochs,
            identity_residual: self.w2v_identity_residual,
            ..Word2VecConfig::default()
        }
    }
}

/// Ablation switches mirroring §IV-B4 (Tables IV and V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ablation {
    /// `w/o LC`: train the fraud detector directly on the noisy labels with
    /// the vanilla (unweighted) supervised contrastive loss.
    pub use_label_corrector: bool,
    /// `w/o l^λ_GCE`: vanilla GCE instead of mixup GCE for both classifiers.
    pub use_mixup: bool,
    /// `w/o GCE`: plain cross-entropy instead of (mixup) GCE.
    pub use_gce: bool,
    /// `w/o FD`: deploy the trained label corrector for inference.
    pub use_fraud_detector: bool,
    /// Which supervised contrastive loss trains the session encoder
    /// (`w/o L_Sup` uses [`SupConVariant::Unweighted`]).
    pub supcon: SupConVariant,
    /// `w/o classifier (FD)`: classify test sessions by proximity to the
    /// label-corrected class centroids in the encoded space.
    pub use_classifier: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self {
            use_label_corrector: true,
            use_mixup: true,
            use_gce: true,
            use_fraud_detector: true,
            supcon: SupConVariant::Weighted,
            use_classifier: true,
        }
    }
}

impl Ablation {
    /// The full CLFD framework (no ablation).
    pub fn full() -> Self {
        Self::default()
    }

    /// `w/o LC` row of Tables IV/V.
    pub fn without_label_corrector() -> Self {
        Self { use_label_corrector: false, ..Self::default() }
    }

    /// `w/o l^λ_GCE` row.
    pub fn without_mixup() -> Self {
        Self { use_mixup: false, ..Self::default() }
    }

    /// `w/o GCE loss` row.
    pub fn without_gce() -> Self {
        Self { use_gce: false, ..Self::default() }
    }

    /// `w/o FD` row.
    pub fn without_fraud_detector() -> Self {
        Self { use_fraud_detector: false, ..Self::default() }
    }

    /// `w/o L_Sup` row (unweighted supervised contrastive loss).
    pub fn without_weighted_supcon() -> Self {
        Self { supcon: SupConVariant::Unweighted, ..Self::default() }
    }

    /// `w/o classifier (FD)` row (centroid inference).
    pub fn without_classifier() -> Self {
        Self { use_classifier: false, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iv() {
        let c = ClfdConfig::paper();
        assert_eq!(c.embed_dim, 50);
        assert_eq!(c.hidden, 50);
        assert_eq!(c.lstm_layers, 2);
        assert_eq!(c.batch_size, 100);
        assert_eq!(c.aux_batch, 20);
        assert!((c.q - 0.7).abs() < 1e-6);
        assert!((c.beta - 0.75).abs() < 1e-6);
        assert!((c.temperature - 1.0).abs() < 1e-6);
        assert!((c.lr - 0.005).abs() < 1e-6);
        assert_eq!(c.pretrain_epochs, 10);
        assert_eq!(c.classifier_epochs, 500);
        assert_eq!(c.reorder_window, 3);
    }

    #[test]
    fn presets_shrink_monotonically() {
        let paper = ClfdConfig::for_preset(Preset::Paper);
        let def = ClfdConfig::for_preset(Preset::Default);
        let smoke = ClfdConfig::for_preset(Preset::Smoke);
        assert!(paper.hidden > def.hidden && def.hidden > smoke.hidden);
        assert!(paper.classifier_epochs > def.classifier_epochs);
        assert!(def.classifier_epochs > smoke.classifier_epochs);
        // Algorithmic constants never change with scale.
        for c in [paper, def, smoke] {
            assert!((c.q - 0.7).abs() < 1e-6);
            assert!((c.beta - 0.75).abs() < 1e-6);
            assert_eq!(c.lstm_layers, 2);
        }
    }

    #[test]
    fn ablation_constructors_flip_one_switch() {
        assert!(!Ablation::without_label_corrector().use_label_corrector);
        assert!(!Ablation::without_mixup().use_mixup);
        assert!(!Ablation::without_gce().use_gce);
        assert!(!Ablation::without_fraud_detector().use_fraud_detector);
        assert_eq!(
            Ablation::without_weighted_supcon().supcon,
            SupConVariant::Unweighted
        );
        assert!(!Ablation::without_classifier().use_classifier);
        // Each constructor leaves everything else at the full framework.
        assert!(Ablation::without_mixup().use_label_corrector);
        assert!(Ablation::without_classifier().use_gce);
    }
}
