//! **CLFD** — supervised Contrastive Learning based Fraud Detection from
//! noisy labels (Vinay, Yuan & Wu, ICDE 2024) — the paper's primary
//! contribution, reproduced in Rust.
//!
//! # Architecture (Figure 1)
//!
//! ```text
//!  noisy training set T̃
//!        │
//!        ▼
//!  ┌─ Label Corrector (§III-A) ───────────────────────────┐
//!  │ LSTM encoder ← SimCLR NT-Xent on reordering views    │
//!  │ classifier   ← mixup GCE loss (Eq. 2–3)              │
//!  └──────────────┬───────────────────────────────────────┘
//!                 │ corrected labels ŷ_i + confidences c_i
//!                 ▼
//!  ┌─ Fraud Detector (§III-B, Algorithm 1) ───────────────┐
//!  │ LSTM encoder ← weighted SupCon loss (Eq. 5, c_i·c_p) │
//!  │ FCNN head    ← mixup GCE on corrected labels         │
//!  └──────────────┬───────────────────────────────────────┘
//!                 ▼
//!        malicious-session predictions
//! ```
//!
//! # Quick start
//!
//! ```
//! use clfd::prelude::*;
//! use clfd_data::noise::NoiseModel;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let split = DatasetKind::Cert.generate(Preset::Smoke, 42);
//! let mut rng = StdRng::seed_from_u64(0);
//! let noisy = NoiseModel::Uniform { eta: 0.3 }.apply(&split.train_labels(), &mut rng);
//!
//! let model = TrainedClfd::builder().preset(Preset::Smoke).fit(&split, &noisy);
//! let predictions = model.predict_test(&split);
//! assert_eq!(predictions.len(), split.test.len());
//! ```
//!
//! # The `Scorer` API
//!
//! Every trained model in the workspace — the full pipeline, a single CLFD
//! stage, each baseline, the frozen serving artifact — implements
//! [`api::Scorer`], so evaluation and benchmark code can hold a
//! heterogeneous `Vec<Box<dyn Scorer>>` and score sessions without caring
//! how each model was fit.
//!
//! # Fault tolerance
//!
//! Every training entry point comes in two flavours: a panicking `fit` /
//! `train` (convenient in examples and benchmarks) and a fallible
//! [`TrainedClfd::try_fit`] / `try_train` returning [`ClfdError`], with
//! each optimizer step wrapped by a divergence guard
//! ([`clfd_nn::TrainGuard`]) that rolls back to the last checkpoint and
//! backs off the learning rate on NaN/Inf losses, gradient corruption, or
//! loss spikes. [`TrainOptions`] tunes the guard and can inject
//! deterministic faults ([`clfd_nn::FaultPlan`]) for robustness testing.
//!
//! # Observability
//!
//! [`TrainOptions::obs`] attaches a [`clfd_obs::Recorder`] (e.g. a JSONL
//! sink) to every training stage: stage spans, per-epoch mean losses,
//! gradient norms, learning rates, and every guard intervention stream out
//! as structured events. Recording is observation-only — the golden
//! determinism test proves predictions are bit-identical with and without
//! a sink attached.

pub mod api;
pub mod builder;
pub mod config;
pub mod corrector;
pub mod detector;
pub mod error;
pub mod extensions;
mod model;
pub mod pipeline;
pub mod prelude;
pub mod snapshot;

pub use api::{Precision, Scorer};
pub use builder::ClfdBuilder;
pub use config::{Ablation, ClfdConfig};
pub use error::{ClfdError, TrainStage};
pub use extensions::{CoCorrection, CoTeachingCorrector};
pub use corrector::LabelCorrector;
pub use detector::FraudDetector;
pub use model::Prediction;
pub use pipeline::{TrainOptions, TrainedClfd};
pub use snapshot::{ClfdSnapshot, CorrectorSnapshot, DetectorSnapshot};
