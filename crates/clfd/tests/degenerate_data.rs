//! Degenerate-input tests: structurally unusual training data must yield a
//! typed error or a valid model — never a panic.

use clfd::{Ablation, ClfdConfig, TrainOptions, TrainedClfd};
use clfd_data::session::{
    Corpus, DatasetKind, Label, Preset, Session, SplitCorpus, Vocab,
};

fn assert_no_panic(split: &SplitCorpus, noisy: &[Label], ablation: &Ablation) {
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let result =
        TrainedClfd::try_fit(split, noisy, &cfg, ablation, 5, &TrainOptions::conservative());
    // Either outcome is acceptable; reaching this line means no panic.
    match result {
        Ok(model) => {
            let preds = model.predict_test(split);
            assert_eq!(preds.len(), split.test.len());
            assert!(preds.iter().all(|p| p.malicious_score.is_finite()));
        }
        Err(e) => {
            // Typed errors must render a useful message.
            assert!(!e.to_string().is_empty());
        }
    }
}

/// Every noisy label collapsed onto one class: mixup has no opposite-class
/// partners and the centroid path has an absent class, yet training must
/// not panic.
#[test]
fn all_one_class_noisy_labels_never_panic() {
    let split = DatasetKind::Cert.generate(Preset::Smoke, 7);
    let noisy = vec![Label::Normal; split.train.len()];
    assert_no_panic(&split, &noisy, &Ablation::full());
}

/// Same single-class collapse through the centroid-inference ablation,
/// where the malicious centroid is computed over zero members.
#[test]
fn all_one_class_labels_with_centroid_inference_never_panic() {
    let split = DatasetKind::Cert.generate(Preset::Smoke, 7);
    let noisy = vec![Label::Normal; split.train.len()];
    assert_no_panic(&split, &noisy, &Ablation::without_classifier());
}

/// Length-1 sessions: the reordering augmentation has nothing to permute
/// and the LSTM sees single-step sequences.
#[test]
fn length_one_sessions_never_panic() {
    let vocab = Vocab::new((0..4).map(|i| format!("act{i}")).collect());
    let sessions: Vec<Session> = (0..12)
        .map(|i| Session { activities: vec![i % 4], day: i })
        .collect();
    let labels: Vec<Label> = (0..12)
        .map(|i| if i % 4 == 3 { Label::Malicious } else { Label::Normal })
        .collect();
    let split = SplitCorpus {
        corpus: Corpus { sessions, labels, vocab },
        train: (0..8).collect(),
        test: (8..12).collect(),
    };
    let noisy = split.train_labels();
    assert_no_panic(&split, &noisy, &Ablation::full());
}

/// A training split with zero malicious sessions (and truthful labels):
/// extreme imbalance taken to its limit.
#[test]
fn zero_malicious_training_sessions_never_panic() {
    let full = DatasetKind::Cert.generate(Preset::Smoke, 7);
    let normal_train: Vec<usize> = full
        .train
        .iter()
        .copied()
        .filter(|&i| full.corpus.labels[i] == Label::Normal)
        .collect();
    let split = SplitCorpus {
        corpus: full.corpus.clone(),
        train: normal_train,
        test: full.test.clone(),
    };
    let noisy = vec![Label::Normal; split.train.len()];
    assert_no_panic(&split, &noisy, &Ablation::full());
}
