//! Fault-injection tests for the guarded training pipeline.
//!
//! Deterministic faults ([`clfd_nn::FaultPlan`]) corrupt chosen optimizer
//! steps of the contrastive pre-training stages. Transient faults must be
//! absorbed by the divergence guard's checkpoint-rollback + LR-backoff
//! recovery with essentially no quality loss; a persistent fault must
//! exhaust the retry budget and surface as a typed [`ClfdError::Diverged`]
//! rather than a panic.

use clfd::{Ablation, ClfdConfig, ClfdError, TrainOptions, TrainStage, TrainedClfd};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Label, Preset, SplitCorpus};
use clfd_nn::{FaultKind, FaultPlan};
use clfd_obs::{Event, GuardAction, MemorySink, Obs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn smoke_setup() -> (SplitCorpus, ClfdConfig, Vec<Label>) {
    let split = DatasetKind::Cert.generate(Preset::Smoke, 7);
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(1);
    let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
    (split, cfg, noisy)
}

/// Test-set F1 of the malicious class plus plain accuracy.
fn test_quality(model: &TrainedClfd, split: &SplitCorpus) -> (f32, f32) {
    let preds = model.predict_test(split);
    let truth = split.test_labels();
    let (mut tp, mut fp, mut fne, mut correct) = (0_f32, 0_f32, 0_f32, 0_usize);
    for (p, &t) in preds.iter().zip(&truth) {
        if p.label == t {
            correct += 1;
        }
        match (p.label, t) {
            (Label::Malicious, Label::Malicious) => tp += 1.0,
            (Label::Malicious, Label::Normal) => fp += 1.0,
            (Label::Normal, Label::Malicious) => fne += 1.0,
            (Label::Normal, Label::Normal) => {}
        }
    }
    let f1 = if tp > 0.0 { 2.0 * tp / (2.0 * tp + fp + fne) } else { 0.0 };
    (f1, correct as f32 / truth.len() as f32)
}

/// Transient NaN/Inf gradient faults early in both contrastive pre-training
/// stages: the guard rolls back to the last checkpoint, halves the learning
/// rate, and training completes with quality close to the clean run.
#[test]
fn transient_faults_recover_to_clean_quality() {
    let (split, cfg, noisy) = smoke_setup();
    let ablation = Ablation::full();

    let clean =
        TrainedClfd::try_fit(&split, &noisy, &cfg, &ablation, 5, &TrainOptions::conservative())
            .expect("clean training succeeds");
    let (clean_f1, clean_acc) = test_quality(&clean, &split);

    let faulted_opts = TrainOptions {
        corrector_encoder_faults: Some(
            FaultPlan::new().at(2, FaultKind::NanGrad).at(5, FaultKind::InfGrad),
        ),
        detector_encoder_faults: Some(FaultPlan::new().at(3, FaultKind::NanGrad)),
        ..TrainOptions::conservative()
    };
    let faulted =
        TrainedClfd::try_fit(&split, &noisy, &cfg, &ablation, 5, &faulted_opts)
            .expect("transient faults must be recovered, not fatal");
    let (faulted_f1, faulted_acc) = test_quality(&faulted, &split);

    // One-sided bound: recovery must not *lose* quality. (At smoke scale a
    // single flipped prediction moves F1 by ~10 points in either direction,
    // and landing above the clean run is success, not failure.)
    assert!(
        faulted_f1 >= clean_f1 - 0.05,
        "recovered F1 {faulted_f1} degraded more than 5 points below clean F1 {clean_f1}"
    );
    assert!(
        faulted_acc >= clean_acc - 0.05,
        "recovered accuracy {faulted_acc} degraded more than 5 points below clean {clean_acc}"
    );
}

/// A fault on every step can never be outrun by rollback: once the retry
/// budget is exhausted the pipeline must return a typed divergence error
/// naming the stage that failed — not panic, not loop forever.
#[test]
fn persistent_faults_exhaust_the_retry_budget_with_a_typed_error() {
    let (split, cfg, noisy) = smoke_setup();

    let opts = TrainOptions {
        corrector_encoder_faults: Some(
            FaultPlan::new().at_each(0..10_000, FaultKind::NanGrad),
        ),
        ..TrainOptions::conservative()
    };
    let Err(err) = TrainedClfd::try_fit(&split, &noisy, &cfg, &Ablation::full(), 5, &opts)
    else {
        panic!("a fault on every step must exhaust the retry budget");
    };
    match err {
        ClfdError::Diverged { stage, .. } => {
            assert_eq!(stage, TrainStage::CorrectorEncoder)
        }
        other => panic!("expected Diverged, got: {other}"),
    }
}

/// Every guard intervention the pipeline performs silently must also be
/// visible in the telemetry stream: injected faults surface as
/// [`Event::FaultInjected`] in the stage that suffered them, each recovery
/// as a [`GuardAction::Rollback`] guard event, and all four training stages
/// report per-epoch progress around them.
#[test]
fn guard_interventions_are_recorded_as_events() {
    let (split, cfg, noisy) = smoke_setup();
    let sink = Arc::new(MemorySink::new());
    let opts = TrainOptions {
        corrector_encoder_faults: Some(FaultPlan::new().at(2, FaultKind::NanGrad)),
        detector_encoder_faults: Some(FaultPlan::new().at(3, FaultKind::InfGrad)),
        obs: Obs::from_arc(sink.clone()),
        ..TrainOptions::conservative()
    };
    TrainedClfd::try_fit(&split, &noisy, &cfg, &Ablation::full(), 5, &opts)
        .expect("transient faults must be recovered, not fatal");
    let events = sink.take();

    let fault_stages: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            Event::FaultInjected { stage, .. } => Some(stage.as_str()),
            _ => None,
        })
        .collect();
    assert!(fault_stages.contains(&"corrector/simclr"), "faults seen: {fault_stages:?}");
    assert!(fault_stages.contains(&"detector/supcon"), "faults seen: {fault_stages:?}");

    let rollback_stages: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            Event::Guard { action: GuardAction::Rollback, stage, .. } => Some(stage.as_str()),
            _ => None,
        })
        .collect();
    assert!(rollback_stages.contains(&"corrector/simclr"), "rollbacks: {rollback_stages:?}");
    assert!(rollback_stages.contains(&"detector/supcon"), "rollbacks: {rollback_stages:?}");

    for stage in ["corrector/simclr", "corrector/head", "detector/supcon", "detector/head"] {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::EpochEnd { stage: s, .. } if s == stage)),
            "no per-epoch telemetry for {stage}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::StageStart { stage: s } if s == stage)),
            "no stage span for {stage}"
        );
    }
}
