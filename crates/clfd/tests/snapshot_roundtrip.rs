//! Snapshot round-trip: a trained pipeline serialized to JSON and restored
//! into a structurally compatible (but differently initialized) pipeline
//! must reproduce the original predictions bit-for-bit.

use clfd::{Ablation, ClfdConfig, ClfdError, ClfdSnapshot, TrainedClfd};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Label, Preset, SplitCorpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_setup() -> (SplitCorpus, ClfdConfig, Vec<Label>) {
    let split = DatasetKind::Cert.generate(Preset::Smoke, 7);
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(1);
    let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
    (split, cfg, noisy)
}

#[test]
fn json_round_trip_reproduces_predictions_bit_for_bit() {
    let (split, cfg, noisy) = smoke_setup();
    let ablation = Ablation::full();

    let original = TrainedClfd::fit(&split, &noisy, &cfg, &ablation, 5);
    let json = original.snapshot().to_json();
    let parsed = ClfdSnapshot::from_json(&json).expect("snapshot JSON round-trips");

    // A fresh model trained with a different seed has the same structure but
    // entirely different parameters — restore must overwrite all of them.
    let mut restored = TrainedClfd::fit(&split, &noisy, &cfg, &ablation, 6);
    restored.restore(&parsed).expect("structurally compatible snapshot restores");

    let a = original.predict_test(&split);
    let b = restored.predict_test(&split);
    assert_eq!(a.len(), b.len());
    for (pa, pb) in a.iter().zip(&b) {
        assert_eq!(pa.label, pb.label);
        assert_eq!(
            pa.malicious_score.to_bits(),
            pb.malicious_score.to_bits(),
            "scores must match bit-for-bit: {} vs {}",
            pa.malicious_score,
            pb.malicious_score
        );
        assert_eq!(pa.confidence.to_bits(), pb.confidence.to_bits());
    }
}

#[test]
fn structurally_incompatible_snapshot_is_a_typed_error() {
    let (split, cfg, noisy) = smoke_setup();

    let full = TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::full(), 5);
    let snapshot = full.snapshot();

    // A corrector-only model cannot absorb a snapshot that carries detector
    // parameters: restore must refuse with a typed error, not panic.
    let mut corrector_only =
        TrainedClfd::fit(&split, &noisy, &cfg, &Ablation::without_fraud_detector(), 5);
    let err = corrector_only
        .restore(&snapshot)
        .expect_err("detector snapshot must not restore into a corrector-only model");
    assert!(matches!(err, ClfdError::Snapshot(_)), "unexpected error: {err}");
}

#[test]
fn corrupt_json_is_a_typed_error() {
    let err = ClfdSnapshot::from_json("{\"not\": \"a snapshot\"}")
        .expect_err("bogus JSON must not parse");
    assert!(matches!(err, ClfdError::Snapshot(_)), "unexpected error: {err}");
}
