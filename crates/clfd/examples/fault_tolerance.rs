//! Demonstrates the fault-tolerance surface of the CLFD pipeline:
//!
//! 1. guarded training absorbing injected NaN/Inf gradient faults,
//! 2. a persistent fault exhausting the retry budget as a typed error,
//! 3. structurally invalid input rejected before training starts,
//! 4. a JSON snapshot round-trip reproducing predictions bit-for-bit.
//!
//! ```text
//! cargo run --release -p clfd --example fault_tolerance
//! ```

use clfd::{Ablation, ClfdConfig, ClfdSnapshot, TrainOptions, TrainedClfd};
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Preset};
use clfd_nn::{FaultKind, FaultPlan};
use clfd_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let split = DatasetKind::Cert.generate(Preset::Smoke, 7);
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let truth = split.train_labels();
    let mut rng = StdRng::seed_from_u64(1);
    let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&truth, &mut rng);
    let ablation = Ablation::full();

    // 1. Transient faults: NaN/Inf gradients injected into both contrastive
    //    pre-training stages; the guard rolls back and training completes.
    //    The whole faulted run streams to a JSONL log, so every injected
    //    fault and guard intervention is on the record.
    let log = "RUN_fault_tolerance.jsonl";
    let opts = TrainOptions {
        corrector_encoder_faults: Some(
            FaultPlan::new().at(2, FaultKind::NanGrad).at(5, FaultKind::InfGrad),
        ),
        detector_encoder_faults: Some(FaultPlan::new().at(3, FaultKind::NanGrad)),
        obs: Obs::jsonl(log).expect("create run log"),
        ..TrainOptions::conservative()
    };
    let model = TrainedClfd::try_fit(&split, &noisy, &cfg, &ablation, 5, &opts)
        .expect("transient faults are recovered");
    opts.obs.flush();
    let trace = std::fs::read_to_string(log).expect("read back run log");
    let count = |needle: &str| trace.lines().filter(|l| l.contains(needle)).count();
    println!(
        "0. {log}: {} events ({} faults injected, {} guard interventions, {} epochs)",
        trace.lines().count(),
        count("\"type\":\"fault_injected\""),
        count("\"type\":\"guard\""),
        count("\"type\":\"epoch_end\""),
    );
    let preds = model.predict_test(&split);
    let acc = preds
        .iter()
        .zip(&split.test_labels())
        .filter(|(p, &t)| p.label == t)
        .count() as f32
        / preds.len() as f32;
    println!("1. faulted training recovered; test accuracy {acc:.3}");

    // 2. Persistent fault: every corrector pre-training step is corrupted,
    //    so the retry budget runs out with a typed, stage-tagged error.
    let poisoned = TrainOptions {
        corrector_encoder_faults: Some(
            FaultPlan::new().at_each(0..10_000, FaultKind::NanGrad),
        ),
        ..TrainOptions::conservative()
    };
    match TrainedClfd::try_fit(&split, &noisy, &cfg, &ablation, 5, &poisoned) {
        Ok(_) => unreachable!("persistent faults cannot train"),
        Err(e) => println!("2. persistent fault -> typed error: {e}"),
    }

    // 3. Invalid input: label/session count mismatch is rejected up front.
    match TrainedClfd::try_fit(&split, &noisy[1..], &cfg, &ablation, 5, &opts) {
        Ok(_) => unreachable!("mismatched labels cannot train"),
        Err(e) => println!("3. invalid input -> typed error: {e}"),
    }

    // 4. Snapshot round-trip: serialize, restore into a differently seeded
    //    model, and compare predictions bit-for-bit.
    let json = model.snapshot().to_json();
    let parsed = ClfdSnapshot::from_json(&json).expect("snapshot JSON parses");
    let mut other = TrainedClfd::fit(&split, &noisy, &cfg, &ablation, 6);
    other.restore(&parsed).expect("compatible snapshot restores");
    let restored = other.predict_test(&split);
    let identical = preds.iter().zip(&restored).all(|(a, b)| {
        a.label == b.label && a.malicious_score.to_bits() == b.malicious_score.to_bits()
    });
    println!(
        "4. snapshot round-trip ({} bytes of JSON): bit-identical predictions = {identical}",
        json.len()
    );
    assert!(identical, "round-trip must reproduce predictions exactly");

    // Corrupt snapshot JSON also fails typed, not with a panic.
    match ClfdSnapshot::from_json("{\"not\": \"a snapshot\"}") {
        Ok(_) => unreachable!("bogus JSON cannot parse"),
        Err(e) => println!("5. corrupt snapshot -> typed error: {e}"),
    }
}
