//! `clfd-report`: summarize `RUN_*.jsonl` telemetry streams and
//! cross-check Prometheus metric snapshots against them.
//!
//! ```text
//! clfd-report [--check-snapshot FILE.prom] RUN.jsonl [MORE.jsonl ...]
//! ```
//!
//! Every `.jsonl` argument is ingested into one combined
//! [`RunSummary`]; `.prom` arguments are parsed and their latency
//! histograms summarized. `--check-snapshot` additionally verifies that
//! the snapshot's request-latency p50/p99 bucket estimates agree (±1
//! bucket) with exact percentiles recomputed from the JSONL stream, and
//! that observation counts match.
//!
//! Exit codes: `0` success, `1` parse error / empty stream / snapshot
//! mismatch, `2` usage error.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clfd_metrics::{names, parse_prometheus, RunSummary};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: clfd-report [--check-snapshot FILE.prom] RUN.jsonl [MORE.jsonl ...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut check_snapshot: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check-snapshot" => match args.next() {
                Some(path) => check_snapshot = Some(path),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!(
                    "clfd-report: summarize RUN_*.jsonl telemetry and check metric snapshots"
                );
                println!(
                    "usage: clfd-report [--check-snapshot FILE.prom] RUN.jsonl [MORE.jsonl ...]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("clfd-report: unknown flag {flag}");
                return usage();
            }
            _ => inputs.push(arg),
        }
    }
    if inputs.is_empty() {
        return usage();
    }

    let mut jsonl_text = String::new();
    let mut failed = false;
    for path in &inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("clfd-report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if path.ends_with(".prom") {
            match summarize_prom(path, &text) {
                Ok(summary) => println!("{summary}"),
                Err(e) => {
                    eprintln!("clfd-report: {path}: {e}");
                    failed = true;
                }
            }
        } else {
            jsonl_text.push_str(&text);
            jsonl_text.push('\n');
        }
    }

    let has_jsonl = inputs.iter().any(|p| !p.ends_with(".prom"));
    if has_jsonl {
        let summary = match RunSummary::from_lines(jsonl_text.lines()) {
            Ok(summary) => summary,
            Err(e) => {
                eprintln!("clfd-report: {e}");
                return ExitCode::FAILURE;
            }
        };
        if summary.is_empty() {
            eprintln!("clfd-report: no events found — a silent run is a broken run");
            return ExitCode::FAILURE;
        }
        println!("{}", summary.render());
        if let Some(path) = &check_snapshot {
            let prom = match std::fs::read_to_string(path) {
                Ok(prom) => prom,
                Err(e) => {
                    eprintln!("clfd-report: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match summary.check_snapshot(&prom) {
                Ok(report) => println!("{report}"),
                Err(e) => {
                    eprintln!("clfd-report: snapshot check failed: {e}");
                    failed = true;
                }
            }
        }
    } else if check_snapshot.is_some() {
        eprintln!("clfd-report: --check-snapshot needs at least one .jsonl input");
        return usage();
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Summarizes a standalone Prometheus snapshot: sample count and, when the
/// serve latency histogram is present, its quantile estimates.
fn summarize_prom(path: &str, text: &str) -> Result<String, String> {
    let samples = parse_prometheus(text)?;
    if samples.is_empty() {
        return Err("snapshot contains no samples".to_string());
    }
    let mut out = format!("snapshot {path}: {} samples", samples.len());
    let hists =
        clfd_metrics::expo::hist_from_samples(&samples, names::SERVE_REQUEST_LATENCY_US)?;
    for (labels, hist) in &hists {
        if hist.count == 0 {
            continue;
        }
        let show = if labels.is_empty() { "request latency" } else { labels.as_str() };
        out.push_str(&format!("\n  {show}: n={}", hist.count));
        for (tag, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
            if let Some(est) = hist.quantile(q) {
                out.push_str(&format!(" {tag}<={est:.0}us"));
            }
        }
    }
    Ok(out)
}
