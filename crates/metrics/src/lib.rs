//! Metrics aggregation for the CLFD stack.
//!
//! The stack's telemetry layer ([`clfd_obs`]) narrates runs as a stream of
//! typed events; this crate folds that stream into *aggregates* without
//! adding a single new instrumentation call site:
//!
//! - [`Registry`] — thread-safe families of atomic [`Counter`]s,
//!   [`Gauge`]s, and log/linear-bucketed [`Histogram`]s with exact
//!   count/sum and bucket-bounded quantile estimation.
//! - [`EventFold`] — a [`clfd_obs::Recorder`] adapter that aggregates the
//!   event stream into a registry, optionally teeing each event onward to
//!   a JSONL sink. Folding is pure aggregation: replaying a captured
//!   stream reproduces the snapshot bit-for-bit.
//! - [`Snapshot`] — deterministically ordered captures rendered as
//!   Prometheus text ([`Snapshot::to_prometheus`]) or JSON
//!   ([`Snapshot::to_json`], accepted by [`clfd_obs::json::validate`]),
//!   plus [`parse_prometheus`] to read an exposition back.
//! - `clfd-report` (binary, [`report`] module) — ingests `RUN_*.jsonl`
//!   streams, prints a run summary (stage timing tree, epoch-loss table,
//!   guard timeline, serve latency percentiles), and cross-checks a
//!   Prometheus snapshot against exact percentiles recomputed from the raw
//!   events.
//!
//! Like the rest of the workspace this crate is dependency-free: metrics
//! never touch model state or float accumulation order, so a run with
//! metrics enabled stays bit-identical to one without.

pub mod expo;
pub mod fold;
pub mod hist;
pub mod registry;
pub mod report;

pub use expo::{
    parse_prometheus, FamilySnapshot, HistSnapshot, PromSample, SeriesSnapshot, SeriesValue,
    Snapshot,
};
pub use fold::{names, EventFold};
pub use hist::{BucketSpec, Histogram};
pub use registry::{Counter, Gauge, MetricKind, Registry};
pub use report::RunSummary;
