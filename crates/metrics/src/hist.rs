//! Lock-free histograms with exact count/sum and bucket-bounded quantile
//! estimation.
//!
//! A [`Histogram`] is a fixed set of upper-bounded buckets (log-spaced for
//! latencies that span orders of magnitude, linear for bounded quantities
//! like confidences in `[0, 1]`) plus an exact observation count and sum.
//! Observations are a handful of relaxed atomic adds — safe to call from
//! serving workers and training loops without a lock.
//!
//! Quantiles from bucketed data are *estimates*: the true `q`-quantile of
//! the observed samples is guaranteed to lie inside the bucket
//! [`Histogram::quantile_bounds`] returns (the property tests pin this
//! bracketing), and [`Histogram::quantile`] reports that bucket's upper
//! bound as the point estimate, mirroring how Prometheus' `histogram_quantile`
//! resolves a bucket.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket layout of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BucketSpec {
    /// `n` buckets with upper bounds `lo * growth^i` for `i in 0..n`
    /// (plus an implicit `+Inf` overflow bucket). Suits latencies: constant
    /// *relative* resolution across orders of magnitude.
    Log {
        /// Upper bound of the first bucket (must be positive).
        lo: f64,
        /// Multiplicative step between bucket bounds (must exceed 1).
        growth: f64,
        /// Number of finite buckets.
        n: usize,
    },
    /// `n` equal-width buckets spanning `[lo, hi]` (plus an implicit
    /// `+Inf` overflow bucket). Suits bounded quantities.
    Linear {
        /// Lower edge of the first bucket.
        lo: f64,
        /// Upper bound of the last finite bucket (must exceed `lo`).
        hi: f64,
        /// Number of finite buckets.
        n: usize,
    },
}

impl BucketSpec {
    /// Log-spaced buckets; see [`BucketSpec::Log`].
    ///
    /// # Panics
    /// Panics on `lo <= 0`, `growth <= 1`, or `n == 0`.
    pub fn log(lo: f64, growth: f64, n: usize) -> Self {
        assert!(lo > 0.0 && lo.is_finite(), "log buckets need a positive first bound");
        assert!(growth > 1.0 && growth.is_finite(), "log buckets need growth > 1");
        assert!(n > 0, "at least one bucket");
        Self::Log { lo, growth, n }
    }

    /// Equal-width buckets; see [`BucketSpec::Linear`].
    ///
    /// # Panics
    /// Panics on `hi <= lo`, non-finite edges, or `n == 0`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "need a finite span");
        assert!(n > 0, "at least one bucket");
        Self::Linear { lo, hi, n }
    }

    /// Number of finite buckets (the overflow bucket is implicit).
    pub fn len(&self) -> usize {
        match self {
            Self::Log { n, .. } | Self::Linear { n, .. } => *n,
        }
    }

    /// True when the spec has no finite buckets (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The finite upper bounds, ascending.
    pub fn bounds(&self) -> Vec<f64> {
        match *self {
            Self::Log { lo, growth, n } => {
                let mut bounds = Vec::with_capacity(n);
                let mut b = lo;
                for _ in 0..n {
                    bounds.push(b);
                    b *= growth;
                }
                bounds
            }
            Self::Linear { lo, hi, n } => (1..=n)
                .map(|i| lo + (hi - lo) * i as f64 / n as f64)
                .collect(),
        }
    }

    /// Lower edge of the first bucket (0 for log buckets: they cover
    /// `(0, lo]` downward to zero in practice, since observations are
    /// magnitudes).
    pub fn lower_edge(&self) -> f64 {
        match *self {
            Self::Log { .. } => 0.0,
            Self::Linear { lo, .. } => lo,
        }
    }
}

/// Thread-safe log/linear-bucketed histogram with exact count and sum.
///
/// `count`, `sum`, and the bucket counters are separate atomics: a snapshot
/// taken *during* concurrent observation can be torn by a few in-flight
/// observations (bucket totals momentarily behind `count`). Every
/// observation eventually lands exactly once; quiesce writers before
/// treating a snapshot as exact.
#[derive(Debug)]
pub struct Histogram {
    spec: BucketSpec,
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; index `bounds.len()` is the
    /// `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bits, updated with a CAS loop.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// An empty histogram with the given bucket layout.
    pub fn new(spec: BucketSpec) -> Self {
        let bounds = spec.bounds();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self { spec, bounds, buckets, count: AtomicU64::new(0), sum_bits: AtomicU64::new(0) }
    }

    /// The bucket layout.
    pub fn spec(&self) -> BucketSpec {
        self.spec
    }

    /// The finite upper bounds, ascending.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation. Non-finite values count toward `count` and
    /// the overflow bucket but are excluded from `sum` (a single `NaN`
    /// must not poison the running total).
    pub fn observe(&self, v: f64) {
        let idx = if v.is_finite() {
            self.add_sum(v);
            self.bounds.partition_point(|&ub| ub < v)
        } else {
            self.bounds.len()
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Merges pre-bucketed counts produced under the *same* layout (e.g. a
    /// [`clfd_obs::Event::Confidence`] histogram). `bucket_counts` may be
    /// shorter than the bucket array; missing trailing buckets are zero.
    ///
    /// # Panics
    /// Panics when `bucket_counts` has more entries than this histogram has
    /// buckets (layout mismatch).
    pub fn merge_counts(&self, bucket_counts: &[u64], count: u64, sum: f64) {
        assert!(
            bucket_counts.len() <= self.buckets.len(),
            "bucket layout mismatch: {} counts into {} buckets",
            bucket_counts.len(),
            self.buckets.len()
        );
        for (slot, &c) in self.buckets.iter().zip(bucket_counts) {
            if c > 0 {
                slot.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        if sum.is_finite() {
            self.add_sum(sum);
        }
    }

    fn add_sum(&self, v: f64) {
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket (non-cumulative) counts; the final entry is the overflow
    /// bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// The half-open value interval `(lo, hi]` guaranteed to contain the
    /// nearest-rank `q`-quantile of the observations, or `None` when empty.
    /// `hi` is `+Inf` when the quantile falls in the overflow bucket.
    pub fn quantile_bounds(&self, q: f64) -> Option<(f64, f64)> {
        quantile_bounds_from(&self.bounds, &self.bucket_counts(), self.spec.lower_edge(), q)
    }

    /// Point estimate of the `q`-quantile: the upper bound of the bucket
    /// containing it (its lower bound when that bucket is the overflow
    /// bucket), or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_bounds(q).map(resolve_bucket)
    }
}

/// Collapses a quantile bucket interval to a point estimate: the finite
/// upper bound, or the lower bound for the overflow bucket.
pub(crate) fn resolve_bucket((lo, hi): (f64, f64)) -> f64 {
    if hi.is_finite() {
        hi
    } else {
        lo
    }
}

/// Shared quantile-bracketing logic over (bounds, per-bucket counts):
/// returns the `(lo, hi]` interval of the bucket holding the nearest-rank
/// `q`-quantile. Also used on parsed snapshots, where no live [`Histogram`]
/// exists.
pub(crate) fn quantile_bounds_from(
    bounds: &[f64],
    bucket_counts: &[u64],
    lower_edge: f64,
    q: f64,
) -> Option<(f64, f64)> {
    let total: u64 = bucket_counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Nearest-rank: the k-th smallest observation with k = ceil(q * total),
    // at least 1.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &c) in bucket_counts.iter().enumerate() {
        cum += c;
        if cum >= rank {
            let lo = if i == 0 { lower_edge } else { bounds[i - 1] };
            let hi = bounds.get(i).copied().unwrap_or(f64::INFINITY);
            return Some((lo, hi));
        }
    }
    None // unreachable: cum == total >= rank by the loop end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_bounds_grow_geometrically() {
        let spec = BucketSpec::log(1.0, 2.0, 5);
        assert_eq!(spec.bounds(), vec![1.0, 2.0, 4.0, 8.0, 16.0]);
        assert_eq!(spec.len(), 5);
    }

    #[test]
    fn linear_bounds_are_equal_width() {
        let spec = BucketSpec::linear(0.0, 1.0, 4);
        assert_eq!(spec.bounds(), vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn observe_routes_to_the_right_bucket() {
        let h = Histogram::new(BucketSpec::log(1.0, 2.0, 3)); // bounds 1,2,4
        for v in [0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 4.1, 1e9] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]); // (..1],(1,2],(2,4],overflow
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn non_finite_observations_count_but_do_not_poison_sum() {
        let h = Histogram::new(BucketSpec::linear(0.0, 1.0, 2));
        h.observe(0.25);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 0.25).abs() < 1e-12);
        assert_eq!(h.bucket_counts(), vec![1, 0, 2]);
    }

    #[test]
    fn quantiles_on_exact_bucket_edges() {
        let h = Histogram::new(BucketSpec::log(1.0, 2.0, 4)); // 1,2,4,8
        for v in [1.0, 2.0, 2.0, 8.0] {
            h.observe(v);
        }
        // rank(0.5) = 2 → second observation (2.0) → bucket (1,2].
        assert_eq!(h.quantile_bounds(0.5), Some((1.0, 2.0)));
        assert_eq!(h.quantile(0.5), Some(2.0));
        // rank(1.0) = 4 → 8.0 → bucket (4,8].
        assert_eq!(h.quantile_bounds(1.0), Some((4.0, 8.0)));
    }

    #[test]
    fn overflow_quantile_reports_lower_bound() {
        let h = Histogram::new(BucketSpec::log(1.0, 2.0, 2)); // 1,2
        h.observe(100.0);
        assert_eq!(h.quantile_bounds(0.5), Some((2.0, f64::INFINITY)));
        assert_eq!(h.quantile(0.5), Some(2.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(BucketSpec::linear(0.0, 1.0, 4));
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_counts_accumulates_shorter_layouts() {
        let h = Histogram::new(BucketSpec::linear(0.0, 1.0, 4));
        h.merge_counts(&[1, 2], 3, 0.6);
        h.merge_counts(&[0, 0, 0, 5], 5, 4.5);
        assert_eq!(h.bucket_counts(), vec![1, 2, 0, 5, 0]);
        assert_eq!(h.count(), 8);
        assert!((h.sum() - 5.1).abs() < 1e-12);
    }
}
