//! [`EventFold`]: a [`clfd_obs::Recorder`] that folds the existing event
//! stream into a metrics [`Registry`].
//!
//! The CLFD stack already narrates itself through typed
//! [`Event`](clfd_obs::Event)s; this adapter turns that narration into
//! aggregates (latency histograms, loss gauges, intervention counters)
//! with **zero new instrumentation call sites** — wrap any recorder in an
//! `EventFold` and every event it sees is counted on the way through.
//! Folding is pure aggregation: replaying the same event sequence into a
//! fresh registry produces an identical snapshot.

use crate::hist::BucketSpec;
use crate::registry::Registry;
use clfd_obs::{Event, Recorder, CONFIDENCE_BUCKETS};
use std::f64::consts::SQRT_2;
use std::sync::Arc;

/// Metric names and bucket layouts used by [`EventFold`], public so tests
/// and `clfd-report` reference the exact same contract.
pub mod names {
    use super::{BucketSpec, CONFIDENCE_BUCKETS, SQRT_2};

    /// Counter of every event seen, labeled by `type` tag.
    pub const EVENTS_TOTAL: &str = "clfd_obs_events_total";
    /// Serve request queue-to-response latency in microseconds, by model.
    pub const SERVE_REQUEST_LATENCY_US: &str = "clfd_serve_request_latency_us";
    /// Counter of completed serve requests, by model.
    pub const SERVE_REQUESTS_TOTAL: &str = "clfd_serve_requests_total";
    /// Counter of sessions carried by completed serve requests, by model.
    pub const SERVE_SESSIONS_TOTAL: &str = "clfd_serve_sessions_total";
    /// Counter of requests shed because their deadline passed, by model.
    pub const SERVE_DEADLINE_EXCEEDED_TOTAL: &str = "clfd_serve_deadline_exceeded_total";
    /// Counter of scoring-path panics caught by serve workers, by model.
    pub const SERVE_PANICS_TOTAL: &str = "clfd_serve_panics_total";
    /// Counter of registry swap lifecycle transitions, by model and
    /// outcome (`start` / `commit` / `rollback`).
    pub const REGISTRY_SWAPS_TOTAL: &str = "clfd_registry_swaps_total";
    /// Gauge: queue depth sampled at each worker drain.
    pub const SERVE_QUEUE_DEPTH: &str = "clfd_serve_queue_depth";
    /// Gauge: configured queue capacity.
    pub const SERVE_QUEUE_CAPACITY: &str = "clfd_serve_queue_capacity";
    /// Histogram of micro-batch sizes (rows per flush).
    pub const SERVE_BATCH_ROWS: &str = "clfd_serve_batch_rows";
    /// Histogram of micro-batch forward wall time in microseconds.
    pub const SERVE_BATCH_WALL_US: &str = "clfd_serve_batch_wall_us";
    /// Counter of flushed micro-batches.
    pub const SERVE_BATCHES_TOTAL: &str = "clfd_serve_batches_total";
    /// Histogram of stage wall time in microseconds, labeled by stage path.
    pub const STAGE_WALL_US: &str = "clfd_stage_wall_us";
    /// Counter of finished training epochs, labeled by stage path.
    pub const TRAIN_EPOCHS_TOTAL: &str = "clfd_train_epochs_total";
    /// Gauge: last epoch's mean training loss per stage.
    pub const TRAIN_LOSS: &str = "clfd_train_loss";
    /// Gauge: last epoch's final-batch gradient norm per stage.
    pub const TRAIN_GRAD_NORM: &str = "clfd_train_grad_norm";
    /// Gauge: learning rate at the end of the last epoch per stage.
    pub const TRAIN_LR: &str = "clfd_train_lr";
    /// Histogram of epoch wall time in milliseconds per stage.
    pub const TRAIN_EPOCH_WALL_MS: &str = "clfd_train_epoch_wall_ms";
    /// Counter of divergence-guard interventions by stage and action.
    pub const GUARD_INTERVENTIONS_TOTAL: &str = "clfd_guard_interventions_total";
    /// Counter of injected faults by stage.
    pub const FAULTS_INJECTED_TOTAL: &str = "clfd_faults_injected_total";
    /// Histogram of label-corrector confidences `c_i` by stage.
    pub const CORRECTION_CONFIDENCE: &str = "clfd_correction_confidence";
    /// Histogram of sweep cell wall time in milliseconds by model.
    pub const SWEEP_CELL_WALL_MS: &str = "clfd_sweep_cell_wall_ms";
    /// Counter of isolated run failures inside sweep cells, by model.
    pub const SWEEP_CELL_FAILURES_TOTAL: &str = "clfd_sweep_cell_failures_total";
    /// Counter of isolated run failures, by model.
    pub const RUN_FAILURES_TOTAL: &str = "clfd_run_failures_total";
    /// Counter of HTTP requests answered by the gateway, by tenant, path,
    /// and status code.
    pub const GATEWAY_REQUESTS_TOTAL: &str = "clfd_gateway_requests_total";
    /// Gateway request latency in microseconds (parse-complete to
    /// response-written), by path.
    pub const GATEWAY_REQUEST_LATENCY_US: &str = "clfd_gateway_request_latency_us";
    /// Counter of connections accepted into the gateway worker pool.
    pub const GATEWAY_CONNECTIONS_TOTAL: &str = "clfd_gateway_connections_total";
    /// Gauge: connections alive (queued + serving) at the last accept.
    pub const GATEWAY_ACTIVE_CONNECTIONS: &str = "clfd_gateway_active_connections";
    /// Counter of finished gateway connections, by close reason.
    pub const GATEWAY_CONNECTIONS_CLOSED_TOTAL: &str = "clfd_gateway_connections_closed_total";
    /// Counter of connections refused at the gateway edge, by reason.
    pub const GATEWAY_SHED_TOTAL: &str = "clfd_gateway_shed_total";
    /// Gauge: threaded-kernel launches, by counter scope.
    pub const KERNEL_LAUNCHES: &str = "clfd_kernel_launches";
    /// Gauge: launches that fanned out to >1 part, by counter scope.
    pub const KERNEL_PARALLEL_LAUNCHES: &str = "clfd_kernel_parallel_launches";
    /// Gauge: nanoseconds inside kernel launch blocks, by counter scope.
    pub const KERNEL_BUSY_NS: &str = "clfd_kernel_busy_ns";

    /// Buckets for request latency: √2 growth from 1 µs covers ~11.9 s at
    /// constant ±√2 relative error.
    pub fn latency_us_buckets() -> BucketSpec {
        BucketSpec::log(1.0, SQRT_2, 48)
    }

    /// Buckets for micro-batch forward wall time (same span as request
    /// latency — a batch is the unit of serving work).
    pub fn batch_wall_us_buckets() -> BucketSpec {
        BucketSpec::log(1.0, SQRT_2, 48)
    }

    /// Buckets for batch sizes: powers of two up to 4096 rows.
    pub fn batch_rows_buckets() -> BucketSpec {
        BucketSpec::log(1.0, 2.0, 12)
    }

    /// Buckets for stage wall time: 100 µs doubling to ~3.6 min.
    pub fn stage_wall_us_buckets() -> BucketSpec {
        BucketSpec::log(100.0, 2.0, 32)
    }

    /// Buckets for epoch wall time: 1 ms doubling to ~2.8 h.
    pub fn epoch_wall_ms_buckets() -> BucketSpec {
        BucketSpec::log(1.0, 2.0, 24)
    }

    /// Buckets for sweep cell wall time: 1 ms doubling to ~2.8 h.
    pub fn cell_wall_ms_buckets() -> BucketSpec {
        BucketSpec::log(1.0, 2.0, 24)
    }

    /// Buckets for corrector confidences: mirrors the pre-bucketed layout
    /// of [`clfd_obs::Event::Confidence`] so counts merge without
    /// resampling.
    pub fn confidence_buckets() -> BucketSpec {
        BucketSpec::linear(0.0, 1.0, CONFIDENCE_BUCKETS)
    }
}

/// Recorder adapter folding the event stream into a [`Registry`], then
/// forwarding each event to an optional inner recorder (so one `Obs`
/// handle can feed both a JSONL log and live metrics).
pub struct EventFold {
    registry: Arc<Registry>,
    inner: Option<Arc<dyn Recorder>>,
}

impl EventFold {
    /// Folds events into `registry` and drops them afterwards.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self { registry, inner: None }
    }

    /// Folds events into `registry` and forwards each one to `inner`.
    pub fn tee(registry: Arc<Registry>, inner: Arc<dyn Recorder>) -> Self {
        Self { registry, inner: Some(inner) }
    }

    /// The registry this fold aggregates into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn fold(&self, event: &Event) {
        let reg = &self.registry;
        reg.counter(
            names::EVENTS_TOTAL,
            "Telemetry events seen, by type tag",
            &[("type", event.type_tag())],
        )
        .inc();
        match event {
            Event::RequestDone { sessions, latency_us, model, .. } => {
                let labels: &[(&str, &str)] = &[("model", model)];
                reg.histogram(
                    names::SERVE_REQUEST_LATENCY_US,
                    "Serve request queue-to-response latency (us), by model",
                    labels,
                    names::latency_us_buckets(),
                )
                .observe(*latency_us as f64);
                reg.counter(names::SERVE_REQUESTS_TOTAL, "Completed serve requests", labels)
                    .inc();
                reg.counter(
                    names::SERVE_SESSIONS_TOTAL,
                    "Sessions carried by completed serve requests",
                    labels,
                )
                .add(*sessions as u64);
            }
            Event::RequestExpired { model, .. } => {
                reg.counter(
                    names::SERVE_DEADLINE_EXCEEDED_TOTAL,
                    "Requests shed because their deadline passed, by model",
                    &[("model", model)],
                )
                .inc();
            }
            Event::ServePanic { model, .. } => {
                reg.counter(
                    names::SERVE_PANICS_TOTAL,
                    "Scoring-path panics caught by serve workers, by model",
                    &[("model", model)],
                )
                .inc();
            }
            Event::SwapStart { model, .. } => {
                reg.counter(
                    names::REGISTRY_SWAPS_TOTAL,
                    "Registry swap lifecycle transitions, by model and outcome",
                    &[("model", model), ("outcome", "start")],
                )
                .inc();
            }
            Event::SwapCommit { model, .. } => {
                reg.counter(
                    names::REGISTRY_SWAPS_TOTAL,
                    "Registry swap lifecycle transitions, by model and outcome",
                    &[("model", model), ("outcome", "commit")],
                )
                .inc();
            }
            Event::SwapRollback { model, .. } => {
                reg.counter(
                    names::REGISTRY_SWAPS_TOTAL,
                    "Registry swap lifecycle transitions, by model and outcome",
                    &[("model", model), ("outcome", "rollback")],
                )
                .inc();
            }
            Event::QueueDepth { depth, capacity } => {
                reg.gauge(
                    names::SERVE_QUEUE_DEPTH,
                    "Serve queue depth at last worker drain",
                    &[],
                )
                .set(*depth as f64);
                reg.gauge(names::SERVE_QUEUE_CAPACITY, "Serve queue capacity", &[])
                    .set(*capacity as f64);
            }
            Event::BatchFlushed { rows, wall_us, model, .. } => {
                let labels: &[(&str, &str)] = &[("model", model)];
                reg.histogram(
                    names::SERVE_BATCH_ROWS,
                    "Serve micro-batch size (rows), by model",
                    labels,
                    names::batch_rows_buckets(),
                )
                .observe(*rows as f64);
                reg.histogram(
                    names::SERVE_BATCH_WALL_US,
                    "Serve micro-batch forward wall time (us), by model",
                    labels,
                    names::batch_wall_us_buckets(),
                )
                .observe(*wall_us as f64);
                reg.counter(names::SERVE_BATCHES_TOTAL, "Flushed serve micro-batches", labels)
                    .inc();
            }
            Event::StageEnd { stage, wall_us, .. } => {
                reg.histogram(
                    names::STAGE_WALL_US,
                    "Stage wall time (us), by stage path",
                    &[("stage", stage)],
                    names::stage_wall_us_buckets(),
                )
                .observe(*wall_us as f64);
            }
            Event::EpochEnd { stage, loss, grad_norm, lr, wall_ms, .. } => {
                let labels: &[(&str, &str)] = &[("stage", stage)];
                reg.counter(names::TRAIN_EPOCHS_TOTAL, "Finished training epochs", labels).inc();
                reg.gauge(names::TRAIN_LOSS, "Mean training loss of the last epoch", labels)
                    .set(f64::from(*loss));
                if let Some(g) = grad_norm {
                    reg.gauge(
                        names::TRAIN_GRAD_NORM,
                        "Final-batch gradient norm of the last epoch",
                        labels,
                    )
                    .set(f64::from(*g));
                }
                reg.gauge(names::TRAIN_LR, "Learning rate at the end of the last epoch", labels)
                    .set(f64::from(*lr));
                reg.histogram(
                    names::TRAIN_EPOCH_WALL_MS,
                    "Epoch wall time (ms)",
                    labels,
                    names::epoch_wall_ms_buckets(),
                )
                .observe(*wall_ms as f64);
            }
            Event::Guard { stage, action, .. } => {
                reg.counter(
                    names::GUARD_INTERVENTIONS_TOTAL,
                    "Divergence-guard interventions, by stage and action",
                    &[("stage", stage), ("action", action.as_str())],
                )
                .inc();
            }
            Event::FaultInjected { stage, .. } => {
                reg.counter(
                    names::FAULTS_INJECTED_TOTAL,
                    "Faults injected by the test harness",
                    &[("stage", stage)],
                )
                .inc();
            }
            Event::Confidence { stage, count, sum, buckets } => {
                reg.histogram(
                    names::CORRECTION_CONFIDENCE,
                    "Label-corrector confidence c_i",
                    &[("stage", stage)],
                    names::confidence_buckets(),
                )
                .merge_counts(buckets, *count, *sum);
            }
            Event::CellEnd { model, wall_ms, failures, .. } => {
                reg.histogram(
                    names::SWEEP_CELL_WALL_MS,
                    "Sweep cell wall time (ms), by model",
                    &[("model", model)],
                    names::cell_wall_ms_buckets(),
                )
                .observe(*wall_ms as f64);
                if *failures > 0 {
                    reg.counter(
                        names::SWEEP_CELL_FAILURES_TOTAL,
                        "Isolated run failures inside sweep cells, by model",
                        &[("model", model)],
                    )
                    .add(*failures as u64);
                }
            }
            Event::RunFailure { model, .. } => {
                reg.counter(
                    names::RUN_FAILURES_TOTAL,
                    "Isolated run failures, by model",
                    &[("model", model)],
                )
                .inc();
            }
            Event::HttpRequest { tenant, path, status, latency_us, .. } => {
                let status = status.to_string();
                reg.counter(
                    names::GATEWAY_REQUESTS_TOTAL,
                    "Gateway HTTP requests answered, by tenant, path, and status",
                    &[("tenant", tenant), ("path", path), ("status", &status)],
                )
                .inc();
                reg.histogram(
                    names::GATEWAY_REQUEST_LATENCY_US,
                    "Gateway request latency (us), by path",
                    &[("path", path)],
                    names::latency_us_buckets(),
                )
                .observe(*latency_us as f64);
            }
            Event::ConnOpened { active } => {
                reg.counter(
                    names::GATEWAY_CONNECTIONS_TOTAL,
                    "Connections accepted into the gateway worker pool",
                    &[],
                )
                .inc();
                reg.gauge(
                    names::GATEWAY_ACTIVE_CONNECTIONS,
                    "Gateway connections alive at the last accept",
                    &[],
                )
                .set(*active as f64);
            }
            Event::ConnClosed { reason, .. } => {
                reg.counter(
                    names::GATEWAY_CONNECTIONS_CLOSED_TOTAL,
                    "Finished gateway connections, by close reason",
                    &[("reason", reason)],
                )
                .inc();
            }
            Event::GatewayShed { reason } => {
                reg.counter(
                    names::GATEWAY_SHED_TOTAL,
                    "Connections refused at the gateway edge, by reason",
                    &[("reason", reason)],
                )
                .inc();
            }
            Event::KernelCounters { scope, launches, parallel_launches, busy_ns } => {
                let labels: &[(&str, &str)] = &[("scope", scope)];
                reg.gauge(names::KERNEL_LAUNCHES, "Threaded-kernel launches", labels)
                    .set(*launches as f64);
                reg.gauge(
                    names::KERNEL_PARALLEL_LAUNCHES,
                    "Kernel launches that fanned out to >1 part",
                    labels,
                )
                .set(*parallel_launches as f64);
                reg.gauge(names::KERNEL_BUSY_NS, "Nanoseconds inside kernel launches", labels)
                    .set(*busy_ns as f64);
            }
            // MetricsReport is a *product* of this registry; folding it back
            // in (beyond the events_total count) would self-amplify.
            Event::MetricsReport { .. } => {}
            // Lifecycle and free-form events carry no aggregate beyond the
            // events_total count.
            Event::RunStart { .. }
            | Event::RunEnd { .. }
            | Event::StageStart { .. }
            | Event::SweepStart { .. }
            | Event::SweepEnd { .. }
            | Event::CellStart { .. }
            | Event::WorkerEnd { .. }
            | Event::ArtifactWritten { .. }
            | Event::Message { .. } => {}
        }
    }
}

impl Recorder for EventFold {
    fn record(&self, event: &Event) {
        self.fold(event);
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }

    fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_obs::{GuardAction, MemorySink, Obs};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::StageEnd { stage: "corrector/simclr".into(), wall_ms: 0, wall_us: 412 },
            Event::EpochEnd {
                stage: "detector/supcon".into(),
                epoch: 0,
                epochs: 2,
                batches: 10,
                loss: 1.25,
                grad_norm: Some(0.5),
                lr: 0.01,
                wall_ms: 7,
            },
            Event::Guard {
                stage: "detector/supcon".into(),
                step: 3,
                action: GuardAction::Clip,
                detail: "norm 12.0 > 5.0".into(),
                lr: 0.01,
            },
            Event::QueueDepth { depth: 3, capacity: 64 },
            Event::BatchFlushed {
                worker: 0,
                rows: 8,
                padded_len: 16,
                wall_us: 950,
                model: "fraud@1".into(),
            },
            Event::RequestDone {
                request: 0,
                sessions: 2,
                latency_us: 1500,
                model: "fraud@1".into(),
            },
            Event::RequestDone {
                request: 1,
                sessions: 1,
                latency_us: 700,
                model: "fraud@1".into(),
            },
            Event::RequestExpired { request: 2, model: "fraud@1".into(), waited_us: 5000 },
            Event::ServePanic { worker: 0, model: "fraud@1".into(), detail: "boom".into() },
            Event::SwapStart { model: "fraud".into(), version: 2 },
            Event::SwapCommit { model: "fraud".into(), version: 2, prior: Some(1) },
            Event::SwapRollback {
                model: "fraud".into(),
                version: 3,
                active: Some(2),
                reason: "canary error rate".into(),
            },
            Event::confidence("corrector/confidence", &[0.55, 0.8, 0.97]),
            Event::ConnOpened { active: 1 },
            Event::HttpRequest {
                tenant: "anonymous".into(),
                method: "POST".into(),
                path: "/v1/score".into(),
                status: 200,
                latency_us: 1800,
            },
            Event::GatewayShed { reason: "queue_full".into() },
            Event::ConnClosed { requests: 1, reason: "client_close".into() },
        ]
    }

    #[test]
    fn folds_serve_and_train_events_into_metrics() {
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        for e in sample_events() {
            fold.record(&e);
        }
        let model: &[(&str, &str)] = &[("model", "fraud@1")];
        assert_eq!(registry.counter(names::SERVE_REQUESTS_TOTAL, "", model).get(), 2);
        assert_eq!(registry.counter(names::SERVE_SESSIONS_TOTAL, "", model).get(), 3);
        assert_eq!(registry.counter(names::SERVE_DEADLINE_EXCEEDED_TOTAL, "", model).get(), 1);
        assert_eq!(registry.counter(names::SERVE_PANICS_TOTAL, "", model).get(), 1);
        for (outcome, want) in [("start", 1), ("commit", 1), ("rollback", 1)] {
            assert_eq!(
                registry
                    .counter(
                        names::REGISTRY_SWAPS_TOTAL,
                        "",
                        &[("model", "fraud"), ("outcome", outcome)]
                    )
                    .get(),
                want,
                "swap outcome {outcome}"
            );
        }
        let lat = registry.histogram(
            names::SERVE_REQUEST_LATENCY_US,
            "",
            model,
            names::latency_us_buckets(),
        );
        assert_eq!(lat.count(), 2);
        assert!((lat.sum() - 2200.0).abs() < 1e-9);
        let stage = registry.histogram(
            names::STAGE_WALL_US,
            "",
            &[("stage", "corrector/simclr")],
            names::stage_wall_us_buckets(),
        );
        assert_eq!(stage.count(), 1);
        assert!((stage.sum() - 412.0).abs() < 1e-9);
        let conf = registry.histogram(
            names::CORRECTION_CONFIDENCE,
            "",
            &[("stage", "corrector/confidence")],
            names::confidence_buckets(),
        );
        assert_eq!(conf.count(), 3);
        assert_eq!(
            registry
                .counter(
                    names::GUARD_INTERVENTIONS_TOTAL,
                    "",
                    &[("stage", "detector/supcon"), ("action", "clip")]
                )
                .get(),
            1
        );
        assert_eq!(
            registry
                .counter(names::EVENTS_TOTAL, "", &[("type", "request_done")])
                .get(),
            2
        );
        assert_eq!(
            registry
                .counter(
                    names::GATEWAY_REQUESTS_TOTAL,
                    "",
                    &[("tenant", "anonymous"), ("path", "/v1/score"), ("status", "200")]
                )
                .get(),
            1
        );
        let edge = registry.histogram(
            names::GATEWAY_REQUEST_LATENCY_US,
            "",
            &[("path", "/v1/score")],
            names::latency_us_buckets(),
        );
        assert_eq!(edge.count(), 1);
        assert_eq!(registry.counter(names::GATEWAY_CONNECTIONS_TOTAL, "", &[]).get(), 1);
        assert_eq!(
            registry
                .counter(names::GATEWAY_SHED_TOTAL, "", &[("reason", "queue_full")])
                .get(),
            1
        );
        assert_eq!(
            registry
                .counter(
                    names::GATEWAY_CONNECTIONS_CLOSED_TOTAL,
                    "",
                    &[("reason", "client_close")]
                )
                .get(),
            1
        );
    }

    #[test]
    fn replaying_a_captured_stream_reproduces_the_snapshot() {
        // Live: events flow through an EventFold teeing into a MemorySink.
        let live_reg = Arc::new(Registry::new());
        let capture = Arc::new(MemorySink::new());
        let obs = Obs::new(EventFold::tee(live_reg.clone(), capture.clone()));
        for e in sample_events() {
            obs.emit(e);
        }
        // Replay: fold the captured stream into a fresh registry.
        let replay_reg = Arc::new(Registry::new());
        let replay = EventFold::new(replay_reg.clone());
        for e in capture.events() {
            replay.record(&e);
        }
        let live = live_reg.snapshot();
        assert_eq!(live, replay_reg.snapshot());
        assert_eq!(live.to_prometheus(), replay_reg.snapshot().to_prometheus());
    }

    #[test]
    fn metrics_report_is_counted_but_not_refolded() {
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        let snapshot = registry.snapshot().to_json();
        fold.record(&Event::MetricsReport { scope: "serve/1".into(), snapshot });
        let snap = registry.snapshot();
        // Only the events_total family exists.
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].name, names::EVENTS_TOTAL);
    }
}
