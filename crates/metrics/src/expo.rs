//! Snapshot exposition: immutable captures of a
//! [`Registry`](crate::Registry) rendered as Prometheus text or JSON, plus
//! a parser for the Prometheus text format so tests and `clfd-report` can
//! read an exposition back without trusting the writer.

use crate::hist::{quantile_bounds_from, resolve_bucket};
use crate::registry::MetricKind;
use clfd_obs::json::{escape_into, Obj};

/// Immutable, deterministically ordered capture of every metric family in
/// a registry at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Families sorted by metric name.
    pub families: Vec<FamilySnapshot>,
}

/// One metric family (a name, its help text and kind, and every labeled
/// series under it).
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// The metric name, e.g. `clfd_serve_request_latency_us`.
    pub name: String,
    /// Help text fixed by the family's first registration.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Series sorted by rendered label set.
    pub series: Vec<SeriesSnapshot>,
}

/// One labeled series and its captured value.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Rendered label set: `{k="v",…}` with sorted keys, or `""`.
    pub labels: String,
    /// The captured value.
    pub value: SeriesValue,
}

/// Captured value of a series, by kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Bucketed distribution.
    Histogram(HistSnapshot),
}

/// Captured state of one histogram series.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; the final entry is the `+Inf`
    /// overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Lower edge of the first bucket (for quantile bracketing).
    pub lower_edge: f64,
}

impl HistSnapshot {
    /// The `(lo, hi]` interval guaranteed to contain the nearest-rank
    /// `q`-quantile, or `None` when empty. See
    /// [`Histogram::quantile_bounds`](crate::Histogram::quantile_bounds).
    pub fn quantile_bounds(&self, q: f64) -> Option<(f64, f64)> {
        quantile_bounds_from(&self.bounds, &self.buckets, self.lower_edge, q)
    }

    /// Point estimate of the `q`-quantile (the containing bucket's upper
    /// bound), or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_bounds(q).map(resolve_bucket)
    }

    /// Index of the bucket containing the nearest-rank `q`-quantile (the
    /// overflow bucket is index `bounds.len()`), or `None` when empty.
    pub fn quantile_bucket_index(&self, q: f64) -> Option<usize> {
        let (_, hi) = self.quantile_bounds(q)?;
        if hi.is_finite() {
            Some(self.bounds.partition_point(|&b| b < hi))
        } else {
            Some(self.bounds.len())
        }
    }

    /// Index of the bucket a raw value `v` would land in (mirror of
    /// [`Histogram::observe`](crate::Histogram::observe)'s routing).
    pub fn bucket_index_of(&self, v: f64) -> usize {
        if v.is_finite() {
            self.bounds.partition_point(|&ub| ub < v)
        } else {
            self.bounds.len()
        }
    }
}

/// Formats a float the way the Prometheus text format expects: `+Inf`,
/// `-Inf`, `NaN`, or Rust's shortest round-trip decimal form.
pub fn format_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        v.to_string()
    }
}

/// Splices an extra label (e.g. `le="0.5"`) into a rendered label set.
fn labels_with(labels: &str, key: &str, value: &str) -> String {
    let mut rendered = String::from(key);
    rendered.push_str("=\"");
    for c in value.chars() {
        match c {
            '\\' => rendered.push_str("\\\\"),
            '"' => rendered.push_str("\\\""),
            '\n' => rendered.push_str("\\n"),
            c => rendered.push(c),
        }
    }
    rendered.push('"');
    if labels.is_empty() {
        format!("{{{rendered}}}")
    } else {
        // "{a=\"b\"}" → "{a=\"b\",le=\"…\"}"
        format!("{},{rendered}}}", &labels[..labels.len() - 1])
    }
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers, one sample per line, histograms as
    /// cumulative `_bucket{le="…"}` series ending at `le="+Inf"` plus
    /// `_sum` and `_count`.
    ///
    /// The output is byte-for-byte deterministic for a given set of metric
    /// values (families and series are sorted, floats use shortest
    /// round-trip formatting).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            // HELP text is a single line; escape the two characters the
            // format reserves.
            for c in family.help.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for series in &family.series {
                match &series.value {
                    SeriesValue::Counter(v) => {
                        out.push_str(&family.name);
                        out.push_str(&series.labels);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SeriesValue::Gauge(v) => {
                        out.push_str(&family.name);
                        out.push_str(&series.labels);
                        out.push(' ');
                        out.push_str(&format_value(*v));
                        out.push('\n');
                    }
                    SeriesValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, count) in h.buckets.iter().enumerate() {
                            cum += count;
                            let le = h
                                .bounds
                                .get(i)
                                .copied()
                                .map_or_else(|| "+Inf".to_string(), format_value);
                            out.push_str(&family.name);
                            out.push_str("_bucket");
                            out.push_str(&labels_with(&series.labels, "le", &le));
                            out.push(' ');
                            out.push_str(&cum.to_string());
                            out.push('\n');
                        }
                        out.push_str(&family.name);
                        out.push_str("_sum");
                        out.push_str(&series.labels);
                        out.push(' ');
                        out.push_str(&format_value(h.sum));
                        out.push('\n');
                        out.push_str(&family.name);
                        out.push_str("_count");
                        out.push_str(&series.labels);
                        out.push(' ');
                        out.push_str(&h.count.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Renders the snapshot as a single-line JSON object
    /// (`{"families":[…]}`), using the same encoder as the telemetry event
    /// stream so [`clfd_obs::json::validate`] accepts it.
    pub fn to_json(&self) -> String {
        let mut families = String::from("[");
        for (i, family) in self.families.iter().enumerate() {
            if i > 0 {
                families.push(',');
            }
            let mut series = String::from("[");
            for (j, s) in family.series.iter().enumerate() {
                if j > 0 {
                    series.push(',');
                }
                let obj = Obj::new().str("labels", &s.labels);
                let obj = match &s.value {
                    SeriesValue::Counter(v) => obj.u64("counter", *v),
                    SeriesValue::Gauge(v) => obj.f64("gauge", *v),
                    SeriesValue::Histogram(h) => {
                        let hist = Obj::new()
                            .raw("bounds", &f64_array(&h.bounds))
                            .u64_array("buckets", &h.buckets)
                            .u64("count", h.count)
                            .f64("sum", h.sum)
                            .f64("lower_edge", h.lower_edge)
                            .finish();
                        obj.raw("hist", &hist)
                    }
                };
                series.push_str(&obj.finish());
            }
            series.push(']');
            let family_obj = Obj::new()
                .str("name", &family.name)
                .str("help", &family.help)
                .str("kind", family.kind.as_str())
                .raw("series", &series)
                .finish();
            families.push_str(&family_obj);
        }
        families.push(']');
        Obj::new().raw("families", &families).finish()
    }
}

/// Renders a JSON array of floats (non-finite values become `null`).
fn f64_array(vs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if v.is_finite() {
            out.push_str(&v.to_string());
        } else {
            out.push_str("null");
        }
    }
    out.push(']');
    out
}

/// One sample line parsed from a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The sample name (histogram series appear as `…_bucket`, `…_sum`,
    /// `…_count`).
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

impl PromSample {
    /// The first value of the label named `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parses the Prometheus text exposition format: `# …` comment lines are
/// skipped, every other non-empty line must be
/// `name[{k="v",…}] value`.
///
/// # Errors
/// Returns a message naming the first malformed line (1-based).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(
            parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?,
        );
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ' || b == b'\t')
        .ok_or("missing value")?;
    let name = &line[..name_end];
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let mut rest = &line[name_end..];
    if rest.starts_with('{') {
        let (parsed, after) = parse_labels(rest)?;
        labels = parsed;
        rest = after;
    }
    let value_text = rest.trim();
    if value_text.is_empty() {
        return Err("missing value".to_string());
    }
    let value = match value_text {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| format!("bad value {v:?}"))?,
    };
    Ok(PromSample { name: name.to_string(), labels, value })
}

/// Label pairs plus the unparsed remainder of the line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses `{k="v",…}`; returns the pairs and the remainder after `}`.
fn parse_labels(s: &str) -> Result<ParsedLabels<'_>, String> {
    let bytes = s.as_bytes();
    let mut pos = 1; // '{'
    let mut labels = Vec::new();
    loop {
        if bytes.get(pos) == Some(&b'}') {
            return Ok((labels, &s[pos + 1..]));
        }
        let key_start = pos;
        while bytes
            .get(pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            pos += 1;
        }
        if pos == key_start {
            return Err(format!("bad label key at byte {pos}"));
        }
        let key = s[key_start..pos].to_string();
        if bytes.get(pos) != Some(&b'=') || bytes.get(pos + 1) != Some(&b'"') {
            return Err(format!("expected =\" at byte {pos}"));
        }
        pos += 2;
        let mut value = String::new();
        loop {
            match bytes.get(pos) {
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(pos + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    pos += 2;
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let start = pos;
                    pos += 1;
                    while pos < bytes.len() && (bytes[pos] & 0xC0) == 0x80 {
                        pos += 1;
                    }
                    value.push_str(&s[start..pos]);
                }
                None => return Err("unterminated label value".to_string()),
            }
        }
        labels.push((key, value));
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {}
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Reconstructs per-series [`HistSnapshot`]s for histogram `name` from
/// parsed Prometheus samples, keyed by the series' non-`le` label pairs
/// (rendered `k="v"` comma-joined, file order). Cumulative `_bucket`
/// counts are de-accumulated; `_sum`/`_count` lines fill in the exact
/// totals.
///
/// # Errors
/// Returns a message when bucket lines are missing, out of order, or not
/// cumulative.
pub fn hist_from_samples(
    samples: &[PromSample],
    name: &str,
) -> Result<Vec<(String, HistSnapshot)>, String> {
    let bucket_name = format!("{name}_bucket");
    let sum_name = format!("{name}_sum");
    let count_name = format!("{name}_count");
    // Keep insertion order so output is as deterministic as the input.
    let mut order: Vec<String> = Vec::new();
    // Per-series accumulator: cumulative (le, count) pairs, sum, count.
    type Partial = (Vec<(f64, u64)>, Option<f64>, Option<u64>);
    let mut partial: std::collections::BTreeMap<String, Partial> =
        std::collections::BTreeMap::new();
    let series_key = |s: &PromSample| -> String {
        let mut key = String::new();
        for (k, v) in &s.labels {
            if k == "le" {
                continue;
            }
            if !key.is_empty() {
                key.push(',');
            }
            key.push_str(k);
            key.push_str("=\"");
            escape_into(&mut key, v);
            key.push('"');
        }
        key
    };
    for s in samples {
        let key = series_key(s);
        let slot = partial.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (Vec::new(), None, None)
        });
        if s.name == bucket_name {
            let le = s.label("le").ok_or_else(|| format!("{name}_bucket line without le"))?;
            let bound = match le {
                "+Inf" | "Inf" => f64::INFINITY,
                v => v.parse::<f64>().map_err(|_| format!("bad le {v:?}"))?,
            };
            if !s.value.is_finite() || s.value < 0.0 {
                return Err(format!("bad bucket count {}", s.value));
            }
            slot.0.push((bound, s.value as u64));
        } else if s.name == sum_name {
            slot.1 = Some(s.value);
        } else if s.name == count_name {
            if !s.value.is_finite() || s.value < 0.0 {
                return Err(format!("bad count {}", s.value));
            }
            slot.2 = Some(s.value as u64);
        }
    }
    let mut out = Vec::new();
    for key in order {
        let (mut bucket_lines, sum, count) = partial.remove(&key).expect("keyed by order");
        if bucket_lines.is_empty() {
            continue; // only _sum/_count seen, or unrelated metric labels
        }
        bucket_lines.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are not NaN"));
        let last = bucket_lines.last().expect("non-empty");
        if last.0.is_finite() {
            return Err(format!("{name}: missing le=\"+Inf\" bucket for {{{key}}}"));
        }
        let mut bounds = Vec::with_capacity(bucket_lines.len() - 1);
        let mut buckets = Vec::with_capacity(bucket_lines.len());
        let mut prev = 0u64;
        for (bound, cum) in &bucket_lines {
            if *cum < prev {
                return Err(format!("{name}: non-cumulative bucket counts for {{{key}}}"));
            }
            buckets.push(cum - prev);
            prev = *cum;
            if bound.is_finite() {
                bounds.push(*bound);
            }
        }
        let total = prev;
        let hist = HistSnapshot {
            bounds,
            buckets,
            count: count.unwrap_or(total),
            sum: sum.unwrap_or(f64::NAN),
            lower_edge: 0.0,
        };
        out.push((key, hist));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::BucketSpec;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("b_requests_total", "requests", &[("route", "score")]).add(7);
        reg.gauge("a_depth", "queue depth", &[]).set(3.5);
        let h = reg.histogram(
            "c_latency_us",
            "latency",
            &[("worker", "0")],
            BucketSpec::log(1.0, 2.0, 3),
        );
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        reg
    }

    #[test]
    fn prometheus_text_is_cumulative_and_ordered() {
        let text = sample_registry().snapshot().to_prometheus();
        let expected = "\
# HELP a_depth queue depth
# TYPE a_depth gauge
a_depth 3.5
# HELP b_requests_total requests
# TYPE b_requests_total counter
b_requests_total{route=\"score\"} 7
# HELP c_latency_us latency
# TYPE c_latency_us histogram
c_latency_us_bucket{worker=\"0\",le=\"1\"} 1
c_latency_us_bucket{worker=\"0\",le=\"2\"} 2
c_latency_us_bucket{worker=\"0\",le=\"4\"} 3
c_latency_us_bucket{worker=\"0\",le=\"+Inf\"} 4
c_latency_us_sum{worker=\"0\"} 105
c_latency_us_count{worker=\"0\"} 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn parse_prometheus_round_trips_the_exposition() {
        let snap = sample_registry().snapshot();
        let samples = parse_prometheus(&snap.to_prometheus()).unwrap();
        assert_eq!(samples.len(), 8);
        let bucket = samples
            .iter()
            .find(|s| s.name == "c_latency_us_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(bucket.value, 4.0);
        assert_eq!(bucket.label("worker"), Some("0"));
    }

    #[test]
    fn hist_from_samples_de_accumulates() {
        let snap = sample_registry().snapshot();
        let samples = parse_prometheus(&snap.to_prometheus()).unwrap();
        let hists = hist_from_samples(&samples, "c_latency_us").unwrap();
        assert_eq!(hists.len(), 1);
        let (key, hist) = &hists[0];
        assert_eq!(key, "worker=\"0\"");
        assert_eq!(hist.bounds, vec![1.0, 2.0, 4.0]);
        assert_eq!(hist.buckets, vec![1, 1, 1, 1]);
        assert_eq!(hist.count, 4);
        assert!((hist.sum - 105.0).abs() < 1e-9);
    }

    #[test]
    fn json_snapshot_is_valid_and_carries_values() {
        let json = sample_registry().snapshot().to_json();
        clfd_obs::json::validate(&json).unwrap();
        let v = clfd_obs::json::parse(&json).unwrap();
        let families = v.get("families").and_then(|f| f.as_array()).unwrap();
        assert_eq!(families.len(), 3);
        assert_eq!(
            families[0].get("name").and_then(|n| n.as_str()),
            Some("a_depth")
        );
        let hist_series = families[2].get("series").and_then(|s| s.as_array()).unwrap();
        let hist = hist_series[0].get("hist").unwrap();
        assert_eq!(hist.get("count").and_then(|c| c.as_u64()), Some(4));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_prometheus("name_only").is_err());
        assert!(parse_prometheus("9leading 1").is_err());
        assert!(parse_prometheus("m{k=\"unterminated} 1").is_err());
        assert!(parse_prometheus("m{k=\"v\"} notanumber").is_err());
    }

    #[test]
    fn quantile_bucket_index_matches_raw_value_routing() {
        let h = HistSnapshot {
            bounds: vec![1.0, 2.0, 4.0],
            buckets: vec![0, 3, 0, 1],
            count: 4,
            sum: 0.0,
            lower_edge: 0.0,
        };
        // Median sits in bucket (1,2] = index 1; a raw 1.7 lands there too.
        assert_eq!(h.quantile_bucket_index(0.5), Some(1));
        assert_eq!(h.bucket_index_of(1.7), 1);
        // p99 is the max (overflow bucket).
        assert_eq!(h.quantile_bucket_index(0.99), Some(3));
        assert_eq!(h.bucket_index_of(1e9), 3);
    }
}
