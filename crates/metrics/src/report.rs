//! Run-log analysis for `clfd-report`: folds a `RUN_*.jsonl` telemetry
//! stream into a [`RunSummary`] (stage timing tree, epoch-loss table,
//! guard timeline, per-model serve latency percentiles, registry swap
//! timeline) and cross-checks a Prometheus snapshot against the exact
//! percentiles recomputed from the raw event stream.

use crate::expo::{hist_from_samples, parse_prometheus, HistSnapshot, PromSample};
use crate::fold::names;
use clfd_obs::json::{parse, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One epoch row extracted from an `epoch_end` event.
#[derive(Debug, Clone)]
pub struct EpochRow {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Total epochs the stage runs.
    pub epochs: u64,
    /// Mean training loss.
    pub loss: f64,
    /// Final-batch gradient norm, when recorded.
    pub grad_norm: Option<f64>,
    /// Learning rate at epoch end.
    pub lr: f64,
    /// Epoch wall time in milliseconds.
    pub wall_ms: u64,
}

/// One guard intervention extracted from a `guard` event.
#[derive(Debug, Clone)]
pub struct GuardRow {
    /// Milliseconds since the sink was created (file time axis).
    pub t_ms: u64,
    /// Stage path.
    pub stage: String,
    /// Guarded step index.
    pub step: u64,
    /// Intervention tag (`rollback`, `clip`, `rewarm`, `abort`).
    pub action: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Aggregated wall time of one stage path.
#[derive(Debug, Clone, Default)]
pub struct StageAgg {
    /// Number of `stage_end` events for the path.
    pub count: u64,
    /// Total wall time in microseconds.
    pub total_us: u64,
}

/// Per-model serving aggregates from `request_done` / `batch_flushed` /
/// `request_expired` / `serve_panic` events.
#[derive(Debug, Clone, Default)]
pub struct ServeAgg {
    /// Every request latency in microseconds, in completion order.
    pub latencies_us: Vec<u64>,
    /// Total sessions carried by completed requests.
    pub sessions: u64,
    /// Number of flushed micro-batches.
    pub batches: u64,
    /// Total rows across flushed micro-batches.
    pub batch_rows: u64,
    /// Requests shed because their deadline passed.
    pub deadline_exceeded: u64,
    /// Scoring-path panics caught by workers.
    pub panics: u64,
}

/// Per-path gateway edge aggregates from `http_request` events.
#[derive(Debug, Clone, Default)]
pub struct GatewayAgg {
    /// Every request latency in microseconds, in completion order.
    pub latencies_us: Vec<u64>,
    /// Response counts by HTTP status code.
    pub statuses: BTreeMap<u64, u64>,
    /// Response counts by tenant.
    pub tenants: BTreeMap<String, u64>,
}

/// One registry swap transition extracted from a
/// `swap_start` / `swap_commit` / `swap_rollback` event.
#[derive(Debug, Clone)]
pub struct SwapRow {
    /// Milliseconds since the sink was created (file time axis).
    pub t_ms: u64,
    /// Model id the transition belongs to.
    pub model: String,
    /// The candidate version involved.
    pub version: u64,
    /// Transition tag (`start`, `commit`, `rollback`).
    pub outcome: String,
    /// Rollback reason, or empty for start/commit.
    pub reason: String,
}

/// Aggregated tensor-kernel launch counters per scope (one scope per
/// benchmarked kernel × thread count in `bench_suite` streams).
#[derive(Debug, Clone, Default)]
pub struct KernelAgg {
    /// `kernel_counters` events folded into this scope.
    pub events: u64,
    /// Total threaded-kernel launches (including serial fallbacks).
    pub launches: u64,
    /// Launches that actually fanned out to more than one part.
    pub parallel_launches: u64,
    /// Nanoseconds spent inside kernel launch blocks.
    pub busy_ns: u64,
}

/// Aggregated corrector-confidence histogram per stage.
#[derive(Debug, Clone, Default)]
pub struct ConfAgg {
    /// Number of confidences summarized.
    pub count: u64,
    /// Sum of confidences.
    pub sum: f64,
    /// Per-bucket counts over `[0, 1]`.
    pub buckets: Vec<u64>,
}

/// Everything `clfd-report` extracts from one or more JSONL event streams.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Total events ingested.
    pub events: u64,
    /// `run_start` names with details, in order.
    pub runs: Vec<(String, String)>,
    /// Stage wall-time aggregates, keyed by stage path.
    pub stages: BTreeMap<String, StageAgg>,
    /// Epoch rows per stage path.
    pub epochs: BTreeMap<String, Vec<EpochRow>>,
    /// Guard interventions in file order.
    pub guards: Vec<GuardRow>,
    /// Number of injected faults.
    pub faults: u64,
    /// Serving aggregates, keyed by model label (`"default"` for
    /// single-model engines, `model-id@version` under a registry).
    pub serve: BTreeMap<String, ServeAgg>,
    /// Gateway edge aggregates, keyed by request path.
    pub gateway: BTreeMap<String, GatewayAgg>,
    /// Gateway connections accepted into the worker pool.
    pub conns_opened: u64,
    /// Gateway connections finished, by close reason.
    pub conns_closed: BTreeMap<String, u64>,
    /// Connections refused at the gateway edge, by reason.
    pub gateway_shed: BTreeMap<String, u64>,
    /// Registry swap timeline in file order.
    pub swaps: Vec<SwapRow>,
    /// Maximum sampled queue depth (engine-global, not per model).
    pub max_queue_depth: u64,
    /// Configured queue capacity (last seen).
    pub queue_capacity: u64,
    /// Kernel launch-counter aggregates, keyed by scope (`bench_suite`
    /// emits one scope per kernel × thread count, e.g. `matmul_512@2t`).
    pub kernels: BTreeMap<String, KernelAgg>,
    /// Confidence aggregates per stage path.
    pub confidence: BTreeMap<String, ConfAgg>,
    /// Isolated run failures (`model: error`), in file order.
    pub run_failures: Vec<String>,
    /// Number of sweep cells completed.
    pub cells: u64,
    /// Number of embedded `metrics_report` snapshots (each validated).
    pub metrics_reports: u64,
    /// Artifact paths written during the run.
    pub artifacts: Vec<String>,
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing integer field {key:?}"))
}

fn opt_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// The event's `model` label, defaulting to `"default"` so streams from
/// before per-model labeling still aggregate.
fn opt_model(v: &Value) -> String {
    v.get("model").and_then(Value::as_str).unwrap_or("default").to_string()
}

impl RunSummary {
    /// Folds JSONL lines (blank lines skipped) into a summary.
    ///
    /// # Errors
    /// Returns `"line N: …"` for the first malformed line — a parse error
    /// in a telemetry stream means the producer is broken, which is
    /// exactly what the CI gate exists to catch.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Result<Self, String> {
        let mut s = RunSummary::default();
        for (i, line) in lines.into_iter().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            s.ingest(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        Ok(s)
    }

    fn ingest(&mut self, line: &str) -> Result<(), String> {
        let v = parse(line)?;
        let ty = need_str(&v, "type")?;
        self.events += 1;
        match ty.as_str() {
            "run_start" => {
                self.runs.push((need_str(&v, "name")?, need_str(&v, "detail")?));
            }
            "stage_end" => {
                let stage = need_str(&v, "stage")?;
                // Older streams only carried wall_ms; fall back so mixed
                // logs still report (at ms resolution).
                let wall_us = v
                    .get("wall_us")
                    .and_then(Value::as_u64)
                    .or_else(|| v.get("wall_ms").and_then(Value::as_u64).map(|ms| ms * 1000))
                    .ok_or("stage_end without wall_us/wall_ms")?;
                let agg = self.stages.entry(stage).or_default();
                agg.count += 1;
                agg.total_us += wall_us;
            }
            "epoch_end" => {
                let stage = need_str(&v, "stage")?;
                self.epochs.entry(stage).or_default().push(EpochRow {
                    epoch: need_u64(&v, "epoch")?,
                    epochs: need_u64(&v, "epochs")?,
                    loss: opt_f64(&v, "loss").unwrap_or(f64::NAN),
                    grad_norm: opt_f64(&v, "grad_norm"),
                    lr: opt_f64(&v, "lr").unwrap_or(f64::NAN),
                    wall_ms: need_u64(&v, "wall_ms")?,
                });
            }
            "guard" => {
                self.guards.push(GuardRow {
                    t_ms: v.get("t_ms").and_then(Value::as_u64).unwrap_or(0),
                    stage: need_str(&v, "stage")?,
                    step: need_u64(&v, "step")?,
                    action: need_str(&v, "action")?,
                    detail: need_str(&v, "detail")?,
                });
            }
            "fault_injected" => self.faults += 1,
            "request_done" => {
                let latency = need_u64(&v, "latency_us")?;
                let sessions = need_u64(&v, "sessions")?;
                let agg = self.serve.entry(opt_model(&v)).or_default();
                agg.latencies_us.push(latency);
                agg.sessions += sessions;
            }
            "batch_flushed" => {
                let rows = need_u64(&v, "rows")?;
                let agg = self.serve.entry(opt_model(&v)).or_default();
                agg.batches += 1;
                agg.batch_rows += rows;
            }
            "request_expired" => {
                self.serve.entry(opt_model(&v)).or_default().deadline_exceeded += 1;
            }
            "serve_panic" => {
                self.serve.entry(opt_model(&v)).or_default().panics += 1;
            }
            "http_request" => {
                let path = need_str(&v, "path")?;
                let status = need_u64(&v, "status")?;
                let tenant = need_str(&v, "tenant")?;
                let latency = need_u64(&v, "latency_us")?;
                let agg = self.gateway.entry(path).or_default();
                agg.latencies_us.push(latency);
                *agg.statuses.entry(status).or_default() += 1;
                *agg.tenants.entry(tenant).or_default() += 1;
            }
            "conn_opened" => self.conns_opened += 1,
            "conn_closed" => {
                *self.conns_closed.entry(need_str(&v, "reason")?).or_default() += 1;
            }
            "gateway_shed" => {
                *self.gateway_shed.entry(need_str(&v, "reason")?).or_default() += 1;
            }
            "queue_depth" => {
                let depth = need_u64(&v, "depth")?;
                self.max_queue_depth = self.max_queue_depth.max(depth);
                self.queue_capacity = need_u64(&v, "capacity")?;
            }
            "swap_start" | "swap_commit" | "swap_rollback" => {
                self.swaps.push(SwapRow {
                    t_ms: v.get("t_ms").and_then(Value::as_u64).unwrap_or(0),
                    model: need_str(&v, "model")?,
                    version: need_u64(&v, "version")?,
                    outcome: ty.trim_start_matches("swap_").to_string(),
                    reason: v
                        .get("reason")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                });
            }
            "kernel_counters" => {
                let agg = self.kernels.entry(need_str(&v, "scope")?).or_default();
                agg.events += 1;
                agg.launches += need_u64(&v, "launches")?;
                agg.parallel_launches += need_u64(&v, "parallel_launches")?;
                agg.busy_ns += need_u64(&v, "busy_ns")?;
            }
            "confidence" => {
                let stage = need_str(&v, "stage")?;
                let buckets: Vec<u64> = v
                    .get("buckets")
                    .and_then(Value::as_array)
                    .ok_or("confidence without buckets")?
                    .iter()
                    .map(|b| b.as_u64().ok_or("non-integer bucket count"))
                    .collect::<Result<_, _>>()?;
                let agg = self.confidence.entry(stage).or_default();
                if agg.buckets.len() < buckets.len() {
                    agg.buckets.resize(buckets.len(), 0);
                }
                for (slot, b) in agg.buckets.iter_mut().zip(&buckets) {
                    *slot += b;
                }
                agg.count += need_u64(&v, "count")?;
                agg.sum += opt_f64(&v, "sum").unwrap_or(0.0);
            }
            "run_failure" => {
                self.run_failures
                    .push(format!("{}: {}", need_str(&v, "model")?, need_str(&v, "error")?));
            }
            "cell_end" => self.cells += 1,
            "metrics_report" => {
                let snapshot = need_str(&v, "snapshot")?;
                parse(&snapshot).map_err(|e| format!("embedded metrics snapshot: {e}"))?;
                self.metrics_reports += 1;
            }
            "artifact_written" => self.artifacts.push(need_str(&v, "path")?),
            // Known lifecycle events carry nothing the summary tabulates;
            // unknown types are tolerated (the stream may outgrow this
            // reader) but still counted.
            _ => {}
        }
        Ok(())
    }

    /// True when the stream contained nothing reportable (the CI gate
    /// treats this as a failure: a silent run is a broken run).
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "events ingested: {}", self.events);
        for (name, detail) in &self.runs {
            let _ = writeln!(out, "run: {name} ({detail})");
        }
        if !self.stages.is_empty() {
            let _ = writeln!(out, "\nStage timing (wall):");
            for (path, agg) in &self.stages {
                let depth = path.matches('/').count();
                let parent = path.rsplit_once('/').map(|(p, _)| p);
                let label = match parent {
                    Some(p) if self.stages.contains_key(p) => {
                        path.rsplit_once('/').map_or(path.as_str(), |(_, l)| l)
                    }
                    _ => path.as_str(),
                };
                let _ = writeln!(
                    out,
                    "  {:indent$}{label:<30} {:>4}x {:>12}",
                    "",
                    agg.count,
                    format_us(agg.total_us),
                    indent = depth * 2,
                );
            }
        }
        if !self.epochs.is_empty() {
            let _ = writeln!(out, "\nEpoch losses:");
            for (stage, rows) in &self.epochs {
                let _ = writeln!(out, "  {stage}:");
                let _ = writeln!(
                    out,
                    "    {:>5} {:>12} {:>12} {:>10} {:>9}",
                    "epoch", "loss", "grad_norm", "lr", "wall_ms"
                );
                for r in rows {
                    let gn =
                        r.grad_norm.map_or_else(|| "-".to_string(), |g| format!("{g:.4}"));
                    let _ = writeln!(
                        out,
                        "    {:>2}/{:<2} {:>12.6} {:>12} {:>10.6} {:>9}",
                        r.epoch + 1,
                        r.epochs,
                        r.loss,
                        gn,
                        r.lr,
                        r.wall_ms
                    );
                }
            }
        }
        if !self.guards.is_empty() || self.faults > 0 {
            let _ = writeln!(
                out,
                "\nGuard timeline ({} interventions, {} faults injected):",
                self.guards.len(),
                self.faults
            );
            for g in &self.guards {
                let _ = writeln!(
                    out,
                    "  t={:>6}ms {:<10} step {:>5} [{}] {}",
                    g.t_ms, g.action, g.step, g.stage, g.detail
                );
            }
        }
        let total_requests: usize = self.serve.values().map(|a| a.latencies_us.len()).sum();
        if total_requests > 0 {
            let _ = writeln!(
                out,
                "\nServe latency (us), {} requests across {} model(s), peak queue {}/{}:",
                total_requests,
                self.serve.len(),
                self.max_queue_depth,
                self.queue_capacity
            );
            for (model, agg) in &self.serve {
                if agg.latencies_us.is_empty() {
                    let _ = writeln!(
                        out,
                        "  [{model}] 0 requests | expired {} | panics {}",
                        agg.deadline_exceeded, agg.panics
                    );
                    continue;
                }
                let mut sorted = agg.latencies_us.clone();
                sorted.sort_unstable();
                let _ = writeln!(out, "  [{model}] {} requests:", sorted.len());
                for (tag, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                    let _ = writeln!(out, "    {tag:<4} {:>10}", percentile(&sorted, q));
                }
                let _ = writeln!(out, "    max  {:>10}", sorted[sorted.len() - 1]);
                let mean_rows = if agg.batches > 0 {
                    agg.batch_rows as f64 / agg.batches as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "    sessions {} | batches {} (mean {:.1} rows) | expired {} | panics {}",
                    agg.sessions, agg.batches, mean_rows, agg.deadline_exceeded, agg.panics
                );
            }
        }
        let edge_requests: usize = self.gateway.values().map(|a| a.latencies_us.len()).sum();
        if edge_requests > 0 || !self.gateway_shed.is_empty() {
            let shed: u64 = self.gateway_shed.values().sum();
            let _ = writeln!(
                out,
                "\nGateway edge latency (us), {edge_requests} requests over {} connections, {shed} shed:",
                self.conns_opened
            );
            for (path, agg) in &self.gateway {
                if agg.latencies_us.is_empty() {
                    continue;
                }
                let mut sorted = agg.latencies_us.clone();
                sorted.sort_unstable();
                let statuses = agg
                    .statuses
                    .iter()
                    .map(|(s, n)| format!("{s}:{n}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                let _ = writeln!(out, "  [{path}] {} requests ({statuses}):", sorted.len());
                for (tag, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                    let _ = writeln!(out, "    {tag:<4} {:>10}", percentile(&sorted, q));
                }
                let _ = writeln!(out, "    max  {:>10}", sorted[sorted.len() - 1]);
            }
            for (reason, n) in &self.gateway_shed {
                let _ = writeln!(out, "  shed[{reason}] {n}");
            }
            if !self.conns_closed.is_empty() {
                let closes = self
                    .conns_closed
                    .iter()
                    .map(|(r, n)| format!("{r}:{n}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                let _ = writeln!(out, "  connection closes: {closes}");
            }
        }
        if !self.swaps.is_empty() {
            let rollbacks = self.swaps.iter().filter(|s| s.outcome == "rollback").count();
            let _ = writeln!(
                out,
                "\nSwap timeline ({} transitions, {} rollbacks):",
                self.swaps.len(),
                rollbacks
            );
            for s in &self.swaps {
                let reason =
                    if s.reason.is_empty() { String::new() } else { format!(" — {}", s.reason) };
                let _ = writeln!(
                    out,
                    "  t={:>6}ms {:<8} [{}@{}]{reason}",
                    s.t_ms, s.outcome, s.model, s.version
                );
            }
        }
        if !self.kernels.is_empty() {
            let total_launches: u64 = self.kernels.values().map(|a| a.launches).sum();
            let total_busy: u64 = self.kernels.values().map(|a| a.busy_ns).sum();
            let _ = writeln!(
                out,
                "\nKernel throughput ({} scopes, {} launches, {} busy):",
                self.kernels.len(),
                total_launches,
                format_us(total_busy / 1000)
            );
            let _ = writeln!(
                out,
                "  {:<34} {:>10} {:>9} {:>12} {:>12}",
                "scope", "launches", "par%", "busy", "ns/launch"
            );
            for (scope, agg) in &self.kernels {
                let par_pct = if agg.launches > 0 {
                    100.0 * agg.parallel_launches as f64 / agg.launches as f64
                } else {
                    0.0
                };
                let per_launch = if agg.launches > 0 {
                    agg.busy_ns as f64 / agg.launches as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {scope:<34} {:>10} {par_pct:>8.1}% {:>12} {per_launch:>12.0}",
                    agg.launches,
                    format_us(agg.busy_ns / 1000),
                );
            }
        }
        if !self.confidence.is_empty() {
            let _ = writeln!(out, "\nCorrector confidence:");
            for (stage, agg) in &self.confidence {
                let mean = if agg.count > 0 { agg.sum / agg.count as f64 } else { f64::NAN };
                let frac_high = if agg.count > 0 {
                    // Buckets ≥ 0.9 in a 20-bucket [0,1] layout are the
                    // last two.
                    let high: u64 = agg.buckets.iter().rev().take(2).sum();
                    high as f64 / agg.count as f64
                } else {
                    f64::NAN
                };
                let _ = writeln!(
                    out,
                    "  {stage}: n={} mean={mean:.4} frac(c>=0.9)={frac_high:.3}",
                    agg.count
                );
            }
        }
        if self.cells > 0 || !self.run_failures.is_empty() {
            let _ = writeln!(
                out,
                "\nSweep: {} cells, {} isolated run failures",
                self.cells,
                self.run_failures.len()
            );
            for f in &self.run_failures {
                let _ = writeln!(out, "  FAIL {f}");
            }
        }
        if self.metrics_reports > 0 {
            let _ = writeln!(out, "\nmetrics_report snapshots: {} (all valid JSON)", self.metrics_reports);
        }
        for a in &self.artifacts {
            let _ = writeln!(out, "artifact: {a}");
        }
        out
    }

    /// Every request latency across all models, unsorted.
    fn all_latencies(&self) -> Vec<u64> {
        self.serve.values().flat_map(|a| a.latencies_us.iter().copied()).collect()
    }

    /// Cross-checks a Prometheus snapshot against this summary: the
    /// snapshot's request-latency histograms (one series per `model`
    /// label) must together contain every request the JSONL stream
    /// recorded — and per model, each series' count must match that
    /// model's JSONL request count — and the merged p50/p99 bucket
    /// estimates must agree with the exact percentiles recomputed from
    /// the raw latencies to within ±1 bucket. When the stream carries
    /// gateway `http_request` events, the gateway latency histograms
    /// (one series per `path` label) are held to the same bar.
    ///
    /// # Errors
    /// Returns a description of the first disagreement.
    pub fn check_snapshot(&self, prom_text: &str) -> Result<String, String> {
        let samples = parse_prometheus(prom_text)?;
        if samples.is_empty() {
            return Err("snapshot contains no samples".to_string());
        }
        let mut lines = Vec::new();
        self.check_serve_snapshot(&samples, &mut lines)?;
        self.check_gateway_snapshot(&samples, &mut lines)?;
        Ok(lines.join("\n"))
    }

    fn check_serve_snapshot(
        &self,
        samples: &[PromSample],
        lines: &mut Vec<String>,
    ) -> Result<(), String> {
        let hists = hist_from_samples(samples, names::SERVE_REQUEST_LATENCY_US)?;
        let latencies = self.all_latencies();
        if latencies.is_empty() {
            return if hists.iter().all(|(_, h)| h.count == 0) {
                lines.push(format!(
                    "snapshot ok: {} samples, no serve traffic on either side",
                    samples.len()
                ));
                Ok(())
            } else {
                Err("snapshot has request latencies but the JSONL stream has none".to_string())
            };
        }
        // Per-model counts must match series-for-series.
        for (model, agg) in &self.serve {
            if agg.latencies_us.is_empty() {
                continue;
            }
            let key = format!("model=\"{model}\"");
            let series = hists
                .iter()
                .find(|(labels, _)| *labels == key)
                .ok_or_else(|| format!("snapshot has no latency series for model {model:?}"))?;
            if series.1.count != agg.latencies_us.len() as u64 {
                return Err(format!(
                    "model {model:?} count mismatch: snapshot has {} observations, JSONL has {}",
                    series.1.count,
                    agg.latencies_us.len()
                ));
            }
        }
        let hist = merge_hists(&hists)?;
        let n = latencies.len() as u64;
        if hist.count != n {
            return Err(format!(
                "request count mismatch: snapshot histograms hold {} observations, JSONL has {n}",
                hist.count
            ));
        }
        let mut sorted = latencies;
        sorted.sort_unstable();
        lines.push(format!(
            "snapshot ok: {} samples, {n} requests across {} model series",
            samples.len(),
            self.serve.values().filter(|a| !a.latencies_us.is_empty()).count()
        ));
        check_quantiles(&hist, &sorted, "", lines)
    }

    fn check_gateway_snapshot(
        &self,
        samples: &[PromSample],
        lines: &mut Vec<String>,
    ) -> Result<(), String> {
        let hists = hist_from_samples(samples, names::GATEWAY_REQUEST_LATENCY_US)?;
        let latencies: Vec<u64> =
            self.gateway.values().flat_map(|a| a.latencies_us.iter().copied()).collect();
        if latencies.is_empty() {
            // No gateway in play this run: nothing to report, unless the
            // snapshot claims otherwise.
            return if hists.iter().all(|(_, h)| h.count == 0) {
                Ok(())
            } else {
                Err("snapshot has gateway latencies but the JSONL stream has none".to_string())
            };
        }
        // Per-path counts must match series-for-series.
        for (path, agg) in &self.gateway {
            if agg.latencies_us.is_empty() {
                continue;
            }
            let key = format!("path=\"{path}\"");
            let series = hists.iter().find(|(labels, _)| *labels == key).ok_or_else(|| {
                format!("snapshot has no gateway latency series for path {path:?}")
            })?;
            if series.1.count != agg.latencies_us.len() as u64 {
                return Err(format!(
                    "gateway path {path:?} count mismatch: snapshot has {} observations, \
                     JSONL has {}",
                    series.1.count,
                    agg.latencies_us.len()
                ));
            }
        }
        let hist = merge_hists(&hists)?;
        let n = latencies.len() as u64;
        if hist.count != n {
            return Err(format!(
                "gateway request count mismatch: snapshot histograms hold {} observations, \
                 JSONL has {n}",
                hist.count
            ));
        }
        let mut sorted = latencies;
        sorted.sort_unstable();
        lines.push(format!(
            "gateway ok: {n} requests across {} path series",
            self.gateway.values().filter(|a| !a.latencies_us.is_empty()).count()
        ));
        check_quantiles(&hist, &sorted, "gateway ", lines)
    }
}

/// Shared p50/p99 agreement check between a bucketed snapshot histogram
/// and the exact sorted latencies: the bucket the exact percentile lands
/// in and the bucket the snapshot estimates must be within ±1.
fn check_quantiles(
    hist: &HistSnapshot,
    sorted: &[u64],
    ctx: &str,
    lines: &mut Vec<String>,
) -> Result<(), String> {
    for (tag, q) in [("p50", 0.5), ("p99", 0.99)] {
        let exact = percentile(sorted, q);
        let exact_bucket = hist.bucket_index_of(exact as f64);
        let est_bucket = hist
            .quantile_bucket_index(q)
            .ok_or("empty snapshot histogram after count check")?;
        let diff = exact_bucket.abs_diff(est_bucket);
        if diff > 1 {
            return Err(format!(
                "{ctx}{tag} disagrees: exact {exact}us lands in bucket {exact_bucket}, \
                 snapshot estimates bucket {est_bucket} ({diff} buckets apart)"
            ));
        }
        let est = hist.quantile(q).unwrap_or(f64::NAN);
        lines.push(format!(
            "  {ctx}{tag}: exact {exact}us, snapshot bucket <= {est:.1}us \
             (bucket {est_bucket} vs {exact_bucket})"
        ));
    }
    Ok(())
}

/// Merges per-label histogram series (identical bucket layouts — they all
/// come from the same [`names`] spec) into one distribution, so overall
/// percentiles can be checked across models.
fn merge_hists(hists: &[(String, HistSnapshot)]) -> Result<HistSnapshot, String> {
    let mut populated = hists.iter().filter(|(_, h)| h.count > 0);
    let first = populated
        .next()
        .ok_or("JSONL stream has request latencies but the snapshot has none")?;
    let mut merged = first.1.clone();
    for (labels, h) in populated {
        if h.bounds != merged.bounds {
            return Err(format!("latency series {{{labels}}} has mismatched bucket bounds"));
        }
        for (slot, b) in merged.buckets.iter_mut().zip(&h.buckets) {
            *slot += b;
        }
        merged.count += h.count;
        merged.sum += h.sum;
    }
    Ok(merged)
}

/// Nearest-index percentile of an already-sorted slice:
/// `sorted[round((len-1) * q)]` — the same estimator `bench_serve` reports,
/// so report and benchmark agree exactly.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Formats microseconds with an adaptive unit.
fn format_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::EventFold;
    use crate::registry::Registry;
    use clfd_obs::{Event, Recorder};
    use std::sync::Arc;

    fn jsonl_for(events: &[Event]) -> String {
        events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json_line(i as u64, i as u64))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn serve_events(latencies: &[u64]) -> Vec<Event> {
        serve_events_for("default", latencies)
    }

    fn serve_events_for(model: &str, latencies: &[u64]) -> Vec<Event> {
        let mut events = vec![Event::RunStart { name: "serve".into(), detail: "smoke".into() }];
        for (i, &l) in latencies.iter().enumerate() {
            events.push(Event::RequestDone {
                request: i as u64,
                sessions: 1,
                latency_us: l,
                model: model.to_string(),
            });
        }
        events
    }

    #[test]
    fn summary_extracts_stages_epochs_and_latencies() {
        let events = vec![
            Event::RunStart { name: "fit".into(), detail: "demo".into() },
            Event::StageEnd { stage: "corrector".into(), wall_ms: 1, wall_us: 1500 },
            Event::StageEnd { stage: "corrector/simclr".into(), wall_ms: 0, wall_us: 900 },
            Event::EpochEnd {
                stage: "corrector/simclr".into(),
                epoch: 0,
                epochs: 1,
                batches: 4,
                loss: 2.0,
                grad_norm: None,
                lr: 0.01,
                wall_ms: 3,
            },
            Event::RequestDone {
                request: 0,
                sessions: 2,
                latency_us: 750,
                model: "fraud@1".into(),
            },
        ];
        let text = jsonl_for(&events);
        let s = RunSummary::from_lines(text.lines()).unwrap();
        assert_eq!(s.events, 5);
        assert_eq!(s.stages["corrector/simclr"].total_us, 900);
        assert_eq!(s.epochs["corrector/simclr"].len(), 1);
        assert_eq!(s.serve["fraud@1"].latencies_us, vec![750]);
        let rendered = s.render();
        assert!(rendered.contains("corrector"));
        assert!(rendered.contains("simclr"));
        assert!(rendered.contains("p50"));
        assert!(rendered.contains("[fraud@1]"), "{rendered}");
    }

    #[test]
    fn summary_groups_serve_and_swaps_by_model() {
        let mut events = serve_events_for("fraud@1", &[100, 200]);
        events.extend(serve_events_for("fraud@2", &[300]).split_off(1));
        events.push(Event::RequestExpired {
            request: 7,
            model: "fraud@1".into(),
            waited_us: 9000,
        });
        events.push(Event::ServePanic {
            worker: 0,
            model: "fraud@2".into(),
            detail: "boom".into(),
        });
        events.push(Event::SwapStart { model: "fraud".into(), version: 2 });
        events.push(Event::SwapCommit { model: "fraud".into(), version: 2, prior: Some(1) });
        events.push(Event::SwapRollback {
            model: "fraud".into(),
            version: 3,
            active: Some(2),
            reason: "canary error rate".into(),
        });
        let text = jsonl_for(&events);
        let s = RunSummary::from_lines(text.lines()).unwrap();
        assert_eq!(s.serve["fraud@1"].latencies_us, vec![100, 200]);
        assert_eq!(s.serve["fraud@1"].deadline_exceeded, 1);
        assert_eq!(s.serve["fraud@2"].latencies_us, vec![300]);
        assert_eq!(s.serve["fraud@2"].panics, 1);
        assert_eq!(s.swaps.len(), 3);
        assert_eq!(s.swaps[2].outcome, "rollback");
        assert_eq!(s.swaps[2].reason, "canary error rate");
        let rendered = s.render();
        assert!(rendered.contains("[fraud@1]"), "{rendered}");
        assert!(rendered.contains("[fraud@2]"), "{rendered}");
        assert!(rendered.contains("Swap timeline (3 transitions, 1 rollbacks)"), "{rendered}");
        assert!(rendered.contains("canary error rate"), "{rendered}");
    }

    #[test]
    fn check_snapshot_merges_per_model_series() {
        let mut events = serve_events_for("fraud@1", &(1..=50).map(|i| i * 31).collect::<Vec<_>>());
        events.extend(
            serve_events_for("fraud@2", &(1..=50).map(|i| i * 53).collect::<Vec<_>>())
                .split_off(1),
        );
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        for e in &events {
            fold.record(e);
        }
        let text = jsonl_for(&events);
        let summary = RunSummary::from_lines(text.lines()).unwrap();
        let report = summary.check_snapshot(&registry.snapshot().to_prometheus()).unwrap();
        assert!(report.contains("100 requests across 2 model series"), "{report}");
    }

    #[test]
    fn summary_aggregates_kernel_counters_by_scope() {
        let events = vec![
            Event::RunStart { name: "bench_suite".into(), detail: "smoke".into() },
            Event::KernelCounters {
                scope: "matmul_512x512x512@2t".into(),
                launches: 40,
                parallel_launches: 36,
                busy_ns: 8_000_000,
            },
            Event::KernelCounters {
                scope: "matmul_512x512x512@2t".into(),
                launches: 10,
                parallel_launches: 4,
                busy_ns: 2_000_000,
            },
            Event::KernelCounters {
                scope: "softmax_rows_512x512@1t".into(),
                launches: 5,
                parallel_launches: 0,
                busy_ns: 500_000,
            },
        ];
        let text = jsonl_for(&events);
        let s = RunSummary::from_lines(text.lines()).unwrap();
        let mm = &s.kernels["matmul_512x512x512@2t"];
        assert_eq!((mm.events, mm.launches, mm.parallel_launches), (2, 50, 40));
        assert_eq!(mm.busy_ns, 10_000_000);
        let rendered = s.render();
        assert!(rendered.contains("Kernel throughput (2 scopes, 55 launches"), "{rendered}");
        assert!(rendered.contains("matmul_512x512x512@2t"), "{rendered}");
        assert!(rendered.contains("80.0%"), "{rendered}");
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let err = RunSummary::from_lines(["{\"type\":\"message\",\"text\":\"ok\"}", "{oops"])
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn check_snapshot_accepts_a_matching_fold() {
        let latencies: Vec<u64> = (1..=200).map(|i| i * 37).collect();
        let events = serve_events(&latencies);
        // The snapshot is exactly what an EventFold would have aggregated.
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        for e in &events {
            fold.record(e);
        }
        let prom = registry.snapshot().to_prometheus();
        let text = jsonl_for(&events);
        let summary = RunSummary::from_lines(text.lines()).unwrap();
        let report = summary.check_snapshot(&prom).unwrap();
        assert!(report.contains("p50"), "{report}");
        assert!(report.contains("p99"), "{report}");
    }

    #[test]
    fn check_snapshot_rejects_count_mismatch() {
        let events = serve_events(&[100, 200, 300]);
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        for e in &events {
            fold.record(e);
        }
        // Summary sees one extra request the snapshot never counted.
        let mut all = events.clone();
        all.push(Event::RequestDone {
            request: 9,
            sessions: 1,
            latency_us: 400,
            model: "default".into(),
        });
        let text = jsonl_for(&all);
        let summary = RunSummary::from_lines(text.lines()).unwrap();
        let err = summary.check_snapshot(&registry.snapshot().to_prometheus()).unwrap_err();
        assert!(err.contains("count mismatch"), "{err}");
    }

    #[test]
    fn check_snapshot_rejects_shifted_percentiles() {
        // Snapshot folded from very different latencies than the stream.
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        for e in serve_events(&[1_000_000; 4]) {
            fold.record(&e);
        }
        let text = jsonl_for(&serve_events(&[10, 20, 30, 40]));
        let summary = RunSummary::from_lines(text.lines()).unwrap();
        let err = summary.check_snapshot(&registry.snapshot().to_prometheus()).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
    }

    #[test]
    fn summary_and_check_cover_gateway_traffic() {
        // Dense latency ramps (adjacent samples well inside one log
        // bucket), so the exact-percentile vs bucket-rank comparison in
        // check_quantiles is testing agreement, not sparse-sample skew.
        let serve_latencies: Vec<u64> = (1..=50).map(|i| i * 37).collect();
        let gateway_latencies: Vec<u64> = (1..=50).map(|i| i * 41).collect();
        let mut events = serve_events(&serve_latencies);
        for (i, l) in gateway_latencies.iter().enumerate() {
            events.push(Event::HttpRequest {
                tenant: "anonymous".into(),
                method: "POST".into(),
                path: "/v1/score".into(),
                status: if i == 3 { 429 } else { 200 },
                latency_us: *l,
            });
        }
        events.push(Event::ConnOpened { active: 1 });
        events.push(Event::GatewayShed { reason: "queue_full".into() });
        events.push(Event::ConnClosed { requests: 50, reason: "client_close".into() });
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        for e in &events {
            fold.record(e);
        }
        let text = jsonl_for(&events);
        let s = RunSummary::from_lines(text.lines()).unwrap();
        assert_eq!(s.gateway["/v1/score"].latencies_us, gateway_latencies);
        assert_eq!(s.gateway["/v1/score"].statuses[&200], 49);
        assert_eq!(s.gateway["/v1/score"].statuses[&429], 1);
        assert_eq!(s.conns_opened, 1);
        assert_eq!(s.gateway_shed["queue_full"], 1);
        let rendered = s.render();
        assert!(rendered.contains("Gateway edge latency"), "{rendered}");
        assert!(rendered.contains("shed[queue_full] 1"), "{rendered}");
        let report = s.check_snapshot(&registry.snapshot().to_prometheus()).unwrap();
        assert!(report.contains("gateway ok: 50 requests"), "{report}");
        assert!(report.contains("gateway p99"), "{report}");

        // An http_request the snapshot never folded is rejected.
        events.push(Event::HttpRequest {
            tenant: "anonymous".into(),
            method: "POST".into(),
            path: "/v1/score".into(),
            status: 200,
            latency_us: 500,
        });
        let text = jsonl_for(&events);
        let s2 = RunSummary::from_lines(text.lines()).unwrap();
        let err = s2.check_snapshot(&registry.snapshot().to_prometheus()).unwrap_err();
        assert!(err.contains("gateway"), "{err}");
    }

    #[test]
    fn percentile_matches_bench_serve_estimator() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.5), 51); // round(99*0.5)=50 → 51
        assert_eq!(percentile(&sorted, 0.99), 99); // round(98.01)=98 → 99
        assert_eq!(percentile(&sorted, 1.0), 100);
    }
}
