//! Run-log analysis for `clfd-report`: folds a `RUN_*.jsonl` telemetry
//! stream into a [`RunSummary`] (stage timing tree, epoch-loss table,
//! guard timeline, serve latency percentiles) and cross-checks a
//! Prometheus snapshot against the exact percentiles recomputed from the
//! raw event stream.

use crate::expo::{hist_from_samples, parse_prometheus};
use crate::fold::names;
use clfd_obs::json::{parse, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One epoch row extracted from an `epoch_end` event.
#[derive(Debug, Clone)]
pub struct EpochRow {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Total epochs the stage runs.
    pub epochs: u64,
    /// Mean training loss.
    pub loss: f64,
    /// Final-batch gradient norm, when recorded.
    pub grad_norm: Option<f64>,
    /// Learning rate at epoch end.
    pub lr: f64,
    /// Epoch wall time in milliseconds.
    pub wall_ms: u64,
}

/// One guard intervention extracted from a `guard` event.
#[derive(Debug, Clone)]
pub struct GuardRow {
    /// Milliseconds since the sink was created (file time axis).
    pub t_ms: u64,
    /// Stage path.
    pub stage: String,
    /// Guarded step index.
    pub step: u64,
    /// Intervention tag (`rollback`, `clip`, `rewarm`, `abort`).
    pub action: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Aggregated wall time of one stage path.
#[derive(Debug, Clone, Default)]
pub struct StageAgg {
    /// Number of `stage_end` events for the path.
    pub count: u64,
    /// Total wall time in microseconds.
    pub total_us: u64,
}

/// Serving aggregates from `request_done` / `batch_flushed` /
/// `queue_depth` events.
#[derive(Debug, Clone, Default)]
pub struct ServeAgg {
    /// Every request latency in microseconds, in completion order.
    pub latencies_us: Vec<u64>,
    /// Total sessions carried by completed requests.
    pub sessions: u64,
    /// Number of flushed micro-batches.
    pub batches: u64,
    /// Total rows across flushed micro-batches.
    pub batch_rows: u64,
    /// Maximum sampled queue depth.
    pub max_queue_depth: u64,
    /// Configured queue capacity (last seen).
    pub capacity: u64,
}

/// Aggregated corrector-confidence histogram per stage.
#[derive(Debug, Clone, Default)]
pub struct ConfAgg {
    /// Number of confidences summarized.
    pub count: u64,
    /// Sum of confidences.
    pub sum: f64,
    /// Per-bucket counts over `[0, 1]`.
    pub buckets: Vec<u64>,
}

/// Everything `clfd-report` extracts from one or more JSONL event streams.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Total events ingested.
    pub events: u64,
    /// `run_start` names with details, in order.
    pub runs: Vec<(String, String)>,
    /// Stage wall-time aggregates, keyed by stage path.
    pub stages: BTreeMap<String, StageAgg>,
    /// Epoch rows per stage path.
    pub epochs: BTreeMap<String, Vec<EpochRow>>,
    /// Guard interventions in file order.
    pub guards: Vec<GuardRow>,
    /// Number of injected faults.
    pub faults: u64,
    /// Serving aggregates.
    pub serve: ServeAgg,
    /// Confidence aggregates per stage path.
    pub confidence: BTreeMap<String, ConfAgg>,
    /// Isolated run failures (`model: error`), in file order.
    pub run_failures: Vec<String>,
    /// Number of sweep cells completed.
    pub cells: u64,
    /// Number of embedded `metrics_report` snapshots (each validated).
    pub metrics_reports: u64,
    /// Artifact paths written during the run.
    pub artifacts: Vec<String>,
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing integer field {key:?}"))
}

fn opt_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

impl RunSummary {
    /// Folds JSONL lines (blank lines skipped) into a summary.
    ///
    /// # Errors
    /// Returns `"line N: …"` for the first malformed line — a parse error
    /// in a telemetry stream means the producer is broken, which is
    /// exactly what the CI gate exists to catch.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Result<Self, String> {
        let mut s = RunSummary::default();
        for (i, line) in lines.into_iter().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            s.ingest(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        Ok(s)
    }

    fn ingest(&mut self, line: &str) -> Result<(), String> {
        let v = parse(line)?;
        let ty = need_str(&v, "type")?;
        self.events += 1;
        match ty.as_str() {
            "run_start" => {
                self.runs.push((need_str(&v, "name")?, need_str(&v, "detail")?));
            }
            "stage_end" => {
                let stage = need_str(&v, "stage")?;
                // Older streams only carried wall_ms; fall back so mixed
                // logs still report (at ms resolution).
                let wall_us = v
                    .get("wall_us")
                    .and_then(Value::as_u64)
                    .or_else(|| v.get("wall_ms").and_then(Value::as_u64).map(|ms| ms * 1000))
                    .ok_or("stage_end without wall_us/wall_ms")?;
                let agg = self.stages.entry(stage).or_default();
                agg.count += 1;
                agg.total_us += wall_us;
            }
            "epoch_end" => {
                let stage = need_str(&v, "stage")?;
                self.epochs.entry(stage).or_default().push(EpochRow {
                    epoch: need_u64(&v, "epoch")?,
                    epochs: need_u64(&v, "epochs")?,
                    loss: opt_f64(&v, "loss").unwrap_or(f64::NAN),
                    grad_norm: opt_f64(&v, "grad_norm"),
                    lr: opt_f64(&v, "lr").unwrap_or(f64::NAN),
                    wall_ms: need_u64(&v, "wall_ms")?,
                });
            }
            "guard" => {
                self.guards.push(GuardRow {
                    t_ms: v.get("t_ms").and_then(Value::as_u64).unwrap_or(0),
                    stage: need_str(&v, "stage")?,
                    step: need_u64(&v, "step")?,
                    action: need_str(&v, "action")?,
                    detail: need_str(&v, "detail")?,
                });
            }
            "fault_injected" => self.faults += 1,
            "request_done" => {
                self.serve.latencies_us.push(need_u64(&v, "latency_us")?);
                self.serve.sessions += need_u64(&v, "sessions")?;
            }
            "batch_flushed" => {
                self.serve.batches += 1;
                self.serve.batch_rows += need_u64(&v, "rows")?;
            }
            "queue_depth" => {
                let depth = need_u64(&v, "depth")?;
                self.serve.max_queue_depth = self.serve.max_queue_depth.max(depth);
                self.serve.capacity = need_u64(&v, "capacity")?;
            }
            "confidence" => {
                let stage = need_str(&v, "stage")?;
                let buckets: Vec<u64> = v
                    .get("buckets")
                    .and_then(Value::as_array)
                    .ok_or("confidence without buckets")?
                    .iter()
                    .map(|b| b.as_u64().ok_or("non-integer bucket count"))
                    .collect::<Result<_, _>>()?;
                let agg = self.confidence.entry(stage).or_default();
                if agg.buckets.len() < buckets.len() {
                    agg.buckets.resize(buckets.len(), 0);
                }
                for (slot, b) in agg.buckets.iter_mut().zip(&buckets) {
                    *slot += b;
                }
                agg.count += need_u64(&v, "count")?;
                agg.sum += opt_f64(&v, "sum").unwrap_or(0.0);
            }
            "run_failure" => {
                self.run_failures
                    .push(format!("{}: {}", need_str(&v, "model")?, need_str(&v, "error")?));
            }
            "cell_end" => self.cells += 1,
            "metrics_report" => {
                let snapshot = need_str(&v, "snapshot")?;
                parse(&snapshot).map_err(|e| format!("embedded metrics snapshot: {e}"))?;
                self.metrics_reports += 1;
            }
            "artifact_written" => self.artifacts.push(need_str(&v, "path")?),
            // Known lifecycle events carry nothing the summary tabulates;
            // unknown types are tolerated (the stream may outgrow this
            // reader) but still counted.
            _ => {}
        }
        Ok(())
    }

    /// True when the stream contained nothing reportable (the CI gate
    /// treats this as a failure: a silent run is a broken run).
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "events ingested: {}", self.events);
        for (name, detail) in &self.runs {
            let _ = writeln!(out, "run: {name} ({detail})");
        }
        if !self.stages.is_empty() {
            let _ = writeln!(out, "\nStage timing (wall):");
            for (path, agg) in &self.stages {
                let depth = path.matches('/').count();
                let parent = path.rsplit_once('/').map(|(p, _)| p);
                let label = match parent {
                    Some(p) if self.stages.contains_key(p) => {
                        path.rsplit_once('/').map_or(path.as_str(), |(_, l)| l)
                    }
                    _ => path.as_str(),
                };
                let _ = writeln!(
                    out,
                    "  {:indent$}{label:<30} {:>4}x {:>12}",
                    "",
                    agg.count,
                    format_us(agg.total_us),
                    indent = depth * 2,
                );
            }
        }
        if !self.epochs.is_empty() {
            let _ = writeln!(out, "\nEpoch losses:");
            for (stage, rows) in &self.epochs {
                let _ = writeln!(out, "  {stage}:");
                let _ = writeln!(
                    out,
                    "    {:>5} {:>12} {:>12} {:>10} {:>9}",
                    "epoch", "loss", "grad_norm", "lr", "wall_ms"
                );
                for r in rows {
                    let gn =
                        r.grad_norm.map_or_else(|| "-".to_string(), |g| format!("{g:.4}"));
                    let _ = writeln!(
                        out,
                        "    {:>2}/{:<2} {:>12.6} {:>12} {:>10.6} {:>9}",
                        r.epoch + 1,
                        r.epochs,
                        r.loss,
                        gn,
                        r.lr,
                        r.wall_ms
                    );
                }
            }
        }
        if !self.guards.is_empty() || self.faults > 0 {
            let _ = writeln!(
                out,
                "\nGuard timeline ({} interventions, {} faults injected):",
                self.guards.len(),
                self.faults
            );
            for g in &self.guards {
                let _ = writeln!(
                    out,
                    "  t={:>6}ms {:<10} step {:>5} [{}] {}",
                    g.t_ms, g.action, g.step, g.stage, g.detail
                );
            }
        }
        if !self.serve.latencies_us.is_empty() {
            let mut sorted = self.serve.latencies_us.clone();
            sorted.sort_unstable();
            let _ = writeln!(out, "\nServe latency (us), {} requests:", sorted.len());
            for (tag, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                let _ = writeln!(out, "  {tag:<4} {:>10}", percentile(&sorted, q));
            }
            let _ = writeln!(out, "  max  {:>10}", sorted[sorted.len() - 1]);
            let mean_rows = if self.serve.batches > 0 {
                self.serve.batch_rows as f64 / self.serve.batches as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  sessions {} | batches {} (mean {:.1} rows) | peak queue {}/{}",
                self.serve.sessions,
                self.serve.batches,
                mean_rows,
                self.serve.max_queue_depth,
                self.serve.capacity
            );
        }
        if !self.confidence.is_empty() {
            let _ = writeln!(out, "\nCorrector confidence:");
            for (stage, agg) in &self.confidence {
                let mean = if agg.count > 0 { agg.sum / agg.count as f64 } else { f64::NAN };
                let frac_high = if agg.count > 0 {
                    // Buckets ≥ 0.9 in a 20-bucket [0,1] layout are the
                    // last two.
                    let high: u64 = agg.buckets.iter().rev().take(2).sum();
                    high as f64 / agg.count as f64
                } else {
                    f64::NAN
                };
                let _ = writeln!(
                    out,
                    "  {stage}: n={} mean={mean:.4} frac(c>=0.9)={frac_high:.3}",
                    agg.count
                );
            }
        }
        if self.cells > 0 || !self.run_failures.is_empty() {
            let _ = writeln!(
                out,
                "\nSweep: {} cells, {} isolated run failures",
                self.cells,
                self.run_failures.len()
            );
            for f in &self.run_failures {
                let _ = writeln!(out, "  FAIL {f}");
            }
        }
        if self.metrics_reports > 0 {
            let _ = writeln!(out, "\nmetrics_report snapshots: {} (all valid JSON)", self.metrics_reports);
        }
        for a in &self.artifacts {
            let _ = writeln!(out, "artifact: {a}");
        }
        out
    }

    /// Cross-checks a Prometheus snapshot against this summary: the
    /// snapshot's request-latency histogram must contain every request the
    /// JSONL stream recorded, and its p50/p99 bucket estimates must agree
    /// with the exact percentiles recomputed from the raw latencies to
    /// within ±1 bucket.
    ///
    /// # Errors
    /// Returns a description of the first disagreement.
    pub fn check_snapshot(&self, prom_text: &str) -> Result<String, String> {
        let samples = parse_prometheus(prom_text)?;
        if samples.is_empty() {
            return Err("snapshot contains no samples".to_string());
        }
        let hists = hist_from_samples(&samples, names::SERVE_REQUEST_LATENCY_US)?;
        if self.serve.latencies_us.is_empty() {
            return if hists.iter().all(|(_, h)| h.count == 0) {
                Ok(format!("snapshot ok: {} samples, no serve traffic on either side", samples.len()))
            } else {
                Err("snapshot has request latencies but the JSONL stream has none".to_string())
            };
        }
        let (_, hist) = hists
            .iter()
            .find(|(_, h)| h.count > 0)
            .ok_or("JSONL stream has request latencies but the snapshot has none")?;
        let n = self.serve.latencies_us.len() as u64;
        if hist.count != n {
            return Err(format!(
                "request count mismatch: snapshot histogram has {} observations, JSONL has {n}",
                hist.count
            ));
        }
        let mut sorted = self.serve.latencies_us.clone();
        sorted.sort_unstable();
        let mut lines = vec![format!("snapshot ok: {} samples, {n} requests", samples.len())];
        for (tag, q) in [("p50", 0.5), ("p99", 0.99)] {
            let exact = percentile(&sorted, q);
            let exact_bucket = hist.bucket_index_of(exact as f64);
            let est_bucket = hist
                .quantile_bucket_index(q)
                .ok_or("empty snapshot histogram after count check")?;
            let diff = exact_bucket.abs_diff(est_bucket);
            if diff > 1 {
                return Err(format!(
                    "{tag} disagrees: exact {exact}us lands in bucket {exact_bucket}, \
                     snapshot estimates bucket {est_bucket} ({diff} buckets apart)"
                ));
            }
            let est = hist.quantile(q).unwrap_or(f64::NAN);
            lines.push(format!(
                "  {tag}: exact {exact}us, snapshot bucket <= {est:.1}us (bucket {est_bucket} vs {exact_bucket})"
            ));
        }
        Ok(lines.join("\n"))
    }
}

/// Nearest-index percentile of an already-sorted slice:
/// `sorted[round((len-1) * q)]` — the same estimator `bench_serve` reports,
/// so report and benchmark agree exactly.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Formats microseconds with an adaptive unit.
fn format_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::EventFold;
    use crate::registry::Registry;
    use clfd_obs::{Event, Recorder};
    use std::sync::Arc;

    fn jsonl_for(events: &[Event]) -> String {
        events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json_line(i as u64, i as u64))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn serve_events(latencies: &[u64]) -> Vec<Event> {
        let mut events = vec![Event::RunStart { name: "serve".into(), detail: "smoke".into() }];
        for (i, &l) in latencies.iter().enumerate() {
            events.push(Event::RequestDone { request: i as u64, sessions: 1, latency_us: l });
        }
        events
    }

    #[test]
    fn summary_extracts_stages_epochs_and_latencies() {
        let events = vec![
            Event::RunStart { name: "fit".into(), detail: "demo".into() },
            Event::StageEnd { stage: "corrector".into(), wall_ms: 1, wall_us: 1500 },
            Event::StageEnd { stage: "corrector/simclr".into(), wall_ms: 0, wall_us: 900 },
            Event::EpochEnd {
                stage: "corrector/simclr".into(),
                epoch: 0,
                epochs: 1,
                batches: 4,
                loss: 2.0,
                grad_norm: None,
                lr: 0.01,
                wall_ms: 3,
            },
            Event::RequestDone { request: 0, sessions: 2, latency_us: 750 },
        ];
        let text = jsonl_for(&events);
        let s = RunSummary::from_lines(text.lines()).unwrap();
        assert_eq!(s.events, 5);
        assert_eq!(s.stages["corrector/simclr"].total_us, 900);
        assert_eq!(s.epochs["corrector/simclr"].len(), 1);
        assert_eq!(s.serve.latencies_us, vec![750]);
        let rendered = s.render();
        assert!(rendered.contains("corrector"));
        assert!(rendered.contains("simclr"));
        assert!(rendered.contains("p50"));
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let err = RunSummary::from_lines(["{\"type\":\"message\",\"text\":\"ok\"}", "{oops"])
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn check_snapshot_accepts_a_matching_fold() {
        let latencies: Vec<u64> = (1..=200).map(|i| i * 37).collect();
        let events = serve_events(&latencies);
        // The snapshot is exactly what an EventFold would have aggregated.
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        for e in &events {
            fold.record(e);
        }
        let prom = registry.snapshot().to_prometheus();
        let text = jsonl_for(&events);
        let summary = RunSummary::from_lines(text.lines()).unwrap();
        let report = summary.check_snapshot(&prom).unwrap();
        assert!(report.contains("p50"), "{report}");
        assert!(report.contains("p99"), "{report}");
    }

    #[test]
    fn check_snapshot_rejects_count_mismatch() {
        let events = serve_events(&[100, 200, 300]);
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        for e in &events {
            fold.record(e);
        }
        // Summary sees one extra request the snapshot never counted.
        let mut all = events.clone();
        all.push(Event::RequestDone { request: 9, sessions: 1, latency_us: 400 });
        let text = jsonl_for(&all);
        let summary = RunSummary::from_lines(text.lines()).unwrap();
        let err = summary.check_snapshot(&registry.snapshot().to_prometheus()).unwrap_err();
        assert!(err.contains("count mismatch"), "{err}");
    }

    #[test]
    fn check_snapshot_rejects_shifted_percentiles() {
        // Snapshot folded from very different latencies than the stream.
        let registry = Arc::new(Registry::new());
        let fold = EventFold::new(registry.clone());
        for e in serve_events(&[1_000_000; 4]) {
            fold.record(&e);
        }
        let text = jsonl_for(&serve_events(&[10, 20, 30, 40]));
        let summary = RunSummary::from_lines(text.lines()).unwrap();
        let err = summary.check_snapshot(&registry.snapshot().to_prometheus()).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
    }

    #[test]
    fn percentile_matches_bench_serve_estimator() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.5), 51); // round(99*0.5)=50 → 51
        assert_eq!(percentile(&sorted, 0.99), 99); // round(98.01)=98 → 99
        assert_eq!(percentile(&sorted, 1.0), 100);
    }
}
