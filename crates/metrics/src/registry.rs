//! The metric registry: named, labeled families of atomic counters,
//! gauges, and histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`crate::Histogram`]) are `Arc`s
//! returned by the registration methods; after registration every update
//! is a relaxed atomic operation with no registry lock. Registering the
//! same `(name, labels)` pair again returns the existing handle, so call
//! sites don't need to cache handles to cooperate. Families and series are
//! stored in `BTreeMap`s, which makes every [`Registry::snapshot`]
//! deterministically ordered — the property the exposition golden tests
//! pin.

use crate::expo::{FamilySnapshot, HistSnapshot, SeriesSnapshot, SeriesValue, Snapshot};
use crate::hist::{BucketSpec, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0 before the first [`Gauge::set`]).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// What a metric family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counts.
    Counter,
    /// Instantaneous values.
    Gauge,
    /// Bucketed distributions.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the rendered label set (`{k="v",…}` with sorted keys), which
    /// doubles as the exposition ordering.
    series: BTreeMap<String, Series>,
}

/// A set of metric families, deterministic in exposition order and
/// thread-safe in registration and update.
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a counter. The first registration of a family
    /// fixes its help text.
    ///
    /// # Panics
    /// Panics when `name` already names a gauge or histogram family.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.series(name, help, labels, MetricKind::Counter, |series| match series {
            Series::Counter(c) => c.clone(),
            _ => unreachable!("kind checked by family lookup"),
        })
    }

    /// Registers (or finds) a gauge.
    ///
    /// # Panics
    /// Panics when `name` already names a counter or histogram family.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.series(name, help, labels, MetricKind::Gauge, |series| match series {
            Series::Gauge(g) => g.clone(),
            _ => unreachable!("kind checked by family lookup"),
        })
    }

    /// Registers (or finds) a histogram. The first registration of a series
    /// fixes its bucket layout; later calls with a different `spec` return
    /// the existing histogram unchanged.
    ///
    /// # Panics
    /// Panics when `name` already names a counter or gauge family.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        spec: BucketSpec,
    ) -> Arc<Histogram> {
        let key = render_labels(labels);
        {
            let families = self.read();
            if let Some(family) = families.get(name) {
                check_kind(name, family.kind, MetricKind::Histogram);
                if let Some(Series::Histogram(h)) = family.series.get(&key) {
                    return h.clone();
                }
            }
        }
        let mut families = self.write();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Histogram,
            series: BTreeMap::new(),
        });
        check_kind(name, family.kind, MetricKind::Histogram);
        let entry = family
            .series
            .entry(key)
            .or_insert_with(|| Series::Histogram(Arc::new(Histogram::new(spec))));
        match entry {
            Series::Histogram(h) => h.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    fn series<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        extract: impl Fn(&Series) -> Arc<T>,
    ) -> Arc<T> {
        let key = render_labels(labels);
        {
            let families = self.read();
            if let Some(family) = families.get(name) {
                check_kind(name, family.kind, kind);
                if let Some(series) = family.series.get(&key) {
                    return extract(series);
                }
            }
        }
        let mut families = self.write();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        check_kind(name, family.kind, kind);
        let entry = family.series.entry(key).or_insert_with(|| match kind {
            MetricKind::Counter => Series::Counter(Arc::new(Counter::default())),
            MetricKind::Gauge => Series::Gauge(Arc::new(Gauge::default())),
            MetricKind::Histogram => unreachable!("histograms register via Registry::histogram"),
        });
        extract(entry)
    }

    /// Captures every family, series, and value into an immutable,
    /// deterministically ordered [`Snapshot`].
    ///
    /// The capture is per-atomic, not globally atomic: values written
    /// *during* the snapshot may straddle it (see [`Histogram`] on
    /// tearing). Quiesce writers for an exact snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.read();
        let families = families
            .iter()
            .map(|(name, family)| FamilySnapshot {
                name: name.clone(),
                help: family.help.clone(),
                kind: family.kind,
                series: family
                    .series
                    .iter()
                    .map(|(labels, series)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match series {
                            Series::Counter(c) => SeriesValue::Counter(c.get()),
                            Series::Gauge(g) => SeriesValue::Gauge(g.get()),
                            Series::Histogram(h) => SeriesValue::Histogram(HistSnapshot {
                                bounds: h.bounds().to_vec(),
                                buckets: h.bucket_counts(),
                                count: h.count(),
                                sum: h.sum(),
                                lower_edge: h.spec().lower_edge(),
                            }),
                        },
                    })
                    .collect(),
            })
            .collect();
        Snapshot { families }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Family>> {
        self.families.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Family>> {
        self.families.write().unwrap_or_else(PoisonError::into_inner)
    }
}

fn check_kind(name: &str, have: MetricKind, want: MetricKind) {
    assert!(
        have == want,
        "metric family {name} already registered as a {}, requested as a {}",
        have.as_str(),
        want.as_str()
    );
}

/// Renders a label set as `{k="v",…}` with keys sorted, or `""` when
/// empty — the canonical series key and exposition form.
pub(crate) fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_atom() {
        let reg = Registry::new();
        let a = reg.counter("requests_total", "requests", &[("route", "score")]);
        let b = reg.counter("requests_total", "ignored on re-registration", &[("route", "score")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let c = reg.counter("requests_total", "", &[("route", "other")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        let a = reg.gauge("g", "", &[("a", "1"), ("b", "2")]);
        let b = reg.gauge("g", "", &[("b", "2"), ("a", "1")]);
        a.set(7.0);
        assert_eq!(b.get(), 7.0);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x_total", "", &[]);
        let _ = reg.gauge("x_total", "", &[]);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(render_labels(&[("k", "a\"b\\c\nd")]), "{k=\"a\\\"b\\\\c\\nd\"}");
        assert_eq!(render_labels(&[]), "");
    }

    #[test]
    fn histogram_registration_is_idempotent() {
        let reg = Registry::new();
        let h1 = reg.histogram("lat", "", &[], BucketSpec::log(1.0, 2.0, 4));
        h1.observe(3.0);
        // A different spec on re-registration is ignored; same atoms.
        let h2 = reg.histogram("lat", "", &[], BucketSpec::log(1.0, 4.0, 2));
        assert_eq!(h2.count(), 1);
        assert_eq!(h2.bounds(), h1.bounds());
    }
}
