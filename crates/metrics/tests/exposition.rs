//! Exposition-format integration tests: the Prometheus text and JSON
//! renderings must be deterministic regardless of registration order or
//! thread interleaving, parse back line by line, and validate as JSON.

use clfd_metrics::{names, BucketSpec, EventFold, Registry};
use clfd_obs::{Event, MemorySink, Obs, Recorder};
use std::sync::Arc;
use std::thread;

/// Drives a fixed workload into a registry, registering series in a
/// thread- and order-dependent way; the *snapshot* must not depend on
/// either.
fn drive(registry: &Arc<Registry>, threads: usize) {
    let total = 240usize;
    thread::scope(|scope| {
        for t in 0..threads {
            let registry = Arc::clone(registry);
            scope.spawn(move || {
                for i in (t..total).step_by(threads) {
                    let stage = if i % 3 == 0 { "train" } else { "eval" };
                    registry
                        .counter("steps_total", "steps", &[("stage", stage)])
                        .inc();
                    registry
                        .histogram(
                            "step_us",
                            "step latency",
                            &[("stage", stage)],
                            BucketSpec::log(1.0, 2.0, 20),
                        )
                        .observe((i * 17 % 5000) as f64);
                    registry.gauge("queue_depth", "depth", &[]).set((i % 7) as f64);
                }
            });
        }
    });
    // Gauge order is racy under threads; pin it after the barrier so the
    // final value is deterministic while the counters/histograms above
    // still exercise contended registration.
    registry.gauge("queue_depth", "depth", &[]).set(3.0);
}

#[test]
fn prometheus_text_is_identical_across_runs_and_thread_counts() {
    let mut renderings = Vec::new();
    for &threads in &[1usize, 2, 8] {
        let registry = Arc::new(Registry::new());
        drive(&registry, threads);
        renderings.push(registry.snapshot().to_prometheus());
    }
    assert_eq!(renderings[0], renderings[1], "1 thread vs 2 threads");
    assert_eq!(renderings[0], renderings[2], "1 thread vs 8 threads");

    // And across repeated runs at the same thread count.
    let registry = Arc::new(Registry::new());
    drive(&registry, 8);
    assert_eq!(renderings[2], registry.snapshot().to_prometheus(), "repeat run");
}

#[test]
fn prometheus_text_parses_line_by_line() {
    let registry = Arc::new(Registry::new());
    drive(&registry, 4);
    let text = registry.snapshot().to_prometheus();

    let samples = clfd_metrics::parse_prometheus(&text).expect("own output parses");
    assert!(!samples.is_empty());

    // Every non-comment line must have produced exactly one sample.
    let value_lines =
        text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).count();
    assert_eq!(samples.len(), value_lines, "no line silently dropped");

    // The histogram reconstructs: counts match the live registry.
    let hists = clfd_metrics::expo::hist_from_samples(&samples, "step_us")
        .expect("histogram series reconstruct");
    assert_eq!(hists.len(), 2, "one series per stage label");
    let total: u64 = hists.iter().map(|(_, h)| h.count).sum();
    assert_eq!(total, 240, "every observation survived the text round-trip");
    for (labels, hist) in &hists {
        assert_eq!(
            hist.buckets.iter().sum::<u64>(),
            hist.count,
            "series {labels}: de-accumulated buckets sum to the count"
        );
    }
}

#[test]
fn json_snapshot_validates_and_stays_single_line() {
    let registry = Arc::new(Registry::new());
    drive(&registry, 2);
    let json = registry.snapshot().to_json();
    assert!(!json.contains('\n'), "snapshot JSON must be jsonl-embeddable");
    clfd_obs::json::validate(&json).expect("snapshot JSON validates");
}

/// Folding the same captured event stream twice — even from different
/// thread counts upstream — produces byte-identical expositions.
#[test]
fn event_fold_exposition_is_deterministic_for_a_fixed_stream() {
    let capture = Arc::new(MemorySink::new());
    {
        let obs = Obs::from_arc(capture.clone() as Arc<dyn Recorder>);
        for i in 0..50u64 {
            obs.emit(Event::RequestDone {
                request: i,
                sessions: 1 + (i % 3) as usize,
                latency_us: 10 * i + 1,
                model: "default".into(),
            });
        }
        obs.emit(Event::BatchFlushed {
            worker: 0,
            rows: 32,
            padded_len: 64,
            wall_us: 900,
            model: "default".into(),
        });
    }

    let render = || {
        let fold = EventFold::new(Arc::new(Registry::new()));
        for event in capture.events() {
            fold.record(&event);
        }
        fold.registry().snapshot().to_prometheus()
    };
    let first = render();
    assert_eq!(first, render(), "same stream, same text");
    assert!(first.contains(names::SERVE_REQUESTS_TOTAL));
    assert!(first.contains(names::SERVE_REQUEST_LATENCY_US));
}
