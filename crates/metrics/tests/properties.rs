//! Property tests for the metrics registry: quantile bracketing on random
//! samples, and counter/gauge/histogram integrity under thread contention.

use clfd_metrics::{BucketSpec, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::thread;

/// Exact `q`-th quantile of `sorted` by the nearest-rank definition the
/// histogram estimator brackets: the smallest value with at least
/// `ceil(q * n)` samples at or below it.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// For random samples and a spread of quantiles, the histogram's
/// `(lo, hi]` bracket must contain the exact nearest-rank quantile.
#[test]
fn log_bucket_quantiles_bracket_the_exact_quantile() {
    let mut rng = StdRng::seed_from_u64(42);
    for trial in 0..20 {
        let registry = Registry::new();
        let hist = registry.histogram(
            "trial_us",
            "random latencies",
            &[],
            BucketSpec::log(1.0, std::f64::consts::SQRT_2, 48),
        );
        // Mix scales so samples land across many buckets, including some
        // below the lowest bound and some in the overflow bucket.
        let n = 100 + trial * 37;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| {
                let magnitude = rng.gen_range(0.0_f64..7.0);
                10.0_f64.powf(magnitude) * rng.gen_range(0.1_f64..1.0)
            })
            .collect();
        for &s in &samples {
            hist.observe(s);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());

        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&samples, q);
            let (lo, hi) = hist.quantile_bounds(q).expect("non-empty histogram");
            assert!(
                lo < exact && exact <= hi,
                "trial {trial} q={q}: exact {exact} outside bracket ({lo}, {hi}]"
            );
            assert!(lo < hi, "bracket must be a non-empty interval");
        }
    }
}

/// Linear buckets over [0, 1] bracket confidence-style samples too.
#[test]
fn linear_bucket_quantiles_bracket_the_exact_quantile() {
    let mut rng = StdRng::seed_from_u64(7);
    let registry = Registry::new();
    let hist = registry.histogram(
        "confidence",
        "corrector confidence",
        &[],
        BucketSpec::linear(0.0, 1.0, 20),
    );
    let mut samples: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0_f64..1.0)).collect();
    for &s in &samples {
        hist.observe(s);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for q in [0.1, 0.5, 0.9, 0.99] {
        let exact = exact_quantile(&samples, q);
        let (lo, hi) = hist.quantile_bounds(q).expect("non-empty histogram");
        assert!(lo < exact && exact <= hi, "q={q}: {exact} outside ({lo}, {hi}]");
        assert!(hi - lo <= 0.05 + 1e-12, "linear(0,1,20) buckets are 0.05 wide");
    }
}

/// Eight threads hammer the same counter, gauge, and histogram series —
/// resolved independently by name from each thread — and nothing is lost.
#[test]
fn counters_gauges_and_histograms_survive_contention() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Arc::new(Registry::new());

    thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                // Re-resolving by name must yield the same underlying series.
                let counter = registry.counter("hits_total", "hits", &[("kind", "x")]);
                let gauge = registry.gauge("depth", "queue depth", &[]);
                let hist = registry.histogram(
                    "obs_us",
                    "latencies",
                    &[],
                    BucketSpec::log(1.0, 2.0, 16),
                );
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.set(t as f64);
                    hist.observe((t * PER_THREAD + i) as f64 % 4096.0);
                }
            });
        }
    });

    let counter = registry.counter("hits_total", "hits", &[("kind", "x")]);
    assert_eq!(counter.get(), THREADS * PER_THREAD, "no increment lost");

    let gauge = registry.gauge("depth", "queue depth", &[]);
    let last = gauge.get();
    assert!(last.fract() == 0.0 && (0.0..THREADS as f64).contains(&last),
        "gauge holds one of the written values, got {last}");

    let hist = registry.histogram("obs_us", "latencies", &[], BucketSpec::log(1.0, 2.0, 16));
    assert_eq!(hist.count(), THREADS * PER_THREAD, "no observation lost");
    let expected_sum: f64 = (0..THREADS * PER_THREAD).map(|v| (v % 4096) as f64).sum();
    assert!(
        (hist.sum() - expected_sum).abs() < 1e-6 * expected_sum,
        "sum drifted: {} vs {expected_sum}",
        hist.sum()
    );
    assert_eq!(
        hist.bucket_counts().iter().sum::<u64>(),
        THREADS * PER_THREAD,
        "bucket counts account for every observation"
    );
}

/// Concurrent counter families with disjoint label sets stay disjoint.
#[test]
fn label_sets_are_isolated_under_contention() {
    let registry = Arc::new(Registry::new());
    thread::scope(|scope| {
        for t in 0..8usize {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                let label = format!("worker-{t}");
                let counter =
                    registry.counter("work_total", "per-worker", &[("worker", &label)]);
                for _ in 0..1_000 {
                    counter.inc();
                }
            });
        }
    });
    for t in 0..8usize {
        let label = format!("worker-{t}");
        let counter = registry.counter("work_total", "per-worker", &[("worker", &label)]);
        assert_eq!(counter.get(), 1_000, "series {label} kept its own count");
    }
}
