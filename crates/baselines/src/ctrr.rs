//! CTRR [9] — contrastive regularization for learning with noisy labels,
//! adapted to sessions per §IV-A3.
//!
//! The model trains an LSTM encoder + classifier with cross-entropy on the
//! noisy labels *plus* a contrastive regularization term that pulls
//! together pairs the model itself is confident share a class (session
//! similarity analysis in the encoded space). The regularizer keeps the
//! representations from being dominated by label noise, but — as the paper
//! observes — confident-pair selection through sample similarity breaks
//! down under session diversity.

use crate::common::{session_refs, train_embeddings, JointModel, TrainedJointEnsemble};
use crate::SessionClassifier;
use clfd::api::Scorer;
use clfd::ClfdConfig;
use clfd_data::batch::{batch_indices, one_hot, SessionBatch};
use clfd_data::session::{Label, Session, SplitCorpus};
use clfd_losses::cce_loss;
use clfd_losses::contrastive::{sup_con_batch, SupConVariant};
use clfd_nn::Optimizer;
use clfd_obs::{Event, Obs, Stopwatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// CTRR baseline.
#[derive(Debug)]
pub struct Ctrr {
    /// Weight of the contrastive regularization term.
    pub reg_weight: f32,
    /// Confidence threshold for selecting pairs (joint model confidence).
    pub confidence_threshold: f32,
    /// End-to-end training epochs.
    pub epochs: usize,
}

impl Default for Ctrr {
    fn default() -> Self {
        Self { reg_weight: 1.0, confidence_threshold: 0.8, epochs: 8 }
    }
}

impl SessionClassifier for Ctrr {
    fn name(&self) -> &'static str {
        "CTRR"
    }

    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, _) = session_refs(split);
        let embeddings = train_embeddings(&train, split.corpus.vocab.len(), cfg, &mut rng);

        // Encoder + classifier trained jointly: they must share one tape so
        // the CE gradient reaches the encoder.
        let mut model = JointModel::new(cfg, &mut rng);

        let span = obs.stage("baseline/ctrr/joint");
        let mut order: Vec<usize> = (0..train.len()).collect();
        for epoch in 0..self.epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(&mut rng);
            for chunk in batch_indices(&order, cfg.batch_size) {
                if chunk.len() < 2 {
                    continue;
                }
                let refs: Vec<&Session> = chunk.iter().map(|&i| train[i]).collect();
                let labels: Vec<Label> = chunk.iter().map(|&i| noisy[i]).collect();
                let batch = SessionBatch::build(&refs, &embeddings, cfg.max_seq_len);
                loss_sum += f64::from(train_step(&mut model, &batch, &labels, cfg, self));
                batches += 1;
            }
            obs.emit(Event::EpochEnd {
                stage: "baseline/ctrr/joint".to_string(),
                epoch,
                epochs: self.epochs,
                batches,
                loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                grad_norm: None,
                lr: model.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        span.finish();

        Box::new(TrainedJointEnsemble { nets: vec![model], embeddings, cfg: *cfg })
    }
}

/// One CTRR step: CE + confidence-filtered contrastive regularization.
/// Returns the total loss value.
fn train_step(
    model: &mut JointModel,
    batch: &SessionBatch,
    labels: &[Label],
    cfg: &ClfdConfig,
    spec: &Ctrr,
) -> f32 {
    let (z, logits) = model.forward(batch);
    let ce = cce_loss(&mut model.tape, logits, &one_hot(labels));

    // Confident pairs from the model's own predictions: the regularization
    // term is a supervised contrastive loss over the *predicted* classes,
    // filtered by joint confidence (Eq. 20's indicator machinery).
    let probs = model.tape.value(logits).softmax_rows();
    let predicted: Vec<Label> = probs
        .argmax_rows()
        .into_iter()
        .map(Label::from_index)
        .collect();
    let confidences: Vec<f32> = (0..probs.rows())
        .map(|r| probs.row(r).iter().fold(0.0_f32, |m, &p| m.max(p)))
        .collect();
    let reg = sup_con_batch(
        &mut model.tape,
        z,
        &predicted,
        &confidences,
        labels.len(),
        cfg.temperature,
        SupConVariant::Filtered { tau: spec.confidence_threshold },
    );
    let scaled_reg = model.tape.scale(reg, spec.reg_weight);
    let total = model.tape.add(ce, scaled_reg);
    let value = model.tape.scalar(total);
    model.tape.backward(total);
    model.step();
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    #[test]
    fn ctrr_runs_end_to_end() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 9);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&split.train_labels(), &mut rng);
        let spec = Ctrr { epochs: 4, ..Ctrr::default() };
        let preds = spec.fit_predict(&split, &noisy, &cfg, 6, &Obs::null());
        assert_eq!(preds.len(), split.test.len());
        let truth = split.test_labels();
        let acc = preds
            .iter()
            .zip(&truth)
            .filter(|(p, &l)| p.label == l)
            .count() as f32
            / truth.len() as f32;
        assert!(acc > 0.5, "CTRR accuracy {acc}");
    }
}
