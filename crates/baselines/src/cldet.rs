//! CLDet [3] — contrastive learning for insider threat detection.
//!
//! The direct ancestor of CLFD's label corrector: a SimCLR-pre-trained LSTM
//! session encoder with a classifier trained by the original *noise
//! sensitive* cross-entropy loss on the given (noisy) labels. The paper
//! uses it unmodified as a baseline (§IV-A3); its degradation under noise
//! is what motivates the mixup-GCE replacement.

use crate::common::{
    session_refs, simclr_warmup, train_embeddings, Encoder, LinearHead, TrainedEncoderHead,
};
use crate::SessionClassifier;
use clfd::api::Scorer;
use clfd::ClfdConfig;
use clfd_data::session::{Label, SplitCorpus};
use clfd_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// CLDet baseline.
#[derive(Debug, Default)]
pub struct ClDet;

impl SessionClassifier for ClDet {
    fn name(&self) -> &'static str {
        "CLDet"
    }

    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, _) = session_refs(split);
        let embeddings = train_embeddings(&train, split.corpus.vocab.len(), cfg, &mut rng);

        let mut encoder = Encoder::new(cfg, &mut rng);
        simclr_warmup(
            &mut encoder,
            &train,
            &embeddings,
            cfg,
            cfg.pretrain_epochs,
            "baseline/cldet/simclr",
            obs,
            &mut rng,
        );

        let features = encoder.features(&train, &embeddings, cfg);
        let mut head = LinearHead::new(cfg.hidden, cfg.lr, &mut rng);
        head.train_ce(
            &features,
            noisy,
            cfg.classifier_epochs,
            cfg.batch_size,
            "baseline/cldet/head",
            obs,
            &mut rng,
        );

        Box::new(TrainedEncoderHead { encoder, head, embeddings, cfg: *cfg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    #[test]
    fn cldet_learns_under_light_noise() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 11);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = NoiseModel::Uniform { eta: 0.1 }.apply(&split.train_labels(), &mut rng);
        let preds = ClDet.fit_predict(&split, &noisy, &cfg, 1, &Obs::null());
        assert_eq!(preds.len(), split.test.len());
        let truth = split.test_labels();
        let acc = preds
            .iter()
            .zip(&truth)
            .filter(|(p, &l)| p.label == l)
            .count() as f32
            / truth.len() as f32;
        assert!(acc > 0.7, "CLDet accuracy {acc}");
    }
}
