//! Few-Shot [2] — few-shot insider-threat detection.
//!
//! The original uses BERT [54] as the session encoder with a classification
//! head. Per DESIGN.md's substitution table, the BERT stand-in is our
//! from-scratch transformer encoder; the head is trained with plain
//! cross-entropy on the noisy labels, which is why the paper finds it
//! "sensitive to the noisy label setting" (§IV-B1).

use crate::common::{session_refs, to_predictions, train_embeddings};
use crate::SessionClassifier;
use clfd::api::Scorer;
use clfd::{ClfdConfig, Prediction};
use std::sync::Mutex;
use clfd_autograd::{Tape, Var};
use clfd_data::batch::{batch_indices, one_hot};
use clfd_data::session::{Label, Session, SplitCorpus};
use clfd_data::word2vec::ActivityEmbeddings;
use clfd_losses::cce_loss;
use clfd_nn::linear::LinearInit;
use clfd_nn::{Adam, Layer, Linear, Optimizer, TransformerEncoder};
use clfd_obs::{Event, Obs, Stopwatch};
use clfd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Few-Shot baseline (transformer encoder + CE head).
#[derive(Debug)]
pub struct FewShot {
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks.
    pub blocks: usize,
    /// End-to-end training epochs (transformers are costly per step; the
    /// default is deliberately small at reproduction scale).
    pub epochs: usize,
}

impl Default for FewShot {
    fn default() -> Self {
        Self { heads: 2, blocks: 1, epochs: 3 }
    }
}

struct Model {
    tape: Tape,
    encoder: TransformerEncoder,
    head: Linear,
    params: Vec<Var>,
    opt: Adam,
}

impl Model {
    fn new(cfg: &ClfdConfig, spec: &FewShot, rng: &mut StdRng) -> Self {
        let mut tape = Tape::new();
        let encoder = TransformerEncoder::new(
            &mut tape,
            cfg.embed_dim,
            spec.heads,
            cfg.embed_dim * 2,
            spec.blocks,
            rng,
        );
        let head = Linear::new(&mut tape, cfg.embed_dim, 2, LinearInit::Xavier, rng);
        tape.seal();
        let mut params = encoder.params();
        params.extend(head.params());
        let opt = Adam::new(cfg.lr);
        Self { tape, encoder, head, params, opt }
    }

    /// Embeds one session (`T x d`), encodes, mean-pools, returns logits.
    fn logits(&mut self, session: &Session, emb: &ActivityEmbeddings, cfg: &ClfdConfig) -> Var {
        let len = session.len().min(cfg.max_seq_len);
        let mut x = Matrix::zeros(len, cfg.embed_dim);
        for (t, &a) in session.activities.iter().take(len).enumerate() {
            x.row_mut(t).copy_from_slice(emb.embed(a));
        }
        let xv = self.tape.constant(x);
        let h = self.encoder.forward(&mut self.tape, xv);
        let pool = self.tape.constant(Matrix::full(1, len, 1.0 / len as f32));
        let pooled = self.tape.matmul(pool, h);
        self.head.forward(&mut self.tape, pooled)
    }
}

/// Few-Shot frozen for scoring. The transformer forward is tape-based
/// (`&mut`), so concurrent scorers serialize through the mutex.
struct TrainedFewShot {
    model: Mutex<Model>,
    embeddings: ActivityEmbeddings,
    cfg: ClfdConfig,
}

impl Scorer for TrainedFewShot {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        let mut model = self.model.lock().expect("few-shot model lock");
        let mut probs = Matrix::zeros(sessions.len(), 2);
        for (r, s) in sessions.iter().enumerate() {
            let logits = model.logits(s, &self.embeddings, &self.cfg);
            let p = model.tape.value(logits).softmax_rows();
            probs.row_mut(r).copy_from_slice(p.row(0));
            model.tape.reset();
        }
        to_predictions(&probs)
    }
}

impl SessionClassifier for FewShot {
    fn name(&self) -> &'static str {
        "Few-Shot"
    }

    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, _) = session_refs(split);
        let embeddings = train_embeddings(&train, split.corpus.vocab.len(), cfg, &mut rng);
        let mut model = Model::new(cfg, self, &mut rng);

        // End-to-end CE training, one session per step (attention is
        // per-sequence); gradients are accumulated over a mini-batch before
        // each optimizer step.
        let span = obs.stage("baseline/few-shot/transformer");
        let accumulate = 16;
        let mut order: Vec<usize> = (0..train.len()).collect();
        for epoch in 0..self.epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(&mut rng);
            for chunk in batch_indices(&order, accumulate) {
                for &i in &chunk {
                    let logits = model.logits(train[i], &embeddings, cfg);
                    let target = one_hot(&[noisy[i]]);
                    let loss = cce_loss(&mut model.tape, logits, &target);
                    loss_sum += f64::from(model.tape.scalar(loss));
                    model.tape.backward(loss);
                }
                batches += 1;
                let params = model.params.clone();
                model.opt.step(&mut model.tape, &params);
                model.tape.reset();
            }
            obs.emit(Event::EpochEnd {
                stage: "baseline/few-shot/transformer".to_string(),
                epoch,
                epochs: self.epochs,
                batches,
                loss: if train.is_empty() {
                    0.0
                } else {
                    (loss_sum / train.len() as f64) as f32
                },
                grad_norm: None,
                lr: model.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        span.finish();

        Box::new(TrainedFewShot { model: Mutex::new(model), embeddings, cfg: *cfg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    #[test]
    fn fewshot_produces_predictions_for_all_test_sessions() {
        let split = DatasetKind::UmdWikipedia.generate(Preset::Smoke, 4);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = NoiseModel::Uniform { eta: 0.1 }.apply(&split.train_labels(), &mut rng);
        let spec = FewShot { epochs: 1, ..FewShot::default() };
        let preds = spec.fit_predict(&split, &noisy, &cfg, 2, &Obs::null());
        assert_eq!(preds.len(), split.test.len());
        assert!(preds.iter().all(|p| (0.0..=1.0).contains(&p.malicious_score)));
        // Scores must vary across sessions (the model is not a constant
        // function), even if one epoch on a heavily imbalanced set leaves
        // the argmax dominated by the majority class.
        let min = preds.iter().map(|p| p.malicious_score).fold(f32::MAX, f32::min);
        let max = preds.iter().map(|p| p.malicious_score).fold(f32::MIN, f32::max);
        assert!(max - min > 1e-3, "constant scores: {min}..{max}");
    }
}
