//! DeepLog [16] — LSTM next-log-key prediction.
//!
//! Trains an embedding + LSTM to predict the next activity token on the
//! sessions the (noisy) labels mark as *normal*; at inference a session is
//! anomalous when too many of its transitions fall outside the model's
//! top-`g` candidates. Label noise poisons the "normal" training pool with
//! real malicious sessions, which is exactly the degradation Table I shows.

use crate::common::{percentile, scores_to_predictions, session_refs};
use crate::SessionClassifier;
use clfd::api::Scorer;
use clfd::{ClfdConfig, Prediction};
use std::sync::Mutex;
use clfd_autograd::{Tape, Var};
use clfd_data::batch::batch_indices;
use clfd_data::session::{Label, Session, SplitCorpus};
use clfd_losses::gce::cce_loss_indices;
use clfd_nn::linear::LinearInit;
use clfd_nn::{Adam, Embedding, Layer, Linear, Lstm, Optimizer};
use clfd_obs::{Event, Obs, Stopwatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// DeepLog baseline.
#[derive(Debug)]
pub struct DeepLog {
    /// A transition is a "hit" if the true next key is in the top `g`.
    pub top_g: usize,
    /// Training epochs over the noisy-normal pool.
    pub epochs: usize,
    /// Train-score percentile used as the anomaly threshold.
    pub threshold_percentile: f32,
}

impl Default for DeepLog {
    fn default() -> Self {
        Self { top_g: 3, epochs: 4, threshold_percentile: 0.95 }
    }
}

struct Model {
    tape: Tape,
    embedding: Embedding,
    lstm: Lstm,
    head: Linear,
    params: Vec<Var>,
    opt: Adam,
}

impl Model {
    fn new(vocab: usize, cfg: &ClfdConfig, rng: &mut StdRng) -> Self {
        let mut tape = Tape::new();
        let embedding = Embedding::new(&mut tape, vocab, cfg.embed_dim, rng);
        let lstm = Lstm::new(&mut tape, cfg.embed_dim, cfg.hidden, cfg.lstm_layers, rng);
        let head = Linear::new(&mut tape, cfg.hidden, vocab, LinearInit::Xavier, rng);
        tape.seal();
        let mut params = embedding.params();
        params.extend(lstm.params());
        params.extend(head.params());
        let opt = Adam::new(cfg.lr);
        Self { tape, embedding, lstm, head, params, opt }
    }

    /// Next-key logits for every prefix position of one session
    /// (`(len-1) x vocab`). The session must have at least two activities.
    fn sequence_logits(&mut self, session: &Session, cfg: &ClfdConfig) -> Var {
        let len = session.len().min(cfg.max_seq_len);
        debug_assert!(len >= 2);
        let ids: Vec<usize> =
            session.activities[..len - 1].iter().map(|&a| a as usize).collect();
        // One timestep per row: embed the prefix tokens, run the LSTM one
        // "batch row" per step is wasteful; instead treat the sequence as a
        // batch of size 1 per timestep.
        let embedded = self.embedding.forward(&mut self.tape, &ids); // (len-1) x d
        let steps: Vec<Var> = (0..ids.len())
            .map(|t| self.tape.gather(embedded, vec![t]))
            .collect();
        let hs = self.lstm.forward_sequence(&mut self.tape, &steps);
        // Stack hidden states into one matrix and apply the vocab head.
        let mut stacked = hs[0];
        for &h in &hs[1..] {
            stacked = self.tape.concat_rows(stacked, h);
        }
        self.head.forward(&mut self.tape, stacked)
    }

    /// Fraction of transitions whose true next key is *not* in the top-g.
    fn miss_rate(&mut self, session: &Session, cfg: &ClfdConfig, g: usize) -> f32 {
        let len = session.len().min(cfg.max_seq_len);
        if len < 2 {
            return 0.0;
        }
        let logits = self.sequence_logits(session, cfg);
        let values = self.tape.value(logits).clone();
        self.tape.reset();
        let mut misses = 0;
        for t in 0..len - 1 {
            let truth = session.activities[t + 1] as usize;
            let row = values.row(t);
            let true_score = row[truth];
            let rank = row.iter().filter(|&&x| x > true_score).count();
            if rank >= g {
                misses += 1;
            }
        }
        misses as f32 / (len - 1) as f32
    }
}

/// DeepLog frozen for scoring: the trained model plus its calibrated
/// threshold. The tape-based forward needs `&mut`, so concurrent scorers
/// serialize through the mutex.
struct TrainedDeepLog {
    model: Mutex<Model>,
    cfg: ClfdConfig,
    top_g: usize,
    threshold: f32,
}

impl Scorer for TrainedDeepLog {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        let mut model = self.model.lock().expect("deeplog model lock");
        let scores: Vec<f32> = sessions
            .iter()
            .map(|s| model.miss_rate(s, &self.cfg, self.top_g))
            .collect();
        scores_to_predictions(&scores, self.threshold)
    }
}

impl SessionClassifier for DeepLog {
    fn name(&self) -> &'static str {
        "DeepLog"
    }

    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, _) = session_refs(split);
        let vocab = split.corpus.vocab.len();
        let mut model = Model::new(vocab, cfg, &mut rng);

        // Train next-key prediction on noisy-normal sessions only.
        let normal_pool: Vec<usize> = noisy
            .iter()
            .enumerate()
            .filter(|(i, &l)| l == Label::Normal && train[*i].len() >= 2)
            .map(|(i, _)| i)
            .collect();
        let span = obs.stage("baseline/deeplog/next-key");
        let mut order = normal_pool.clone();
        let accumulate = 8;
        for epoch in 0..self.epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(&mut rng);
            for chunk in batch_indices(&order, accumulate) {
                for &i in &chunk {
                    let len = train[i].len().min(cfg.max_seq_len);
                    let logits = model.sequence_logits(train[i], cfg);
                    let targets: Vec<usize> = train[i].activities[1..len]
                        .iter()
                        .map(|&a| a as usize)
                        .collect();
                    let loss = cce_loss_indices(&mut model.tape, logits, &targets);
                    loss_sum += f64::from(model.tape.scalar(loss));
                    model.tape.backward(loss);
                }
                batches += 1;
                let params = model.params.clone();
                model.opt.step(&mut model.tape, &params);
                model.tape.reset();
            }
            obs.emit(Event::EpochEnd {
                stage: "baseline/deeplog/next-key".to_string(),
                epoch,
                epochs: self.epochs,
                batches,
                loss: if normal_pool.is_empty() {
                    0.0
                } else {
                    (loss_sum / normal_pool.len() as f64) as f32
                },
                grad_norm: None,
                lr: model.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        span.finish();

        // Threshold from the distribution of train-pool miss rates.
        let train_scores: Vec<f32> = normal_pool
            .iter()
            .map(|&i| model.miss_rate(train[i], cfg, self.top_g))
            .collect();
        let threshold = if train_scores.is_empty() {
            0.5
        } else {
            percentile(&train_scores, self.threshold_percentile)
        };

        Box::new(TrainedDeepLog {
            model: Mutex::new(model),
            cfg: *cfg,
            top_g: self.top_g,
            threshold,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    #[test]
    fn deeplog_detects_grammar_violations() {
        // OpenStack is DeepLog's home turf: lifecycle violations must score
        // higher miss rates than clean lifecycles.
        let split = DatasetKind::OpenStack.generate(Preset::Smoke, 5);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = NoiseModel::Uniform { eta: 0.1 }.apply(&split.train_labels(), &mut rng);
        let preds = DeepLog::default().fit_predict(&split, &noisy, &cfg, 3, &Obs::null());
        let truth = split.test_labels();
        let mean_score = |want: Label| {
            let (sum, count) = preds
                .iter()
                .zip(&truth)
                .filter(|(_, &l)| l == want)
                .fold((0.0, 0), |(s, c), (p, _)| (s + p.malicious_score, c + 1));
            sum / count as f32
        };
        assert!(
            mean_score(Label::Malicious) > mean_score(Label::Normal) + 0.05,
            "anomalies {:.3} vs normal {:.3}",
            mean_score(Label::Malicious),
            mean_score(Label::Normal)
        );
    }
}
