//! DivMix [31] — DivideMix-style co-teaching for learning with noisy
//! labels, adapted to sessions per §IV-A3 (LSTM encoders in place of
//! ResNet-18).
//!
//! Two networks are warm-started with CE; each co-epoch, every network fits
//! a two-component Gaussian mixture to its *per-sample loss* distribution —
//! the low-loss component models clean samples — and its peer then trains
//! on targets refined by that clean probability:
//! `target_i = w_i · onehot(ỹ_i) + (1 − w_i) · p̄(x_i)` where `p̄` is the
//! two networks' averaged prediction (label co-refinement / co-guessing),
//! followed by mixup. Inference averages both networks.

use crate::common::{session_refs, train_embeddings, JointModel, TrainedJointEnsemble};
use crate::SessionClassifier;
use clfd::api::Scorer;
use clfd::ClfdConfig;
use clfd_data::batch::{batch_indices, one_hot, SessionBatch};
use clfd_data::session::{Label, SplitCorpus};
use clfd_data::session::Session;
use clfd_losses::cce_loss;
use clfd_losses::MixupPlan;
use clfd_nn::Optimizer;
use clfd_obs::{Event, Obs, Stopwatch};
use clfd_tensor::stats::GaussianMixture1d;
use clfd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// DivMix baseline.
#[derive(Debug)]
pub struct DivMix {
    /// CE warm-up epochs for both networks.
    pub warmup_epochs: usize,
    /// Co-teaching epochs after warm-up.
    pub co_epochs: usize,
    /// EM iterations for the per-epoch loss GMM.
    pub gmm_iters: usize,
}

impl Default for DivMix {
    fn default() -> Self {
        Self { warmup_epochs: 2, co_epochs: 4, gmm_iters: 30 }
    }
}

impl SessionClassifier for DivMix {
    fn name(&self) -> &'static str {
        "DivMix"
    }

    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, _) = session_refs(split);
        let embeddings = train_embeddings(&train, split.corpus.vocab.len(), cfg, &mut rng);
        let targets_noisy = one_hot(noisy);

        let mut net_a = JointModel::new(cfg, &mut rng);
        let mut net_b = JointModel::new(cfg, &mut rng);

        // Warm-up: plain CE on the noisy labels.
        let warmup_span = obs.stage("baseline/divmix/warmup");
        let mut order: Vec<usize> = (0..train.len()).collect();
        for epoch in 0..self.warmup_epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(&mut rng);
            for chunk in batch_indices(&order, cfg.batch_size) {
                let refs: Vec<&Session> = chunk.iter().map(|&i| train[i]).collect();
                let batch = SessionBatch::build(&refs, &embeddings, cfg.max_seq_len);
                let t = targets_noisy.select_rows(&chunk);
                let la = net_a.step_ce(&batch, &t);
                let lb = net_b.step_ce(&batch, &t);
                loss_sum += f64::from(la + lb) * 0.5;
                batches += 1;
            }
            obs.emit(Event::EpochEnd {
                stage: "baseline/divmix/warmup".to_string(),
                epoch,
                epochs: self.warmup_epochs,
                batches,
                loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                grad_norm: None,
                lr: net_a.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        warmup_span.finish();

        // Co-teaching epochs.
        let co_span = obs.stage("baseline/divmix/co-teaching");
        for epoch in 0..self.co_epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            // Clean probabilities from each network's loss GMM.
            let w_from_a = clean_probabilities(
                &mut net_a, &train, noisy, &embeddings, cfg, self.gmm_iters,
            );
            let w_from_b = clean_probabilities(
                &mut net_b, &train, noisy, &embeddings, cfg, self.gmm_iters,
            );
            // Co-guessing: the averaged prediction of both networks.
            let pa = net_a.proba_all(&train, &embeddings, cfg);
            let pb = net_b.proba_all(&train, &embeddings, cfg);
            let avg = pa.add(&pb).scale(0.5);

            // Each net trains with the peer's clean weights.
            for (net, w) in [(&mut net_a, &w_from_b), (&mut net_b, &w_from_a)] {
                order.shuffle(&mut rng);
                for chunk in batch_indices(&order, cfg.batch_size) {
                    let refs: Vec<&Session> = chunk.iter().map(|&i| train[i]).collect();
                    let batch = SessionBatch::build(&refs, &embeddings, cfg.max_seq_len);
                    // Refined targets.
                    let refined = Matrix::from_fn(chunk.len(), 2, |r, c| {
                        let i = chunk[r];
                        w[i] * targets_noisy.get(i, c) + (1.0 - w[i]) * avg.get(i, c)
                    });
                    // Mixup over the refined hard-ish labels.
                    let hard: Vec<Label> = (0..chunk.len())
                        .map(|r| {
                            if refined.get(r, 1) > refined.get(r, 0) {
                                Label::Malicious
                            } else {
                                Label::Normal
                            }
                        })
                        .collect();
                    let plan = MixupPlan::sample(&hard, cfg.beta, &mut rng);
                    let (z, _) = net.forward(&batch);
                    let mixed_z = plan.apply(&mut net.tape, z);
                    let logits = net.head.forward(&mut net.tape, mixed_z);
                    let mixed_targets = plan.mixed_targets(&refined);
                    let loss = cce_loss(&mut net.tape, logits, &mixed_targets);
                    loss_sum += f64::from(net.tape.scalar(loss));
                    batches += 1;
                    net.tape.backward(loss);
                    net.step();
                }
            }
            obs.emit(Event::EpochEnd {
                stage: "baseline/divmix/co-teaching".to_string(),
                epoch,
                epochs: self.co_epochs,
                batches,
                loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                grad_norm: None,
                lr: net_a.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        co_span.finish();

        // Inference: ensemble of both networks.
        Box::new(TrainedJointEnsemble { nets: vec![net_a, net_b], embeddings, cfg: *cfg })
    }
}

/// Per-sample clean probability from a network's loss-GMM split.
fn clean_probabilities(
    net: &mut JointModel,
    train: &[&Session],
    noisy: &[Label],
    embeddings: &clfd_data::word2vec::ActivityEmbeddings,
    cfg: &ClfdConfig,
    gmm_iters: usize,
) -> Vec<f32> {
    let losses = net.per_sample_ce(train, noisy, embeddings, cfg);
    match GaussianMixture1d::fit(&losses, gmm_iters) {
        Some(gmm) => losses.iter().map(|&l| gmm.clean_probability(l)).collect(),
        None => vec![1.0; losses.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    #[test]
    fn divmix_runs_end_to_end() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 10);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&split.train_labels(), &mut rng);
        let spec = DivMix { warmup_epochs: 1, co_epochs: 2, ..DivMix::default() };
        let preds = spec.fit_predict(&split, &noisy, &cfg, 7, &Obs::null());
        assert_eq!(preds.len(), split.test.len());
        assert!(preds.iter().all(|p| (0.0..=1.0).contains(&p.malicious_score)));
    }
}
