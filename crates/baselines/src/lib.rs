//! The eight baseline systems of the CLFD evaluation (§IV-A3), adapted to
//! sequential session data exactly as the paper describes (LSTM encoders in
//! place of image CNNs, session-reordering augmentation in place of image
//! augmentations, session-similarity analysis in the encoded space).
//!
//! | Baseline | Family | Module |
//! |---|---|---|
//! | DivMix [31]  | co-teaching noisy-label learning        | [`divmix`]  |
//! | ULC [10]     | uncertainty-aware label correction      | [`ulc`]     |
//! | Sel-CL [8]   | supervised-contrastive noisy-label      | [`selcl`]   |
//! | CTRR [9]     | contrastive regularization              | [`ctrr`]    |
//! | Few-Shot [2] | insider-threat detection (BERT-style)   | [`fewshot`] |
//! | CLDet [3]    | insider-threat detection (SimCLR + CE)  | [`cldet`]   |
//! | DeepLog [16] | log anomaly detection (LSTM next-key)   | [`deeplog`] |
//! | LogBert [48] | log anomaly detection (masked-key)      | [`logbert`] |
//!
//! Every baseline implements [`SessionClassifier`], the interface the
//! experiment runner uses for CLFD and baselines alike.

pub mod cldet;
pub mod common;
pub mod ctrr;
pub mod deeplog;
pub mod divmix;
pub mod fewshot;
pub mod logbert;
pub mod selcl;
pub mod ulc;

use clfd::api::Scorer;
use clfd::{ClfdConfig, Prediction};
use clfd_data::session::{Label, SplitCorpus};
use clfd_obs::Obs;

/// Uniform train-and-predict interface for all nine systems.
pub trait SessionClassifier {
    /// Display name matching the paper's table rows.
    fn name(&self) -> &'static str;

    /// Trains on `split.train` with the given noisy labels and returns the
    /// fitted model as a reusable [`Scorer`]: the evaluation runner, the
    /// serving benchmarks, and ad-hoc analysis all score through this one
    /// surface instead of each baseline exposing its own inference shape.
    ///
    /// `obs` receives per-stage training telemetry (stage spans and
    /// per-epoch losses, under `baseline/<name>/...` stage names); pass
    /// [`Obs::null`] to record nothing.
    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer>;

    /// Trains on `split.train` with the given noisy labels and classifies
    /// `split.test`, returning one prediction per test session.
    ///
    /// The default trains via [`SessionClassifier::fit_scorer`] and scores
    /// the test split through the returned [`Scorer`].
    fn fit_predict(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Vec<Prediction> {
        let scorer = self.fit_scorer(split, noisy, cfg, seed, obs);
        let test: Vec<_> =
            split.test.iter().map(|&i| &split.corpus.sessions[i]).collect();
        scorer.score(&test)
    }

    /// Fault-isolated variant used by the experiment runner: one crashing
    /// run must not take down a whole sweep.
    ///
    /// The default catches panics from [`SessionClassifier::fit_predict`]
    /// and returns the panic message as the error string; implementations
    /// with natively fallible training (CLFD's `try_fit`) override this to
    /// surface their typed errors without unwinding.
    ///
    /// # Errors
    /// Returns the panic payload (or the implementation's own error
    /// rendering) when the run could not produce predictions.
    fn try_fit_predict(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Result<Vec<Prediction>, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.fit_predict(split, noisy, cfg, seed, obs)
        }))
        .map_err(|payload| panic_message(payload.as_ref()))
    }
}

/// Renders a `catch_unwind` payload as text (panics carry `&str` or
/// `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// CLFD itself behind the same interface (used by the experiment runner).
pub struct ClfdModel {
    /// Ablation switches; [`clfd::Ablation::full`] for the real framework.
    pub ablation: clfd::Ablation,
}

impl Default for ClfdModel {
    fn default() -> Self {
        Self { ablation: clfd::Ablation::full() }
    }
}

impl ClfdModel {
    /// Runs the builder pipeline, surfacing typed errors as strings.
    fn train(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Result<clfd::TrainedClfd, String> {
        clfd::TrainedClfd::builder()
            .config(*cfg)
            .ablation(self.ablation)
            .seed(seed)
            .obs(obs.clone())
            .try_fit(split, noisy)
            .map_err(|e| e.to_string())
    }
}

impl SessionClassifier for ClfdModel {
    fn name(&self) -> &'static str {
        "CLFD"
    }

    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer> {
        let model =
            self.train(split, noisy, cfg, seed, obs).unwrap_or_else(|e| panic!("{e}"));
        Box::new(model)
    }

    fn try_fit_predict(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Result<Vec<Prediction>, String> {
        let model = self.train(split, noisy, cfg, seed, obs)?;
        Ok(model.predict_test(split))
    }
}

/// All eight baselines, boxed, in the paper's table order.
pub fn all_baselines() -> Vec<Box<dyn SessionClassifier>> {
    vec![
        Box::new(divmix::DivMix::default()),
        Box::new(ulc::Ulc::default()),
        Box::new(selcl::SelCl::default()),
        Box::new(ctrr::Ctrr::default()),
        Box::new(fewshot::FewShot::default()),
        Box::new(cldet::ClDet),
        Box::new(deeplog::DeepLog::default()),
        Box::new(logbert::LogBert::default()),
    ]
}
