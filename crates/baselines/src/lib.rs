//! The eight baseline systems of the CLFD evaluation (§IV-A3), adapted to
//! sequential session data exactly as the paper describes (LSTM encoders in
//! place of image CNNs, session-reordering augmentation in place of image
//! augmentations, session-similarity analysis in the encoded space).
//!
//! | Baseline | Family | Module |
//! |---|---|---|
//! | DivMix [31]  | co-teaching noisy-label learning        | [`divmix`]  |
//! | ULC [10]     | uncertainty-aware label correction      | [`ulc`]     |
//! | Sel-CL [8]   | supervised-contrastive noisy-label      | [`selcl`]   |
//! | CTRR [9]     | contrastive regularization              | [`ctrr`]    |
//! | Few-Shot [2] | insider-threat detection (BERT-style)   | [`fewshot`] |
//! | CLDet [3]    | insider-threat detection (SimCLR + CE)  | [`cldet`]   |
//! | DeepLog [16] | log anomaly detection (LSTM next-key)   | [`deeplog`] |
//! | LogBert [48] | log anomaly detection (masked-key)      | [`logbert`] |
//!
//! Every baseline implements [`SessionClassifier`], the interface the
//! experiment runner uses for CLFD and baselines alike.

pub mod cldet;
pub mod common;
pub mod ctrr;
pub mod deeplog;
pub mod divmix;
pub mod fewshot;
pub mod logbert;
pub mod selcl;
pub mod ulc;

use clfd::{ClfdConfig, Prediction};
use clfd_data::session::{Label, SplitCorpus};
use clfd_obs::Obs;

/// Uniform train-and-predict interface for all nine systems.
pub trait SessionClassifier {
    /// Display name matching the paper's table rows.
    fn name(&self) -> &'static str;

    /// Trains on `split.train` with the given noisy labels and classifies
    /// `split.test`, returning one prediction per test session.
    ///
    /// `obs` receives per-stage training telemetry (stage spans and
    /// per-epoch losses, under `baseline/<name>/...` stage names); pass
    /// [`Obs::null`] to record nothing.
    fn fit_predict(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Vec<Prediction>;

    /// Fault-isolated variant used by the experiment runner: one crashing
    /// run must not take down a whole sweep.
    ///
    /// The default catches panics from [`SessionClassifier::fit_predict`]
    /// and returns the panic message as the error string; implementations
    /// with natively fallible training (CLFD's `try_fit`) override this to
    /// surface their typed errors without unwinding.
    ///
    /// # Errors
    /// Returns the panic payload (or the implementation's own error
    /// rendering) when the run could not produce predictions.
    fn try_fit_predict(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Result<Vec<Prediction>, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.fit_predict(split, noisy, cfg, seed, obs)
        }))
        .map_err(|payload| panic_message(payload.as_ref()))
    }
}

/// Renders a `catch_unwind` payload as text (panics carry `&str` or
/// `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// CLFD itself behind the same interface (used by the experiment runner).
pub struct ClfdModel {
    /// Ablation switches; [`clfd::Ablation::full`] for the real framework.
    pub ablation: clfd::Ablation,
}

impl Default for ClfdModel {
    fn default() -> Self {
        Self { ablation: clfd::Ablation::full() }
    }
}

impl SessionClassifier for ClfdModel {
    fn name(&self) -> &'static str {
        "CLFD"
    }

    fn fit_predict(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Vec<Prediction> {
        self.try_fit_predict(split, noisy, cfg, seed, obs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_fit_predict(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Result<Vec<Prediction>, String> {
        let opts = clfd::TrainOptions {
            obs: obs.clone(),
            ..clfd::TrainOptions::conservative()
        };
        let model =
            clfd::TrainedClfd::try_fit(split, noisy, cfg, &self.ablation, seed, &opts)
                .map_err(|e| e.to_string())?;
        Ok(model.predict_test(split))
    }
}

/// All eight baselines, boxed, in the paper's table order.
pub fn all_baselines() -> Vec<Box<dyn SessionClassifier>> {
    vec![
        Box::new(divmix::DivMix::default()),
        Box::new(ulc::Ulc::default()),
        Box::new(selcl::SelCl::default()),
        Box::new(ctrr::Ctrr::default()),
        Box::new(fewshot::FewShot::default()),
        Box::new(cldet::ClDet),
        Box::new(deeplog::DeepLog::default()),
        Box::new(logbert::LogBert::default()),
    ]
}
