//! ULC [10] — uncertainty-aware label correction on imbalanced data,
//! adapted to sessions per §IV-A3.
//!
//! Two co-teaching networks are warm-started with CE while an exponential
//! moving average of each sample's predicted class probabilities is
//! maintained. A sample's *uncertainty* is the entropy of its EMA
//! prediction; samples whose EMA prediction is confident (low entropy) but
//! disagrees with the given label are relabeled. Each network then
//! continues training on the label set corrected by its *peer* (the
//! co-teaching exchange), and inference averages the two networks.

use crate::common::{session_refs, train_embeddings, JointModel, TrainedJointEnsemble};
use crate::SessionClassifier;
use clfd::api::Scorer;
use clfd::ClfdConfig;
use clfd_data::batch::{batch_indices, one_hot, SessionBatch};
use clfd_data::session::{Label, Session, SplitCorpus};
use clfd_nn::Optimizer;
use clfd_obs::{Event, Obs, Stopwatch};
use clfd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// ULC baseline.
#[derive(Debug)]
pub struct Ulc {
    /// CE warm-up epochs (EMA statistics are collected during these).
    pub warmup_epochs: usize,
    /// Epochs of training on the corrected labels.
    pub corrected_epochs: usize,
    /// EMA decay for the per-sample prediction average.
    pub ema_decay: f32,
    /// Entropy threshold (nats) below which a prediction counts as certain.
    pub entropy_threshold: f32,
}

impl Default for Ulc {
    fn default() -> Self {
        Self {
            warmup_epochs: 3,
            corrected_epochs: 4,
            ema_decay: 0.7,
            entropy_threshold: 0.45,
        }
    }
}

impl SessionClassifier for Ulc {
    fn name(&self) -> &'static str {
        "ULC"
    }

    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, _) = session_refs(split);
        let embeddings = train_embeddings(&train, split.corpus.vocab.len(), cfg, &mut rng);
        let targets_noisy = one_hot(noisy);

        let mut net_a = JointModel::new(cfg, &mut rng);
        let mut net_b = JointModel::new(cfg, &mut rng);
        let n = train.len();
        let mut ema_a = Matrix::full(n, 2, 0.5);
        let mut ema_b = Matrix::full(n, 2, 0.5);

        // Warm-up with EMA tracking.
        let warmup_span = obs.stage("baseline/ulc/warmup");
        let mut order: Vec<usize> = (0..n).collect();
        for epoch in 0..self.warmup_epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(&mut rng);
            for chunk in batch_indices(&order, cfg.batch_size) {
                let refs: Vec<&Session> = chunk.iter().map(|&i| train[i]).collect();
                let batch = SessionBatch::build(&refs, &embeddings, cfg.max_seq_len);
                let t = targets_noisy.select_rows(&chunk);
                let la = net_a.step_ce(&batch, &t);
                let lb = net_b.step_ce(&batch, &t);
                loss_sum += f64::from(la + lb) * 0.5;
                batches += 1;
            }
            obs.emit(Event::EpochEnd {
                stage: "baseline/ulc/warmup".to_string(),
                epoch,
                epochs: self.warmup_epochs,
                batches,
                loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                grad_norm: None,
                lr: net_a.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
            for (net, ema) in [(&mut net_a, &mut ema_a), (&mut net_b, &mut ema_b)] {
                let p = net.proba_all(&train, &embeddings, cfg);
                for i in 0..n {
                    for c in 0..2 {
                        let v = self.ema_decay * ema.get(i, c)
                            + (1.0 - self.ema_decay) * p.get(i, c);
                        ema.set(i, c, v);
                    }
                }
            }
        }
        warmup_span.finish();

        // Uncertainty-aware correction (per network).
        let corrected_by_a = correct_labels(noisy, &ema_a, self.entropy_threshold);
        let corrected_by_b = correct_labels(noisy, &ema_b, self.entropy_threshold);

        // Co-teaching: each net trains on the peer's corrected labels.
        let corrected_span = obs.stage("baseline/ulc/corrected");
        for epoch in 0..self.corrected_epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for (net, corrected) in
                [(&mut net_a, &corrected_by_b), (&mut net_b, &corrected_by_a)]
            {
                order.shuffle(&mut rng);
                for chunk in batch_indices(&order, cfg.batch_size) {
                    let refs: Vec<&Session> = chunk.iter().map(|&i| train[i]).collect();
                    let batch = SessionBatch::build(&refs, &embeddings, cfg.max_seq_len);
                    let labels: Vec<Label> = chunk.iter().map(|&i| corrected[i]).collect();
                    loss_sum += f64::from(net.step_ce(&batch, &one_hot(&labels)));
                    batches += 1;
                }
            }
            obs.emit(Event::EpochEnd {
                stage: "baseline/ulc/corrected".to_string(),
                epoch,
                epochs: self.corrected_epochs,
                batches,
                loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                grad_norm: None,
                lr: net_a.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        corrected_span.finish();

        Box::new(TrainedJointEnsemble { nets: vec![net_a, net_b], embeddings, cfg: *cfg })
    }
}

/// Entropy of a two-class distribution, in nats (max ln 2 ≈ 0.693).
fn entropy2(p0: f32, p1: f32) -> f32 {
    let h = |p: f32| if p > 0.0 { -p * p.ln() } else { 0.0 };
    h(p0) + h(p1)
}

/// Relabels certain-but-disagreeing samples from the EMA predictions.
fn correct_labels(noisy: &[Label], ema: &Matrix, entropy_threshold: f32) -> Vec<Label> {
    noisy
        .iter()
        .enumerate()
        .map(|(i, &given)| {
            let (p0, p1) = (ema.get(i, 0), ema.get(i, 1));
            if entropy2(p0, p1) < entropy_threshold {
                if p1 > p0 {
                    Label::Malicious
                } else {
                    Label::Normal
                }
            } else {
                given
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    #[test]
    fn entropy_bounds() {
        assert!(entropy2(0.5, 0.5) > 0.69);
        assert!(entropy2(1.0, 0.0) < 1e-6);
        assert!(entropy2(0.9, 0.1) < entropy2(0.6, 0.4));
    }

    #[test]
    fn certain_disagreements_are_relabeled() {
        let noisy = vec![Label::Normal, Label::Normal, Label::Malicious];
        let ema = Matrix::from_vec(
            3,
            2,
            vec![
                0.02, 0.98, // certain malicious, labeled normal → flip
                0.55, 0.45, // uncertain → keep
                0.97, 0.03, // certain normal, labeled malicious → flip
            ],
        )
        .unwrap();
        let corrected = correct_labels(&noisy, &ema, 0.45);
        assert_eq!(
            corrected,
            vec![Label::Malicious, Label::Normal, Label::Normal]
        );
    }

    #[test]
    fn ulc_runs_end_to_end() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 12);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&split.train_labels(), &mut rng);
        let spec = Ulc { warmup_epochs: 1, corrected_epochs: 1, ..Ulc::default() };
        let preds = spec.fit_predict(&split, &noisy, &cfg, 8, &Obs::null());
        assert_eq!(preds.len(), split.test.len());
    }
}
