//! Sel-CL [8] — selective-supervised contrastive learning with noisy
//! labels, adapted to sessions per §IV-A3.
//!
//! Pipeline: (1) SimCLR warm-up with the session-reordering augmentation;
//! (2) label correction by k-nearest-neighbour voting in the encoded
//! representation space; (3) *confident* samples are those whose corrected
//! label agrees with the given noisy label; (4) a supervised contrastive
//! model is trained over confident pairs only, followed by a CE classifier
//! on the confident samples. Under heavy session diversity the kNN
//! correction mislabels many sessions, which is the failure mode the paper
//! reports for this baseline.

use crate::common::{
    knn_correct, session_refs, simclr_warmup, train_embeddings, Encoder, LinearHead,
    TrainedEncoderHead,
};
use crate::SessionClassifier;
use clfd::api::Scorer;
use clfd::ClfdConfig;
use clfd_data::batch::{batch_indices, SessionBatch};
use clfd_data::session::{Label, Session, SplitCorpus};
use clfd_losses::contrastive::{sup_con_batch, SupConVariant};
use clfd_nn::Optimizer;
use clfd_obs::{Event, Obs, Stopwatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sel-CL baseline.
#[derive(Debug)]
pub struct SelCl {
    /// Neighbours for the kNN label correction.
    pub k: usize,
    /// Epochs of supervised contrastive fine-tuning on confident pairs.
    pub supcon_epochs: usize,
}

impl Default for SelCl {
    fn default() -> Self {
        Self { k: 10, supcon_epochs: 4 }
    }
}

impl SessionClassifier for SelCl {
    fn name(&self) -> &'static str {
        "Sel-CL"
    }

    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, _) = session_refs(split);
        let embeddings = train_embeddings(&train, split.corpus.vocab.len(), cfg, &mut rng);

        // (1) SimCLR warm-up.
        let mut encoder = Encoder::new(cfg, &mut rng);
        simclr_warmup(
            &mut encoder,
            &train,
            &embeddings,
            cfg,
            cfg.pretrain_epochs,
            "baseline/sel-cl/simclr",
            obs,
            &mut rng,
        );

        // (2) kNN label correction in the warm representation space.
        let warm_features = encoder.features(&train, &embeddings, cfg);
        let corrected = knn_correct(&warm_features, noisy, self.k);

        // (3) Confident samples: corrected label agrees with the given one.
        let confident: Vec<usize> = (0..noisy.len())
            .filter(|&i| corrected[i] == noisy[i])
            .collect();

        // (4) Supervised contrastive fine-tuning over confident samples
        // (every pair of same-label confident samples in a batch is a
        // confident pair), then a CE classifier on the confident set.
        if confident.len() >= 4 {
            let span = obs.stage("baseline/sel-cl/supcon");
            let mut order = confident.clone();
            for epoch in 0..self.supcon_epochs {
                let epoch_clock = Stopwatch::start();
                let mut loss_sum = 0.0f64;
                let mut batches = 0usize;
                order.shuffle(&mut rng);
                for chunk in batch_indices(&order, cfg.batch_size) {
                    if chunk.len() < 2 {
                        continue;
                    }
                    let refs: Vec<&Session> = chunk.iter().map(|&i| train[i]).collect();
                    let labels: Vec<Label> = chunk.iter().map(|&i| corrected[i]).collect();
                    let conf = vec![1.0; chunk.len()];
                    let batch = SessionBatch::build(&refs, &embeddings, cfg.max_seq_len);
                    let z = encoder.encode(&batch);
                    let loss = sup_con_batch(
                        &mut encoder.tape,
                        z,
                        &labels,
                        &conf,
                        chunk.len(),
                        cfg.temperature,
                        SupConVariant::Unweighted,
                    );
                    loss_sum += f64::from(encoder.tape.scalar(loss));
                    batches += 1;
                    encoder.tape.backward(loss);
                    encoder.step();
                }
                obs.emit(Event::EpochEnd {
                    stage: "baseline/sel-cl/supcon".to_string(),
                    epoch,
                    epochs: self.supcon_epochs,
                    batches,
                    loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                    grad_norm: None,
                    lr: encoder.opt.lr(),
                    wall_ms: epoch_clock.elapsed_ms(),
                });
            }
            span.finish();
        }

        let features = encoder.features(&train, &embeddings, cfg);
        let mut head = LinearHead::new(cfg.hidden, cfg.lr, &mut rng);
        if confident.is_empty() {
            head.train_ce(
                &features,
                noisy,
                cfg.classifier_epochs,
                cfg.batch_size,
                "baseline/sel-cl/head",
                obs,
                &mut rng,
            );
        } else {
            let conf_features = features.select_rows(&confident);
            let conf_labels: Vec<Label> = confident.iter().map(|&i| corrected[i]).collect();
            head.train_ce(
                &conf_features,
                &conf_labels,
                cfg.classifier_epochs,
                cfg.batch_size,
                "baseline/sel-cl/head",
                obs,
                &mut rng,
            );
        }

        Box::new(TrainedEncoderHead { encoder, head, embeddings, cfg: *cfg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    #[test]
    fn selcl_runs_end_to_end() {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 8);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&split.train_labels(), &mut rng);
        let preds = SelCl::default().fit_predict(&split, &noisy, &cfg, 5, &Obs::null());
        assert_eq!(preds.len(), split.test.len());
        let truth = split.test_labels();
        let acc = preds
            .iter()
            .zip(&truth)
            .filter(|(p, &l)| p.label == l)
            .count() as f32
            / truth.len() as f32;
        assert!(acc > 0.6, "Sel-CL accuracy {acc}");
    }
}
