//! LogBert [48] — transformer masked-key prediction for log anomaly
//! detection.
//!
//! Trains an embedding + transformer encoder with a masked-activity
//! modeling objective on the (noisy-)normal sessions; at inference, random
//! positions are masked and the session's anomaly score is the fraction of
//! masked positions whose true key falls outside the model's top-`g`
//! candidates. BERT itself is replaced by our compact transformer per
//! DESIGN.md.

use crate::common::{percentile, scores_to_predictions, session_refs};
use crate::SessionClassifier;
use clfd::api::Scorer;
use clfd::{ClfdConfig, Prediction};
use std::sync::Mutex;
use clfd_autograd::{Tape, Var};
use clfd_data::batch::batch_indices;
use clfd_data::session::{Label, Session, SplitCorpus};
use clfd_losses::gce::cce_loss_indices;
use clfd_nn::linear::LinearInit;
use clfd_nn::{Adam, Embedding, Layer, Linear, Optimizer, TransformerEncoder};
use clfd_obs::{Event, Obs, Stopwatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// LogBert baseline.
#[derive(Debug, Clone)]
pub struct LogBert {
    /// Fraction of positions masked per pass.
    pub mask_ratio: f32,
    /// Top-`g` hit criterion for masked positions.
    pub top_g: usize,
    /// Training epochs over the noisy-normal pool.
    pub epochs: usize,
    /// Scoring passes per test session (masks are re-sampled each pass).
    pub score_passes: usize,
    /// Train-score percentile used as the anomaly threshold.
    pub threshold_percentile: f32,
}

impl Default for LogBert {
    fn default() -> Self {
        Self {
            mask_ratio: 0.25,
            top_g: 3,
            epochs: 3,
            score_passes: 2,
            threshold_percentile: 0.95,
        }
    }
}

struct Model {
    tape: Tape,
    embedding: Embedding,
    encoder: TransformerEncoder,
    head: Linear,
    params: Vec<Var>,
    opt: Adam,
    /// Reserved mask-token id (vocab extended by one).
    mask_id: usize,
}

impl Model {
    fn new(vocab: usize, cfg: &ClfdConfig, rng: &mut StdRng) -> Self {
        let mut tape = Tape::new();
        // +1 slot for the [MASK] token.
        let embedding = Embedding::new(&mut tape, vocab + 1, cfg.embed_dim, rng);
        let encoder =
            TransformerEncoder::new(&mut tape, cfg.embed_dim, 2, cfg.embed_dim * 2, 1, rng);
        let head = Linear::new(&mut tape, cfg.embed_dim, vocab, LinearInit::Xavier, rng);
        tape.seal();
        let mut params = embedding.params();
        params.extend(encoder.params());
        params.extend(head.params());
        Self { tape, embedding, encoder, head, params, opt: Adam::new(cfg.lr), mask_id: vocab }
    }

    /// Picks mask positions and returns `(masked_ids, positions)`.
    fn mask_session(
        &self,
        session: &Session,
        cfg: &ClfdConfig,
        ratio: f32,
        rng: &mut StdRng,
    ) -> (Vec<usize>, Vec<usize>) {
        let len = session.len().min(cfg.max_seq_len);
        let mut ids: Vec<usize> =
            session.activities[..len].iter().map(|&a| a as usize).collect();
        let n_mask = ((len as f32 * ratio).round() as usize).clamp(1, len);
        let mut positions: Vec<usize> = (0..len).collect();
        positions.shuffle(rng);
        positions.truncate(n_mask);
        for &p in &positions {
            ids[p] = self.mask_id;
        }
        (ids, positions)
    }

    /// Logits over the vocabulary at the masked positions.
    fn masked_logits(&mut self, ids: &[usize], positions: &[usize]) -> Var {
        let embedded = self.embedding.forward(&mut self.tape, ids);
        let h = self.encoder.forward(&mut self.tape, embedded);
        let at_masks = self.tape.gather(h, positions.to_vec());
        self.head.forward(&mut self.tape, at_masks)
    }

    /// Anomaly score: mean top-g miss fraction over `passes` maskings.
    fn score(
        &mut self,
        session: &Session,
        cfg: &ClfdConfig,
        spec: &LogBert,
        rng: &mut StdRng,
    ) -> f32 {
        let len = session.len().min(cfg.max_seq_len);
        if len < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for _ in 0..spec.score_passes {
            let (ids, positions) = self.mask_session(session, cfg, spec.mask_ratio, rng);
            let logits = self.masked_logits(&ids, &positions);
            let values = self.tape.value(logits).clone();
            self.tape.reset();
            let mut misses = 0;
            for (row, &p) in positions.iter().enumerate() {
                let truth = session.activities[p] as usize;
                let scores = values.row(row);
                let rank = scores.iter().filter(|&&x| x > scores[truth]).count();
                if rank >= spec.top_g {
                    misses += 1;
                }
            }
            total += misses as f32 / positions.len() as f32;
        }
        total / spec.score_passes as f32
    }
}

/// LogBert frozen for scoring: the trained model, its calibrated
/// threshold, and the *continuing* mask RNG — masks are re-sampled on
/// every scoring pass, so the RNG advances with each call (scoring the
/// same sessions twice draws different masks, exactly as repeated calls
/// on the live model would).
struct TrainedLogBert {
    inner: Mutex<(Model, StdRng)>,
    spec: LogBert,
    cfg: ClfdConfig,
    threshold: f32,
}

impl Scorer for TrainedLogBert {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        let mut inner = self.inner.lock().expect("logbert model lock");
        let (model, rng) = &mut *inner;
        let scores: Vec<f32> = sessions
            .iter()
            .map(|s| model.score(s, &self.cfg, &self.spec, rng))
            .collect();
        scores_to_predictions(&scores, self.threshold)
    }
}

impl SessionClassifier for LogBert {
    fn name(&self) -> &'static str {
        "LogBert"
    }

    fn fit_scorer(
        &self,
        split: &SplitCorpus,
        noisy: &[Label],
        cfg: &ClfdConfig,
        seed: u64,
        obs: &Obs,
    ) -> Box<dyn Scorer> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, _) = session_refs(split);
        let vocab = split.corpus.vocab.len();
        let mut model = Model::new(vocab, cfg, &mut rng);

        let normal_pool: Vec<usize> = noisy
            .iter()
            .enumerate()
            .filter(|(i, &l)| l == Label::Normal && train[*i].len() >= 2)
            .map(|(i, _)| i)
            .collect();

        let span = obs.stage("baseline/logbert/masked-key");
        let mut order = normal_pool.clone();
        let accumulate = 8;
        for epoch in 0..self.epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(&mut rng);
            for chunk in batch_indices(&order, accumulate) {
                for &i in &chunk {
                    let (ids, positions) =
                        model.mask_session(train[i], cfg, self.mask_ratio, &mut rng);
                    let targets: Vec<usize> = positions
                        .iter()
                        .map(|&p| train[i].activities[p] as usize)
                        .collect();
                    let logits = model.masked_logits(&ids, &positions);
                    let loss = cce_loss_indices(&mut model.tape, logits, &targets);
                    loss_sum += f64::from(model.tape.scalar(loss));
                    model.tape.backward(loss);
                }
                batches += 1;
                let params = model.params.clone();
                model.opt.step(&mut model.tape, &params);
                model.tape.reset();
            }
            obs.emit(Event::EpochEnd {
                stage: "baseline/logbert/masked-key".to_string(),
                epoch,
                epochs: self.epochs,
                batches,
                loss: if normal_pool.is_empty() {
                    0.0
                } else {
                    (loss_sum / normal_pool.len() as f64) as f32
                },
                grad_norm: None,
                lr: model.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        span.finish();

        let train_scores: Vec<f32> = normal_pool
            .iter()
            .map(|&i| model.score(train[i], cfg, self, &mut rng))
            .collect();
        let threshold = if train_scores.is_empty() {
            0.5
        } else {
            percentile(&train_scores, self.threshold_percentile)
        };
        Box::new(TrainedLogBert {
            inner: Mutex::new((model, rng)),
            spec: self.clone(),
            cfg: *cfg,
            threshold,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::noise::NoiseModel;
    use clfd_data::session::{DatasetKind, Preset};

    #[test]
    fn logbert_scores_anomalies_above_normals() {
        let split = DatasetKind::OpenStack.generate(Preset::Smoke, 6);
        let cfg = ClfdConfig::for_preset(Preset::Smoke);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = NoiseModel::Uniform { eta: 0.1 }.apply(&split.train_labels(), &mut rng);
        let spec = LogBert { epochs: 2, ..LogBert::default() };
        let preds = spec.fit_predict(&split, &noisy, &cfg, 4, &Obs::null());
        let truth = split.test_labels();
        let mean_score = |want: Label| {
            let (sum, count) = preds
                .iter()
                .zip(&truth)
                .filter(|(_, &l)| l == want)
                .fold((0.0, 0), |(s, c), (p, _)| (s + p.malicious_score, c + 1));
            sum / count as f32
        };
        assert!(
            mean_score(Label::Malicious) > mean_score(Label::Normal),
            "anomalies {:.3} vs normal {:.3}",
            mean_score(Label::Malicious),
            mean_score(Label::Normal)
        );
    }
}
