//! Shared training infrastructure for the baselines: encoder construction,
//! SimCLR warm-up, frozen-feature extraction, CE classifier heads, and
//! k-nearest-neighbour utilities.

use clfd::api::Scorer;
use clfd::{ClfdConfig, Prediction};
use clfd_autograd::{Tape, Var};
use clfd_data::augment::two_views;
use clfd_data::batch::{assemble_features, batch_indices, one_hot, SessionBatch};
use clfd_data::session::{Label, Session, SplitCorpus};
use clfd_data::word2vec::ActivityEmbeddings;
use clfd_losses::{cce_loss, nt_xent};
use clfd_nn::linear::LinearInit;
use clfd_nn::{Adam, Layer, Linear, Lstm, Optimizer};
use clfd_obs::{Event, Obs, Stopwatch};
use clfd_tensor::{kernels, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// An LSTM session encoder + tape + optimizer, shared by the baselines.
pub struct Encoder {
    /// The tape holding the encoder parameters.
    pub tape: Tape,
    /// The LSTM stack.
    pub lstm: Lstm,
    /// Parameter handles.
    pub params: Vec<Var>,
    /// Adam state.
    pub opt: Adam,
}

impl Encoder {
    /// Builds a fresh encoder from the shared hyper-parameters.
    pub fn new(cfg: &ClfdConfig, rng: &mut StdRng) -> Self {
        let mut tape = Tape::new();
        let lstm = Lstm::new(&mut tape, cfg.embed_dim, cfg.hidden, cfg.lstm_layers, rng);
        tape.seal();
        let params = lstm.params();
        let opt = Adam::new(cfg.lr);
        Self { tape, lstm, params, opt }
    }

    /// Records an encoding pass for a batch (caller resets the tape).
    pub fn encode(&mut self, batch: &SessionBatch) -> Var {
        let steps: Vec<Var> = batch
            .steps
            .iter()
            .map(|m| self.tape.constant(m.clone()))
            .collect();
        self.lstm.encode(&mut self.tape, &steps, &batch.lengths)
    }

    /// Optimizer step + tape reset.
    pub fn step(&mut self) {
        let params = self.params.clone();
        self.opt.step(&mut self.tape, &params);
        self.tape.reset();
    }

    /// L2-normalized frozen features for all sessions.
    ///
    /// Value-only (no tape recording), so it takes `&self` and is
    /// bit-identical to the tape-recorded encoding — see
    /// `clfd_nn::Lstm::infer`.
    pub fn features(
        &self,
        sessions: &[&Session],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
    ) -> Matrix {
        assemble_features(sessions, embeddings, cfg.batch_size, cfg.max_seq_len, cfg.hidden, |b| {
            self.lstm.infer(&self.tape, &b.steps, &b.lengths)
        })
        .l2_normalize_rows(1e-9)
    }
}

/// Trains activity embeddings exactly as the CLFD pipeline does.
pub fn train_embeddings(
    sessions: &[&Session],
    vocab: usize,
    cfg: &ClfdConfig,
    rng: &mut StdRng,
) -> ActivityEmbeddings {
    ActivityEmbeddings::train(sessions, vocab, &cfg.w2v_config(), rng)
}

/// SimCLR warm-up of an encoder using the session-reordering augmentation
/// (Sel-CL's warm-up and CLDet's pre-training stage, §IV-A3).
///
/// Emits one [`Event::EpochEnd`] per epoch under `stage`.
#[allow(clippy::too_many_arguments)]
pub fn simclr_warmup(
    encoder: &mut Encoder,
    sessions: &[&Session],
    embeddings: &ActivityEmbeddings,
    cfg: &ClfdConfig,
    epochs: usize,
    stage: &str,
    obs: &Obs,
    rng: &mut StdRng,
) {
    let span = obs.stage(stage);
    let mut order: Vec<usize> = (0..sessions.len()).collect();
    for epoch in 0..epochs {
        let epoch_clock = Stopwatch::start();
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        order.shuffle(rng);
        for chunk in batch_indices(&order, cfg.batch_size) {
            if chunk.len() < 2 {
                continue;
            }
            let mut views_a = Vec::with_capacity(chunk.len());
            let mut views_b = Vec::with_capacity(chunk.len());
            for &i in &chunk {
                let (a, b) = two_views(sessions[i], cfg.reorder_window, rng);
                views_a.push(a);
                views_b.push(b);
            }
            let all: Vec<&Session> = views_a.iter().chain(views_b.iter()).collect();
            let batch = SessionBatch::build(&all, embeddings, cfg.max_seq_len);
            let z = encoder.encode(&batch);
            let loss = nt_xent(&mut encoder.tape, z, cfg.simclr_temperature);
            loss_sum += f64::from(encoder.tape.scalar(loss));
            batches += 1;
            encoder.tape.backward(loss);
            encoder.step();
        }
        obs.emit(Event::EpochEnd {
            stage: stage.to_string(),
            epoch,
            epochs,
            batches,
            loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
            grad_norm: None,
            lr: encoder.opt.lr(),
            wall_ms: epoch_clock.elapsed_ms(),
        });
    }
    span.finish();
}

/// A linear softmax head with its own tape (baseline classifiers).
pub struct LinearHead {
    tape: Tape,
    layer: Linear,
    params: Vec<Var>,
    opt: Adam,
}

impl LinearHead {
    /// Builds an `in_dim → 2` softmax head.
    pub fn new(in_dim: usize, lr: f32, rng: &mut StdRng) -> Self {
        let mut tape = Tape::new();
        let layer = Linear::new(&mut tape, in_dim, 2, LinearInit::Xavier, rng);
        tape.seal();
        let params = layer.params();
        Self { tape, layer, params, opt: Adam::new(lr) }
    }

    /// One CE step on a feature batch with (possibly soft) targets.
    pub fn step_ce(&mut self, features: &Matrix, targets: &Matrix) -> f32 {
        let x = self.tape.constant(features.clone());
        let logits = self.layer.forward(&mut self.tape, x);
        let loss = cce_loss(&mut self.tape, logits, targets);
        let value = self.tape.scalar(loss);
        self.tape.backward(loss);
        let params = self.params.clone();
        self.opt.step(&mut self.tape, &params);
        self.tape.reset();
        value
    }

    /// Softmax probabilities for features.
    ///
    /// Value-only forward (`clfd_nn::Linear::infer`), bit-identical to the
    /// tape-recorded logits and callable on a shared head.
    pub fn proba(&self, features: &Matrix) -> Matrix {
        self.layer.infer(&self.tape, features).softmax_rows()
    }

    /// Trains with CE over hard labels for `epochs`.
    ///
    /// Emits one [`Event::EpochEnd`] per epoch under `stage`.
    #[allow(clippy::too_many_arguments)]
    pub fn train_ce(
        &mut self,
        features: &Matrix,
        labels: &[Label],
        epochs: usize,
        batch_size: usize,
        stage: &str,
        obs: &Obs,
        rng: &mut StdRng,
    ) {
        let span = obs.stage(stage);
        let mut order: Vec<usize> = (0..labels.len()).collect();
        for epoch in 0..epochs {
            let epoch_clock = Stopwatch::start();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            order.shuffle(rng);
            for chunk in batch_indices(&order, batch_size) {
                let f = features.select_rows(&chunk);
                let ls: Vec<Label> = chunk.iter().map(|&i| labels[i]).collect();
                loss_sum += f64::from(self.step_ce(&f, &one_hot(&ls)));
                batches += 1;
            }
            obs.emit(Event::EpochEnd {
                stage: stage.to_string(),
                epoch,
                epochs,
                batches,
                loss: if batches > 0 { (loss_sum / batches as f64) as f32 } else { 0.0 },
                grad_norm: None,
                lr: self.opt.lr(),
                wall_ms: epoch_clock.elapsed_ms(),
            });
        }
        span.finish();
    }
}

/// An LSTM encoder and a linear softmax head sharing one tape, trained
/// end-to-end (CTRR, DivMix, ULC — methods whose classification loss must
/// reach the encoder).
pub struct JointModel {
    /// Tape holding all parameters.
    pub tape: Tape,
    /// Session encoder.
    pub lstm: Lstm,
    /// Softmax head.
    pub head: Linear,
    /// All parameter handles.
    pub params: Vec<Var>,
    /// Adam state.
    pub opt: Adam,
}

impl JointModel {
    /// Builds encoder + head from the shared hyper-parameters.
    pub fn new(cfg: &ClfdConfig, rng: &mut StdRng) -> Self {
        let mut tape = Tape::new();
        let lstm = Lstm::new(&mut tape, cfg.embed_dim, cfg.hidden, cfg.lstm_layers, rng);
        let head = Linear::new(&mut tape, cfg.hidden, 2, LinearInit::Xavier, rng);
        tape.seal();
        let mut params = lstm.params();
        params.extend(head.params());
        let opt = Adam::new(cfg.lr);
        Self { tape, lstm, head, params, opt }
    }

    /// Records encoder + head on the tape; returns `(z, logits)`.
    pub fn forward(&mut self, batch: &SessionBatch) -> (Var, Var) {
        let steps: Vec<Var> = batch
            .steps
            .iter()
            .map(|m| self.tape.constant(m.clone()))
            .collect();
        let z = self.lstm.encode(&mut self.tape, &steps, &batch.lengths);
        let logits = self.head.forward(&mut self.tape, z);
        (z, logits)
    }

    /// Optimizer step + reset (call after `tape.backward`).
    pub fn step(&mut self) {
        let params = self.params.clone();
        self.opt.step(&mut self.tape, &params);
        self.tape.reset();
    }

    /// One CE step on a session batch with soft targets; returns the loss.
    pub fn step_ce(&mut self, batch: &SessionBatch, targets: &Matrix) -> f32 {
        let (_, logits) = self.forward(batch);
        let loss = cce_loss(&mut self.tape, logits, targets);
        let value = self.tape.scalar(loss);
        self.tape.backward(loss);
        self.step();
        value
    }

    /// Softmax probabilities for one batch (no training).
    ///
    /// Value-only forward through the shared inference paths
    /// (`clfd_nn::Lstm::infer` + `clfd_nn::Linear::infer`), bit-identical
    /// to the tape-recorded `forward` and callable on a shared model.
    pub fn proba(&self, batch: &SessionBatch) -> Matrix {
        let z = self.lstm.infer(&self.tape, &batch.steps, &batch.lengths);
        self.head.infer(&self.tape, &z).softmax_rows()
    }

    /// Softmax probabilities for a full session list, batched.
    pub fn proba_all(
        &self,
        sessions: &[&Session],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
    ) -> Matrix {
        assemble_features(sessions, embeddings, cfg.batch_size, cfg.max_seq_len, 2, |b| {
            self.proba(b)
        })
    }

    /// Per-sample CE loss values over the full training set (for the
    /// DivideMix-style GMM split).
    pub fn per_sample_ce(
        &self,
        sessions: &[&Session],
        labels: &[Label],
        embeddings: &ActivityEmbeddings,
        cfg: &ClfdConfig,
    ) -> Vec<f32> {
        let probs = self.proba_all(sessions, embeddings, cfg);
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| -probs.get(i, l.index()).max(1e-12).ln())
            .collect()
    }
}

/// A trained ensemble of [`JointModel`]s bound to its embedding table and
/// batch-shaping config — the [`Scorer`] form of the jointly-trained
/// baselines (one network for CTRR, two for the co-teaching pair of DivMix
/// and ULC). Scoring averages the member networks' probabilities.
pub struct TrainedJointEnsemble {
    /// The trained member networks.
    pub nets: Vec<JointModel>,
    /// The activity-embedding table the networks were trained over.
    pub embeddings: ActivityEmbeddings,
    /// Hyper-parameters (batch shaping is read at scoring time).
    pub cfg: ClfdConfig,
}

impl TrainedJointEnsemble {
    /// Averaged class probabilities over the member networks (`n x 2`).
    pub fn proba(&self, sessions: &[&Session]) -> Matrix {
        assert!(!self.nets.is_empty(), "ensemble needs at least one network");
        let mut acc = self.nets[0].proba_all(sessions, &self.embeddings, &self.cfg);
        for net in &self.nets[1..] {
            acc = acc.add(&net.proba_all(sessions, &self.embeddings, &self.cfg));
        }
        if self.nets.len() > 1 {
            acc = acc.scale(1.0 / self.nets.len() as f32);
        }
        acc
    }
}

impl Scorer for TrainedJointEnsemble {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        to_predictions(&self.proba(sessions))
    }
}

/// A frozen-feature [`Encoder`] plus a [`LinearHead`] bound to its
/// embedding table and config — the [`Scorer`] form of the two-stage
/// contrastive baselines (Sel-CL, CLDet).
pub struct TrainedEncoderHead {
    /// The (SimCLR-warmed) session encoder.
    pub encoder: Encoder,
    /// The CE-trained softmax head.
    pub head: LinearHead,
    /// The activity-embedding table the model was trained over.
    pub embeddings: ActivityEmbeddings,
    /// Hyper-parameters (batch shaping is read at scoring time).
    pub cfg: ClfdConfig,
}

impl Scorer for TrainedEncoderHead {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        let features = self.encoder.features(sessions, &self.embeddings, &self.cfg);
        to_predictions(&self.head.proba(&features))
    }
}

/// Converts `n x 2` probabilities to predictions (argmax + scores).
pub fn to_predictions(probs: &Matrix) -> Vec<Prediction> {
    (0..probs.rows())
        .map(|r| {
            let p0 = probs.get(r, 0);
            let p1 = probs.get(r, 1);
            Prediction {
                label: if p1 > p0 { Label::Malicious } else { Label::Normal },
                malicious_score: p1,
                confidence: p0.max(p1),
            }
        })
        .collect()
}

/// Converts anomaly scores (higher = more malicious) plus a threshold into
/// predictions; scores are squashed to (0, 1) for AUC comparability.
pub fn scores_to_predictions(scores: &[f32], threshold: f32) -> Vec<Prediction> {
    scores
        .iter()
        .map(|&s| {
            let label = if s > threshold { Label::Malicious } else { Label::Normal };
            let squashed = 1.0 / (1.0 + (-(s - threshold)).exp());
            Prediction {
                label,
                malicious_score: squashed,
                confidence: squashed.max(1.0 - squashed),
            }
        })
        .collect()
}

/// `k`-nearest-neighbour majority vote over cosine similarity
/// (Sel-CL's label-correction step, adapted to the encoded session space).
pub fn knn_correct(features: &Matrix, labels: &[Label], k: usize) -> Vec<Label> {
    assert_eq!(features.rows(), labels.len());
    let n = labels.len();
    let k = k.min(n.saturating_sub(1)).max(1);
    let mut corrected = Vec::with_capacity(n);
    for i in 0..n {
        let mut sims: Vec<(f32, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (kernels::dot(features.row(i), features.row(j)), j))
            .collect();
        sims.sort_by(|a, b| b.0.total_cmp(&a.0));
        let malicious_votes = sims
            .iter()
            .take(k)
            .filter(|&&(_, j)| labels[j] == Label::Malicious)
            .count();
        corrected.push(if 2 * malicious_votes > k {
            Label::Malicious
        } else {
            Label::Normal
        });
    }
    corrected
}

/// Percentile of a slice (0.0–1.0), by sorting a copy.
pub fn percentile(values: &[f32], p: f32) -> f32 {
    assert!(!values.is_empty(), "percentile of empty slice");
    let mut sorted = values.to_vec();
    sorted.sort_by(f32::total_cmp);
    let idx = ((sorted.len() - 1) as f32 * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// References to the train / test sessions of a split.
pub fn session_refs(split: &SplitCorpus) -> (Vec<&Session>, Vec<&Session>) {
    let train = split.train.iter().map(|&i| &split.corpus.sessions[i]).collect();
    let test = split.test.iter().map(|&i| &split.corpus.sessions[i]).collect();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn knn_majority_corrects_isolated_flips() {
        // Two tight clusters; one sample in each carries the wrong label.
        let mut features = Matrix::zeros(10, 2);
        for i in 0..5 {
            features.row_mut(i).copy_from_slice(&[1.0, 0.01 * i as f32]);
        }
        for i in 5..10 {
            features.row_mut(i).copy_from_slice(&[-1.0, 0.01 * i as f32]);
        }
        let features = features.l2_normalize_rows(1e-9);
        let mut labels = vec![Label::Normal; 5];
        labels.extend(vec![Label::Malicious; 5]);
        labels[0] = Label::Malicious; // flipped
        labels[9] = Label::Normal; // flipped
        let corrected = knn_correct(&features, &labels, 3);
        assert_eq!(corrected[0], Label::Normal);
        assert_eq!(corrected[9], Label::Malicious);
        assert_eq!(corrected[2], Label::Normal);
        assert_eq!(corrected[7], Label::Malicious);
    }

    #[test]
    fn percentile_bounds() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }

    #[test]
    fn scores_to_predictions_threshold() {
        let preds = scores_to_predictions(&[0.1, 0.9], 0.5);
        assert_eq!(preds[0].label, Label::Normal);
        assert_eq!(preds[1].label, Label::Malicious);
        assert!(preds[1].malicious_score > preds[0].malicious_score);
    }

    #[test]
    fn linear_head_learns_xor_free_problem() {
        let mut rng = StdRng::seed_from_u64(0);
        let features = Matrix::from_fn(40, 3, |r, c| {
            if r % 2 == 0 { 0.5 + c as f32 * 0.1 } else { -0.5 - c as f32 * 0.1 }
        });
        let labels: Vec<Label> = (0..40)
            .map(|r| if r % 2 == 0 { Label::Malicious } else { Label::Normal })
            .collect();
        let mut head = LinearHead::new(3, 0.05, &mut rng);
        head.train_ce(&features, &labels, 50, 16, "test/head", &Obs::null(), &mut rng);
        let preds = to_predictions(&head.proba(&features));
        let acc = preds.iter().zip(&labels).filter(|(p, &l)| p.label == l).count();
        assert!(acc >= 38, "accuracy {acc}/40");
    }
}
