//! Structured run telemetry for the CLFD stack.
//!
//! Every training loop, divergence guard, sweep worker, and benchmark in
//! this workspace reports what it does through this crate: a [`Recorder`]
//! trait consuming a typed [`Event`] taxonomy, behind a cheap cloneable
//! [`Obs`] handle that call sites thread through their APIs. Three sinks
//! ship with the crate:
//!
//! * [`JsonlSink`] — thread-safe, one JSON object per line, flushed per
//!   event so a live run can be tailed (`RUN_*.jsonl` artifacts);
//! * [`NullSink`] / [`Obs::null`] — telemetry off, near-zero cost;
//! * [`MemorySink`] — test sink capturing events in arrival order.
//!
//! # Determinism contract
//!
//! Telemetry is observational only. Producing an event reads values the
//! compute path already produced (loss scalars, learning rates, gradient
//! norms) and captures wall time from a monotonic clock, but never touches
//! RNG state, float accumulation order, or parameter values. A run with a
//! sink attached is bit-identical to a run without one; the golden
//! end-to-end determinism test enforces this.
//!
//! This crate is dependency-free (stdlib only) so every other crate in the
//! workspace can depend on it without weight.

mod event;
pub mod json;
mod sink;

pub use event::{Event, GuardAction, CONFIDENCE_BUCKETS};
pub use sink::{JsonlSink, MemorySink, NullSink, Recorder, Tee};

use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Cheap cloneable handle to a shared [`Recorder`] (or to nothing).
///
/// `Obs` is the unit APIs accept: `Obs::null()` disables telemetry,
/// `Obs::jsonl(path)?` logs to a JSONL file, `Obs::new(sink)` wraps any
/// recorder. Cloning shares the underlying recorder.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<dyn Recorder>>,
}

impl Obs {
    /// Telemetry disabled: every [`Obs::emit`] is a no-op.
    pub fn null() -> Self {
        Self { inner: None }
    }

    /// Wraps a recorder.
    pub fn new(recorder: impl Recorder + 'static) -> Self {
        Self { inner: Some(Arc::new(recorder)) }
    }

    /// Wraps an already-shared recorder (used by tests that keep a handle
    /// to a [`MemorySink`] while the stack writes to it).
    pub fn from_arc(recorder: Arc<dyn Recorder>) -> Self {
        Self { inner: Some(recorder) }
    }

    /// Creates a [`JsonlSink`] at `path` and wraps it.
    pub fn jsonl(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(JsonlSink::create(path)?))
    }

    /// True when a recorder is attached. Call sites may use this to skip
    /// *formatting* work for disabled telemetry, but must never branch
    /// compute-path behavior on it (that would break the determinism
    /// contract).
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event (no-op when disabled).
    pub fn emit(&self, event: Event) {
        if let Some(rec) = &self.inner {
            rec.record(&event);
        }
    }

    /// Flushes the underlying recorder.
    pub fn flush(&self) {
        if let Some(rec) = &self.inner {
            rec.flush();
        }
    }

    /// Emits [`Event::StageStart`] and returns a span guard that emits the
    /// matching [`Event::StageEnd`] (with wall-clock duration) when dropped
    /// or [`finish`](StageSpan::finish)ed — including on early error
    /// returns.
    ///
    /// When telemetry is disabled this short-circuits to an inert span
    /// before even converting `stage` into a `String`, so hot loops wrapped
    /// in spans pay no allocation and no clock read with a [`NullSink`] /
    /// [`Obs::null`] handle.
    pub fn stage(&self, stage: impl Into<String>) -> StageSpan {
        if self.inner.is_none() {
            return StageSpan { inner: None, done: true };
        }
        let stage = stage.into();
        self.emit(Event::StageStart { stage: stage.clone() });
        StageSpan {
            inner: Some(SpanInner { obs: self.clone(), stage, start: Instant::now() }),
            done: false,
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.enabled() { "Obs(recorder)" } else { "Obs(null)" })
    }
}

/// RAII guard for a stage: emits [`Event::StageEnd`] exactly once, on drop
/// or explicit [`finish`](StageSpan::finish). Spans from a disabled
/// [`Obs`] are inert (no state, no emission).
pub struct StageSpan {
    inner: Option<SpanInner>,
    done: bool,
}

struct SpanInner {
    obs: Obs,
    stage: String,
    start: Instant,
}

impl StageSpan {
    /// The stage path this span covers (empty for an inert span from a
    /// disabled [`Obs`]).
    pub fn stage(&self) -> &str {
        self.inner.as_ref().map_or("", |inner| &inner.stage)
    }

    /// Ends the span now (equivalent to dropping it, but reads better at
    /// call sites).
    pub fn finish(mut self) {
        self.end();
    }

    fn end(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if let Some(inner) = self.inner.take() {
            let wall_us = micros_since(inner.start);
            inner.obs.emit(Event::StageEnd {
                stage: inner.stage,
                wall_ms: wall_us / 1000,
                wall_us,
            });
        }
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        self.end();
    }
}

/// Monotonic stopwatch for wall-clock event fields. The reading feeds
/// telemetry only — never the compute path.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> u64 {
        millis_since(self.start)
    }

    /// Microseconds elapsed since [`Stopwatch::start`] (sub-millisecond
    /// stages flatten to 0 in [`Stopwatch::elapsed_ms`]; this one keeps
    /// them).
    pub fn elapsed_us(&self) -> u64 {
        micros_since(self.start)
    }
}

fn millis_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

fn micros_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStart { name: "t".into(), detail: "preset=smoke".into() },
            Event::StageStart { stage: "corrector/simclr".into() },
            Event::StageEnd { stage: "corrector/simclr".into(), wall_ms: 0, wall_us: 412 },
            Event::EpochEnd {
                stage: "corrector/simclr".into(),
                epoch: 0,
                epochs: 3,
                batches: 7,
                loss: 1.25,
                grad_norm: Some(0.5),
                lr: 1e-3,
                wall_ms: 12,
            },
            Event::Guard {
                stage: "detector/supcon".into(),
                step: 9,
                action: GuardAction::Rollback,
                detail: "non-finite loss \"NaN\"\n".into(),
                lr: 5e-4,
            },
            Event::FaultInjected { stage: "detector/supcon".into(), step: 9, kind: "NaN gradient".into() },
            Event::EpochEnd {
                stage: "detector/head".into(),
                epoch: 1,
                epochs: 2,
                batches: 4,
                loss: f32::NAN,
                grad_norm: None,
                lr: 0.01,
                wall_ms: 3,
            },
            Event::CellStart {
                cell: 0,
                worker: 1,
                model: "CLFD".into(),
                dataset: "cert".into(),
                noise: "uniform 0.2".into(),
            },
            Event::CellEnd { cell: 0, worker: 1, model: "CLFD".into(), wall_ms: 80, failures: 0 },
            Event::RunFailure { model: "ULC".into(), run: 2, seed: 44, error: "boom \\ quote \"".into() },
            Event::KernelCounters { scope: "fit".into(), launches: 10, parallel_launches: 4, busy_ns: 12345 },
            Event::QueueDepth { depth: 3, capacity: 64 },
            Event::BatchFlushed {
                worker: 1,
                rows: 32,
                padded_len: 12,
                wall_us: 480,
                model: "default".into(),
            },
            Event::RequestDone {
                request: 17,
                sessions: 1,
                latency_us: 950,
                model: "fraud@3".into(),
            },
            Event::RequestExpired { request: 18, model: "fraud@3".into(), waited_us: 5000 },
            Event::ServePanic { worker: 0, model: "fraud@3".into(), detail: "boom".into() },
            Event::SwapStart { model: "fraud".into(), version: 4 },
            Event::SwapCommit { model: "fraud".into(), version: 4, prior: Some(3) },
            Event::SwapCommit { model: "fraud".into(), version: 1, prior: None },
            Event::SwapRollback {
                model: "fraud".into(),
                version: 5,
                active: Some(4),
                reason: "checksum mismatch".into(),
            },
            Event::confidence("corrector/confidence", &[0.55, 0.98, 1.0, f32::NAN]),
            Event::MetricsReport {
                scope: "serve/64".into(),
                snapshot: "{\"families\":[]}".into(),
            },
            Event::ArtifactWritten { path: "results/table1.json".into() },
            Event::Message { text: "control \u{1} char".into() },
            Event::RunEnd { name: "t".into(), wall_ms: 99 },
        ]
    }

    #[test]
    fn every_event_serializes_to_valid_json() {
        for (i, ev) in sample_events().iter().enumerate() {
            let line = ev.to_json_line(i as u64, 17);
            json::validate(&line).unwrap_or_else(|e| panic!("event {i} invalid: {e}\n{line}"));
            assert!(line.contains(&format!("\"type\":\"{}\"", ev.type_tag())), "{line}");
            assert!(line.starts_with(&format!("{{\"seq\":{i},")), "{line}");
            // Single line: embedded newlines must have been escaped.
            assert!(!line.contains('\n'), "{line}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = Event::EpochEnd {
            stage: "s".into(),
            epoch: 0,
            epochs: 1,
            batches: 1,
            loss: f32::INFINITY,
            grad_norm: None,
            lr: 0.1,
            wall_ms: 0,
        };
        let line = ev.to_json();
        json::validate(&line).unwrap();
        assert!(line.contains("\"loss\":null"), "{line}");
        assert!(line.contains("\"grad_norm\":null"), "{line}");
    }

    #[test]
    fn string_escaping_round_trips_through_the_validator() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{3} unicode ✓";
        let line = Event::Message { text: nasty.into() }.to_json();
        json::validate(&line).unwrap_or_else(|e| panic!("{e}\n{line}"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1}x",
            "{\"a\":\"unterminated}",
            "{\"a\":nanan}",
            "{\"a\":1.}",
            "[1,2",
            "",
        ] {
            assert!(json::validate(bad).is_err(), "accepted: {bad:?}");
        }
        json::validate("  {\"a\": [1, 2.5e-3, null, true, \"x\"]}  ").unwrap();
    }

    #[test]
    fn jsonl_sink_writes_one_valid_line_per_event_with_increasing_seq() {
        // Shared Vec<u8> target so the test can inspect what was written.
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let target = Shared::default();
        let obs = Obs::new(JsonlSink::from_writer(target.clone()));
        for ev in sample_events() {
            obs.emit(ev);
        }
        obs.flush();
        let bytes = target.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for (i, line) in lines.iter().enumerate() {
            json::validate(line).unwrap_or_else(|e| panic!("line {i}: {e}\n{line}"));
            assert!(line.starts_with(&format!("{{\"seq\":{i},")), "line {i}: {line}");
        }
    }

    #[test]
    fn jsonl_sink_is_thread_safe_and_keeps_seq_in_file_order() {
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let target = Shared::default();
        let obs = Obs::new(JsonlSink::from_writer(target.clone()));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let obs = obs.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        obs.emit(Event::Message { text: format!("t{t} m{i}") });
                    }
                });
            }
        });
        let bytes = target.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 200);
        for (i, line) in lines.iter().enumerate() {
            json::validate(line).unwrap_or_else(|e| panic!("line {i}: {e}\n{line}"));
            // Interleaved writers must still produce file-order == seq-order.
            assert!(line.starts_with(&format!("{{\"seq\":{i},")), "line {i}: {line}");
        }
    }

    #[test]
    fn memory_sink_captures_events_in_order_and_take_drains() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::from_arc(sink.clone());
        assert!(obs.enabled());
        obs.emit(Event::Message { text: "a".into() });
        obs.emit(Event::Message { text: "b".into() });
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(
            events,
            vec![Event::Message { text: "a".into() }, Event::Message { text: "b".into() }]
        );
        assert!(sink.is_empty());
    }

    #[test]
    fn null_obs_is_disabled_and_emits_nothing() {
        let obs = Obs::null();
        assert!(!obs.enabled());
        obs.emit(Event::Message { text: "dropped".into() });
        obs.flush();
        let _ = Obs::new(NullSink); // the explicit sink also swallows
        assert_eq!(format!("{obs:?}"), "Obs(null)");
        assert_eq!(format!("{:?}", Obs::default()), "Obs(null)");
    }

    #[test]
    fn stage_span_emits_start_and_end_even_on_early_drop() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::from_arc(sink.clone());
        {
            let _span = obs.stage("corrector/simclr");
            // dropped here without finish(): simulates an error return
        }
        let span = obs.stage("detector/head");
        span.finish();
        let events = sink.take();
        let tags: Vec<&str> = events.iter().map(Event::type_tag).collect();
        assert_eq!(tags, ["stage_start", "stage_end", "stage_start", "stage_end"]);
        match (&events[0], &events[1]) {
            (Event::StageStart { stage: s0 }, Event::StageEnd { stage: s1, .. }) => {
                assert_eq!(s0, "corrector/simclr");
                assert_eq!(s1, "corrector/simclr");
            }
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn stage_end_keeps_submillisecond_durations_in_wall_us() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::from_arc(sink.clone());
        obs.stage("fast").finish(); // returns within microseconds
        let events = sink.take();
        match &events[1] {
            Event::StageEnd { wall_ms, wall_us, .. } => {
                // ms is derived from us, so the two can never disagree …
                assert_eq!(*wall_ms, wall_us / 1000);
                // … and a sub-millisecond stage keeps a meaningful reading
                // (wall_us is a real clock read; it may legitimately be 0
                // only on a sub-microsecond span).
                assert!(*wall_us < 1_000_000, "smoke span took {wall_us}us");
            }
            other => panic!("expected StageEnd, got {other:?}"),
        }
    }

    /// A stage name whose `Into<String>` conversion panics: proof that the
    /// disabled path never converts (and hence never allocates) the name.
    struct PanicsOnConvert;

    impl From<PanicsOnConvert> for String {
        fn from(_: PanicsOnConvert) -> String {
            panic!("disabled Obs::stage must not convert the stage name")
        }
    }

    #[test]
    fn disabled_stage_short_circuits_without_converting_the_name() {
        let obs = Obs::null();
        let span = obs.stage(PanicsOnConvert); // must not reach the From impl
        assert_eq!(span.stage(), "");
        span.finish();
        let _implicit = obs.stage(PanicsOnConvert); // drop path is inert too
    }

    #[test]
    fn enabled_stage_still_converts_and_emits() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::from_arc(sink.clone());
        let span = obs.stage(String::from("real"));
        assert_eq!(span.stage(), "real");
        drop(span);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn tee_forwards_every_event_to_every_sink() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let obs = Obs::new(Tee::new(vec![
            a.clone() as Arc<dyn Recorder>,
            b.clone() as Arc<dyn Recorder>,
        ]));
        obs.emit(Event::Message { text: "x".into() });
        obs.emit(Event::QueueDepth { depth: 1, capacity: 4 });
        obs.flush();
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn confidence_constructor_buckets_clamps_and_drops_non_finite() {
        let ev = Event::confidence("s", &[0.5, 0.52, 0.999, 1.0, 2.0, -1.0, f32::NAN]);
        let Event::Confidence { stage, count, sum, buckets } = &ev else {
            panic!("wrong variant");
        };
        assert_eq!(stage, "s");
        assert_eq!(*count, 6); // NaN dropped; 2.0 and -1.0 clamped
        assert_eq!(buckets.len(), CONFIDENCE_BUCKETS);
        assert_eq!(buckets.iter().sum::<u64>(), 6);
        assert_eq!(buckets[10], 2); // 0.5 and 0.52
        assert_eq!(buckets[0], 1); // -1.0 clamped to 0
        assert_eq!(buckets[CONFIDENCE_BUCKETS - 1], 3); // 0.999, 1.0, 2.0
        // f32 inputs widened to f64, so compare at f32 precision.
        assert!((sum - (0.5 + 0.52 + 0.999 + 1.0 + 1.0 + 0.0)).abs() < 1e-6);
        json::validate(&ev.to_json()).unwrap();
    }
}
