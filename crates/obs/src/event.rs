//! The structured event taxonomy emitted by the CLFD stack.
//!
//! Events are plain data: producing one never touches model state, RNG
//! state, or float accumulation order, so a run with telemetry enabled is
//! bit-identical to one without (the golden determinism test enforces
//! this). Wall-clock fields (`wall_ms`, `busy_ns`) are measured with
//! [`std::time::Instant`] and feed *only* these event fields — never the
//! compute path.

use crate::json::Obj;

/// Which intervention a [`TrainGuard`](../../clfd_nn/guard/struct.TrainGuard.html)
/// performed on a training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardAction {
    /// A fault was detected; parameters rolled back to the last checkpoint
    /// and the learning rate backed off.
    Rollback,
    /// The global gradient norm exceeded its ceiling and was rescaled.
    Clip,
    /// A checkpoint certified a stable stretch and the backed-off learning
    /// rate was re-warmed one notch toward its starting value.
    Rewarm,
    /// The consecutive-retry budget was exhausted; training aborted with a
    /// typed error.
    Abort,
}

impl GuardAction {
    /// Stable lowercase tag used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            GuardAction::Rollback => "rollback",
            GuardAction::Clip => "clip",
            GuardAction::Rewarm => "rewarm",
            GuardAction::Abort => "abort",
        }
    }
}

/// One structured telemetry event.
///
/// `stage` fields are slash-separated paths identifying the training phase
/// (e.g. `"corrector/simclr"`, `"detector/head"`, `"baseline/cl-det/encoder"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A top-level run (a binary invocation, a sweep, a benchmark) began.
    RunStart {
        /// Run name, e.g. the binary or table being produced.
        name: String,
        /// Free-form description of the run configuration.
        detail: String,
    },
    /// The matching end of a [`Event::RunStart`].
    RunEnd {
        /// Run name echoed from the start event.
        name: String,
        /// Wall-clock duration of the run in milliseconds.
        wall_ms: u64,
    },
    /// A training stage (encoder pre-train, head fit, …) began.
    StageStart {
        /// Stage path, e.g. `"corrector/simclr"`.
        stage: String,
    },
    /// The matching end of a [`Event::StageStart`].
    StageEnd {
        /// Stage path echoed from the start event.
        stage: String,
        /// Wall-clock duration of the stage in milliseconds (truncated;
        /// kept for human eyes and backward compatibility — latency math
        /// should use `wall_us`).
        wall_ms: u64,
        /// Wall-clock duration of the stage in microseconds. Sub-millisecond
        /// stages used to flatten to `wall_ms = 0`; this field preserves
        /// them.
        wall_us: u64,
    },
    /// One epoch of a training stage finished.
    EpochEnd {
        /// Stage path this epoch belongs to.
        stage: String,
        /// Zero-based epoch index.
        epoch: usize,
        /// Total number of epochs the stage will run.
        epochs: usize,
        /// Number of optimizer steps taken this epoch.
        batches: usize,
        /// Mean training loss over the epoch's batches.
        loss: f32,
        /// Global gradient L2 norm of the final batch, when the guard
        /// computed one (clipping enabled); `None` otherwise.
        grad_norm: Option<f32>,
        /// Learning rate at the end of the epoch (reflects guard backoff).
        lr: f32,
        /// Wall-clock duration of the epoch in milliseconds.
        wall_ms: u64,
    },
    /// A divergence-guard intervention (PR 1 previously swallowed these).
    Guard {
        /// Stage path of the guarded training loop.
        stage: String,
        /// Guarded step index at which the intervention happened.
        step: u64,
        /// Which intervention was performed.
        action: GuardAction,
        /// Human-readable detail (the fault, the clipped norm, …).
        detail: String,
        /// Learning rate after the intervention.
        lr: f32,
    },
    /// The deterministic fault-injection harness fired.
    FaultInjected {
        /// Stage path of the training loop under test.
        stage: String,
        /// Guarded step index the fault was injected at.
        step: u64,
        /// Fault kind, e.g. `"NaN gradient"`.
        kind: String,
    },
    /// A parallel sweep over experiment cells began.
    SweepStart {
        /// Number of cells queued.
        cells: usize,
        /// Number of worker threads.
        workers: usize,
    },
    /// The matching end of a [`Event::SweepStart`].
    SweepEnd {
        /// Number of cells completed.
        cells: usize,
        /// Wall-clock duration of the sweep in milliseconds.
        wall_ms: u64,
    },
    /// A sweep worker claimed an experiment cell.
    CellStart {
        /// Cell index in the sweep's input order.
        cell: usize,
        /// Worker thread index that claimed the cell.
        worker: usize,
        /// Model name.
        model: String,
        /// Dataset name.
        dataset: String,
        /// Noise condition, e.g. `"uniform 0.2"`.
        noise: String,
    },
    /// The matching end of a [`Event::CellStart`].
    CellEnd {
        /// Cell index echoed from the start event.
        cell: usize,
        /// Worker thread index echoed from the start event.
        worker: usize,
        /// Model name echoed from the start event.
        model: String,
        /// Wall-clock duration of the cell in milliseconds.
        wall_ms: u64,
        /// Number of runs inside the cell that failed and were isolated.
        failures: usize,
    },
    /// A sweep worker ran out of cells and exited (utilization record).
    WorkerEnd {
        /// Worker thread index.
        worker: usize,
        /// Number of cells this worker completed.
        cells: usize,
        /// Milliseconds this worker spent inside cells (busy time).
        busy_ms: u64,
    },
    /// One run inside an experiment cell failed and was isolated.
    RunFailure {
        /// Model name.
        model: String,
        /// Run index within the cell.
        run: usize,
        /// Seed of the failed run.
        seed: u64,
        /// The error message.
        error: String,
    },
    /// Snapshot of the tensor crate's kernel launch counters.
    KernelCounters {
        /// What the counters cover, e.g. `"e2e@4threads"`.
        scope: String,
        /// Total threaded-kernel launches (including serial fallbacks).
        launches: u64,
        /// Launches that actually fanned out to more than one part.
        parallel_launches: u64,
        /// Nanoseconds spent inside kernel launch blocks.
        busy_ns: u64,
    },
    /// Depth of a serving request queue, sampled when a worker drains it.
    QueueDepth {
        /// Requests waiting in the queue after the drain.
        depth: usize,
        /// Bound of the queue (submissions beyond this are rejected).
        capacity: usize,
    },
    /// A serving worker flushed one micro-batch through the model.
    BatchFlushed {
        /// Worker index that ran the batch.
        worker: usize,
        /// Number of sessions in the batch.
        rows: usize,
        /// Padded sequence length the batch ran at.
        padded_len: usize,
        /// Wall-clock duration of the batched forward in microseconds.
        wall_us: u64,
        /// Model label that scored the batch, e.g. `"default"` or
        /// `"fraud@3"` (a registry model-id at a specific version).
        model: String,
    },
    /// A serving request completed and its response was delivered.
    RequestDone {
        /// Submission-order identifier of the request.
        request: u64,
        /// Number of sessions the request carried.
        sessions: usize,
        /// Queue-to-response latency in microseconds.
        latency_us: u64,
        /// Model label that answered the request, e.g. `"fraud@3"`.
        model: String,
    },
    /// A serving request expired (its deadline passed before a worker
    /// could score it) and was answered with a typed error instead.
    RequestExpired {
        /// Submission-order identifier of the request.
        request: u64,
        /// Model label of the engine's scorer at expiry time.
        model: String,
        /// Microseconds the request sat in the queue before expiring.
        waited_us: u64,
    },
    /// A serving worker caught a panic from the scoring path, answered the
    /// affected requests with a typed error, and kept running.
    ServePanic {
        /// Worker index that caught the panic.
        worker: usize,
        /// Model label the panicking batch was routed to.
        model: String,
        /// The panic payload, best-effort stringified.
        detail: String,
    },
    /// The HTTP gateway answered one request (emitted after the response
    /// bytes were written, so `/metrics` responses never include their own
    /// request).
    HttpRequest {
        /// Tenant resolved from the API key (`"anonymous"` on an open
        /// gateway).
        tenant: String,
        /// HTTP method, e.g. `"POST"`.
        method: String,
        /// Request path with any query string stripped, e.g. `"/v1/score"`.
        path: String,
        /// HTTP status code of the response.
        status: u16,
        /// Parse-complete-to-response-written latency in microseconds.
        latency_us: u64,
    },
    /// The HTTP gateway accepted a client connection into its worker pool.
    ConnOpened {
        /// Connections alive (queued + serving) after this accept.
        active: usize,
    },
    /// An HTTP gateway connection finished.
    ConnClosed {
        /// Requests answered on the connection before it closed.
        requests: u64,
        /// Why it closed: `"client_close"`, `"client_error"`, `"timeout"`,
        /// `"truncated"`, `"keep_alive_limit"`, `"io_error"`, `"shutdown"`.
        reason: String,
    },
    /// The HTTP gateway refused a connection at the edge, before any
    /// request was read (admission queue full or connection cap reached).
    GatewayShed {
        /// Why the connection was shed: `"queue_full"` or `"conn_cap"`.
        reason: String,
    },
    /// A registry began validating a candidate version for promotion.
    SwapStart {
        /// Registry model id.
        model: String,
        /// Candidate version under validation.
        version: u64,
    },
    /// A registry promoted a version to Active (the atomic hot-swap
    /// committed).
    SwapCommit {
        /// Registry model id.
        model: String,
        /// Version now Active.
        version: u64,
        /// Previously Active version, if there was one.
        prior: Option<u64>,
    },
    /// A candidate was rejected, a canary was rolled back, or a manual
    /// rollback reinstated an older version — in every case the version in
    /// `active` keeps serving.
    SwapRollback {
        /// Registry model id.
        model: String,
        /// The version that was rejected or rolled back.
        version: u64,
        /// Version serving after the rollback (`None` when the model has
        /// no Active version at all, e.g. a first install failed).
        active: Option<u64>,
        /// Why the rollback happened (validation failure, canary
        /// regression, injected fault, manual request, …).
        reason: String,
    },
    /// Histogram of the label corrector's confidences `c_i`, emitted at
    /// correction time. Two-stage noise-correction methods silently degrade
    /// when the corrector's confidence collapses; this event makes the
    /// distribution observable per run. Build with [`Event::confidence`]
    /// so the bucket layout matches [`CONFIDENCE_BUCKETS`].
    Confidence {
        /// Stage path, e.g. `"corrector/confidence"`.
        stage: String,
        /// Number of confidences summarized.
        count: u64,
        /// Sum of the confidences (mean = `sum / count`).
        sum: f64,
        /// Per-bucket counts over `[0, 1]` split into
        /// [`CONFIDENCE_BUCKETS`] equal-width buckets; values ≥ 1 land in
        /// the last bucket.
        buckets: Vec<u64>,
    },
    /// A metrics snapshot flushed mid-run (e.g. periodically by the serve
    /// engine). `snapshot` is the registry's JSON exposition, embedded as a
    /// string so the JSONL stream stays one self-contained object per line.
    MetricsReport {
        /// What flushed the snapshot, e.g. `"serve/128"` after 128 answered
        /// requests.
        scope: String,
        /// The JSON snapshot text (parse with [`crate::json::parse`]).
        snapshot: String,
    },
    /// A report artifact (JSON table, benchmark file) was written.
    ArtifactWritten {
        /// Path of the artifact.
        path: String,
    },
    /// Free-form progress message.
    Message {
        /// The message text.
        text: String,
    },
}

/// Number of equal-width buckets a [`Event::Confidence`] histogram splits
/// `[0, 1]` into. Metrics consumers (`clfd-metrics`) mirror this layout so
/// bucket counts merge without resampling.
pub const CONFIDENCE_BUCKETS: usize = 20;

impl Event {
    /// Builds a [`Event::Confidence`] histogram over `values` (softmax
    /// confidences in `[0.5, 1]`; anything is accepted and clamped into
    /// `[0, 1]`). Non-finite values are dropped.
    pub fn confidence(stage: impl Into<String>, values: &[f32]) -> Self {
        let mut buckets = vec![0u64; CONFIDENCE_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0.0f64;
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            let v = f64::from(v).clamp(0.0, 1.0);
            let idx = ((v * CONFIDENCE_BUCKETS as f64) as usize).min(CONFIDENCE_BUCKETS - 1);
            buckets[idx] += 1;
            count += 1;
            sum += v;
        }
        Event::Confidence { stage: stage.into(), count, sum, buckets }
    }

    /// Stable lowercase type tag used in the JSONL encoding.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::RunEnd { .. } => "run_end",
            Event::StageStart { .. } => "stage_start",
            Event::StageEnd { .. } => "stage_end",
            Event::EpochEnd { .. } => "epoch_end",
            Event::Guard { .. } => "guard",
            Event::FaultInjected { .. } => "fault_injected",
            Event::SweepStart { .. } => "sweep_start",
            Event::SweepEnd { .. } => "sweep_end",
            Event::CellStart { .. } => "cell_start",
            Event::CellEnd { .. } => "cell_end",
            Event::WorkerEnd { .. } => "worker_end",
            Event::RunFailure { .. } => "run_failure",
            Event::KernelCounters { .. } => "kernel_counters",
            Event::QueueDepth { .. } => "queue_depth",
            Event::BatchFlushed { .. } => "batch_flushed",
            Event::RequestDone { .. } => "request_done",
            Event::RequestExpired { .. } => "request_expired",
            Event::ServePanic { .. } => "serve_panic",
            Event::HttpRequest { .. } => "http_request",
            Event::ConnOpened { .. } => "conn_opened",
            Event::ConnClosed { .. } => "conn_closed",
            Event::GatewayShed { .. } => "gateway_shed",
            Event::SwapStart { .. } => "swap_start",
            Event::SwapCommit { .. } => "swap_commit",
            Event::SwapRollback { .. } => "swap_rollback",
            Event::Confidence { .. } => "confidence",
            Event::MetricsReport { .. } => "metrics_report",
            Event::ArtifactWritten { .. } => "artifact_written",
            Event::Message { .. } => "message",
        }
    }

    /// Serializes the event as a single-line JSON object (no trailing
    /// newline), with the given sink-assigned sequence number and
    /// milliseconds-since-sink-creation timestamp.
    pub fn to_json_line(&self, seq: u64, t_ms: u64) -> String {
        let obj = Obj::new().u64("seq", seq).u64("t_ms", t_ms).str("type", self.type_tag());
        self.fill(obj).finish()
    }

    /// Serializes the event as a single-line JSON object without sink
    /// metadata.
    pub fn to_json(&self) -> String {
        let obj = Obj::new().str("type", self.type_tag());
        self.fill(obj).finish()
    }

    fn fill(&self, obj: Obj) -> Obj {
        match self {
            Event::RunStart { name, detail } => obj.str("name", name).str("detail", detail),
            Event::RunEnd { name, wall_ms } => obj.str("name", name).u64("wall_ms", *wall_ms),
            Event::StageStart { stage } => obj.str("stage", stage),
            Event::StageEnd { stage, wall_ms, wall_us } => {
                obj.str("stage", stage).u64("wall_ms", *wall_ms).u64("wall_us", *wall_us)
            }
            Event::EpochEnd { stage, epoch, epochs, batches, loss, grad_norm, lr, wall_ms } => {
                obj.str("stage", stage)
                    .usize("epoch", *epoch)
                    .usize("epochs", *epochs)
                    .usize("batches", *batches)
                    .f32("loss", *loss)
                    .opt_f32("grad_norm", *grad_norm)
                    .f32("lr", *lr)
                    .u64("wall_ms", *wall_ms)
            }
            Event::Guard { stage, step, action, detail, lr } => obj
                .str("stage", stage)
                .u64("step", *step)
                .str("action", action.as_str())
                .str("detail", detail)
                .f32("lr", *lr),
            Event::FaultInjected { stage, step, kind } => {
                obj.str("stage", stage).u64("step", *step).str("kind", kind)
            }
            Event::SweepStart { cells, workers } => {
                obj.usize("cells", *cells).usize("workers", *workers)
            }
            Event::SweepEnd { cells, wall_ms } => {
                obj.usize("cells", *cells).u64("wall_ms", *wall_ms)
            }
            Event::CellStart { cell, worker, model, dataset, noise } => obj
                .usize("cell", *cell)
                .usize("worker", *worker)
                .str("model", model)
                .str("dataset", dataset)
                .str("noise", noise),
            Event::CellEnd { cell, worker, model, wall_ms, failures } => obj
                .usize("cell", *cell)
                .usize("worker", *worker)
                .str("model", model)
                .u64("wall_ms", *wall_ms)
                .usize("failures", *failures),
            Event::WorkerEnd { worker, cells, busy_ms } => {
                obj.usize("worker", *worker).usize("cells", *cells).u64("busy_ms", *busy_ms)
            }
            Event::RunFailure { model, run, seed, error } => obj
                .str("model", model)
                .usize("run", *run)
                .u64("seed", *seed)
                .str("error", error),
            Event::KernelCounters { scope, launches, parallel_launches, busy_ns } => obj
                .str("scope", scope)
                .u64("launches", *launches)
                .u64("parallel_launches", *parallel_launches)
                .u64("busy_ns", *busy_ns),
            Event::QueueDepth { depth, capacity } => {
                obj.usize("depth", *depth).usize("capacity", *capacity)
            }
            Event::BatchFlushed { worker, rows, padded_len, wall_us, model } => obj
                .usize("worker", *worker)
                .usize("rows", *rows)
                .usize("padded_len", *padded_len)
                .u64("wall_us", *wall_us)
                .str("model", model),
            Event::RequestDone { request, sessions, latency_us, model } => obj
                .u64("request", *request)
                .usize("sessions", *sessions)
                .u64("latency_us", *latency_us)
                .str("model", model),
            Event::RequestExpired { request, model, waited_us } => obj
                .u64("request", *request)
                .str("model", model)
                .u64("waited_us", *waited_us),
            Event::ServePanic { worker, model, detail } => obj
                .usize("worker", *worker)
                .str("model", model)
                .str("detail", detail),
            Event::HttpRequest { tenant, method, path, status, latency_us } => obj
                .str("tenant", tenant)
                .str("method", method)
                .str("path", path)
                .u64("status", u64::from(*status))
                .u64("latency_us", *latency_us),
            Event::ConnOpened { active } => obj.usize("active", *active),
            Event::ConnClosed { requests, reason } => {
                obj.u64("requests", *requests).str("reason", reason)
            }
            Event::GatewayShed { reason } => obj.str("reason", reason),
            Event::SwapStart { model, version } => {
                obj.str("model", model).u64("version", *version)
            }
            Event::SwapCommit { model, version, prior } => {
                obj.str("model", model).u64("version", *version).opt_u64("prior", *prior)
            }
            Event::SwapRollback { model, version, active, reason } => obj
                .str("model", model)
                .u64("version", *version)
                .opt_u64("active", *active)
                .str("reason", reason),
            Event::Confidence { stage, count, sum, buckets } => obj
                .str("stage", stage)
                .u64("count", *count)
                .f64("sum", *sum)
                .u64_array("buckets", buckets),
            Event::MetricsReport { scope, snapshot } => {
                obj.str("scope", scope).str("snapshot", snapshot)
            }
            Event::ArtifactWritten { path } => obj.str("path", path),
            Event::Message { text } => obj.str("text", text),
        }
    }
}
