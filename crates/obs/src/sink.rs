//! Recorder implementations: a thread-safe JSONL file sink, a no-op null
//! sink, an in-memory sink for tests, and a fan-out tee.

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Consumer of telemetry [`Event`]s.
///
/// Implementations must be thread-safe: training loops, sweep workers, and
/// kernel instrumentation all share one recorder. `record` is best-effort —
/// it must never panic the training path over an I/O problem.
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);
    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Recorder that drops every event. Exists so call sites can hold a real
/// recorder object when telemetry is off; [`Obs::null`](crate::Obs::null)
/// is the cheaper everyday spelling.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Recorder for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Interior state of a [`JsonlSink`]: the writer and the line sequence
/// counter live behind one mutex so sequence numbers appear in the file in
/// strictly increasing order even under contention.
struct JsonlState {
    writer: Box<dyn Write + Send>,
    seq: u64,
}

/// Thread-safe JSONL sink: one event per line, each line a self-contained
/// JSON object carrying a monotonic `seq` number and a `t_ms` timestamp
/// (milliseconds since the sink was created, from a monotonic clock).
///
/// Lines are flushed as they are written so `tail -f RUN_*.jsonl` follows a
/// live run. Write errors are swallowed: telemetry is best-effort and must
/// never abort training.
pub struct JsonlSink {
    state: Mutex<JsonlState>,
    start: Instant,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path` and returns a sink writing
    /// to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(BufWriter::new(file)))
    }

    /// Wraps an arbitrary writer (used by tests with `Vec<u8>` buffers).
    pub fn from_writer(writer: impl Write + Send + 'static) -> Self {
        Self {
            state: Mutex::new(JsonlState { writer: Box::new(writer), seq: 0 }),
            start: Instant::now(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, JsonlState> {
        // A panicking writer thread must not silence every other thread's
        // telemetry; the state is a byte sink, so poisoning is harmless.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: &Event) {
        let t_ms = u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX);
        let mut state = self.lock();
        let line = event.to_json_line(state.seq, t_ms);
        state.seq += 1;
        // Best-effort: a full disk must not kill the run being observed.
        let _ = writeln!(state.writer, "{line}");
        let _ = state.writer.flush();
    }

    fn flush(&self) {
        let _ = self.lock().writer.flush();
    }
}

/// In-memory sink for tests: stores every event in arrival order.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Drains and returns all events recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).push(event.clone());
    }
}

/// Fan-out recorder: forwards every event (and flush) to each wrapped
/// recorder in order. Lets one producer feed a JSONL log, an in-memory
/// capture, and a metrics fold at the same time.
pub struct Tee {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl Tee {
    /// Wraps the given recorders. An empty list behaves like [`NullSink`].
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        Self { sinks }
    }
}

impl Recorder for Tee {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}
