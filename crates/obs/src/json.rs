//! Minimal JSON support for the telemetry stack: an append-only object
//! writer used to serialize [`Event`](crate::Event)s (and the metrics
//! snapshots built on top of them), a recursive-descent parser producing a
//! [`Value`] tree, and a validator proving emitted lines are well-formed.
//!
//! The stack is air-gapped, so this module hand-rolls the few pieces of
//! JSON it needs instead of pulling in a serializer. The writer only ever
//! produces the shapes this workspace emits: objects of strings, numbers,
//! `null`, arrays of unsigned integers, and nested pre-rendered fragments
//! (non-finite floats become `null`, which strict JSON requires). The
//! parser accepts any well-formed JSON value, so downstream tooling
//! (`clfd-report`) can read the JSONL streams back without a dependency.

use std::collections::BTreeMap;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Single-line JSON object builder. Keys are trusted (compile-time field
/// names); values are escaped.
///
/// Public so downstream crates (`clfd-metrics`) can emit snapshots that
/// match the event stream's encoding without hand-rolling escaping.
pub struct Obj {
    buf: String,
    first: bool,
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

impl Obj {
    /// Starts an empty object `{`.
    pub fn new() -> Self {
        Self { buf: String::from("{"), first: true }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a `usize` field.
    pub fn usize(self, k: &str, v: usize) -> Self {
        self.u64(k, v as u64)
    }

    /// Adds a float field; non-finite values become `null` (JSON has no
    /// NaN/Infinity literals).
    pub fn f32(self, k: &str, v: f32) -> Self {
        self.f64(k, f64::from(v))
    }

    /// Adds a double-precision float field; non-finite values become
    /// `null`.
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&v.to_string());
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds an optional float field (`None` → `null`).
    pub fn opt_f32(self, k: &str, v: Option<f32>) -> Self {
        match v {
            Some(v) => self.f32(k, v),
            None => {
                let mut s = self;
                s.key(k);
                s.buf.push_str("null");
                s
            }
        }
    }

    /// Adds an optional unsigned integer field (`None` → `null`).
    pub fn opt_u64(mut self, k: &str, v: Option<u64>) -> Self {
        self.key(k);
        match v {
            Some(v) => self.buf.push_str(&v.to_string()),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds an array of unsigned integers.
    pub fn u64_array(mut self, k: &str, vs: &[u64]) -> Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    /// Adds a pre-rendered JSON fragment verbatim (the caller vouches that
    /// `v` is itself well-formed JSON — e.g. another [`Obj::finish`]).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the single-line JSON string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value.
///
/// Numbers are held as `f64` (every number this stack emits fits: `u64`
/// sequence numbers stay exact up to 2^53, far beyond any event count, and
/// the accessors saturate rather than wrap beyond that).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64` (saturating at the bounds),
    /// if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `s` as exactly one well-formed JSON value (with optional
/// surrounding whitespace).
///
/// # Errors
/// Returns the byte offset and a message for the first syntax error.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut pos = 0;
    skip_ws(b, &mut pos);
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

/// Validates that `s` is exactly one well-formed JSON value (with optional
/// surrounding whitespace). Returns the byte offset and a message on the
/// first syntax error. Used by tests to assert the sink's output parses
/// under any strict JSON reader.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos).map(Value::Str),
        Some(b't') => literal(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => literal(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'n') => literal(b, pos, "null").map(|()| Value::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        let v = value(b, pos)?;
        map.insert(key, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let mut out = String::new();
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => push_escaped(&mut out, '"', pos),
                    Some(b'\\') => push_escaped(&mut out, '\\', pos),
                    Some(b'/') => push_escaped(&mut out, '/', pos),
                    Some(b'b') => push_escaped(&mut out, '\u{8}', pos),
                    Some(b'f') => push_escaped(&mut out, '\u{c}', pos),
                    Some(b'n') => push_escaped(&mut out, '\n', pos),
                    Some(b'r') => push_escaped(&mut out, '\r', pos),
                    Some(b't') => push_escaped(&mut out, '\t', pos),
                    Some(b'u') => {
                        *pos += 1;
                        let code = hex4(b, pos)?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let low = hex4(b, pos)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "unpaired surrogate at byte {pos}",
                                        pos = *pos
                                    ));
                                }
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                return Err(format!(
                                    "unpaired surrogate at byte {pos}",
                                    pos = *pos
                                ));
                            }
                        } else {
                            char::from_u32(code)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => {
                                return Err(format!(
                                    "invalid \\u escape at byte {pos}",
                                    pos = *pos
                                ))
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => {
                // Advance over one UTF-8 character (the input is a &str, so
                // boundaries are trustworthy).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| {
                    format!("invalid UTF-8 in string at byte {start}")
                })?);
            }
        }
    }
    Err("unterminated string".to_string())
}

fn push_escaped(out: &mut String, c: char, pos: &mut usize) {
    out.push(c);
    *pos += 1;
}

fn hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut code = 0u32;
    for _ in 0..4 {
        let Some(&d) = b.get(*pos) else {
            return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
        };
        let v = match d {
            b'0'..=b'9' => u32::from(d - b'0'),
            b'a'..=b'f' => u32::from(d - b'a') + 10,
            b'A'..=b'F' => u32::from(d - b'A') + 10,
            _ => return Err(format!("bad \\u escape at byte {pos}", pos = *pos)),
        };
        code = code * 16 + v;
        *pos += 1;
    }
    Ok(code)
}

fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> bool {
        let before = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > before
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number exponent at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| format!("bad number at byte {start}"))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_an_event_like_object() {
        let v = parse(
            "{\"seq\":3,\"t_ms\":12,\"type\":\"epoch_end\",\"loss\":1.25,\
             \"grad_norm\":null,\"ok\":true,\"buckets\":[1,2,3]}",
        )
        .unwrap();
        assert_eq!(v.get("seq").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("type").and_then(Value::as_str), Some("epoch_end"));
        assert_eq!(v.get("loss").and_then(Value::as_f64), Some(1.25));
        assert_eq!(v.get("grad_norm"), Some(&Value::Null));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let buckets: Vec<u64> = v
            .get("buckets")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(buckets, [1, 2, 3]);
    }

    #[test]
    fn parse_decodes_escapes_and_surrogate_pairs() {
        let v = parse("\"quote \\\" slash \\/ nl \\n u \\u00e9 pair \\ud83d\\ude00\"")
            .unwrap();
        assert_eq!(v.as_str(), Some("quote \" slash / nl \n u é pair 😀"));
        assert!(parse("\"\\ud800 lone\"").is_err());
    }

    #[test]
    fn obj_supports_f64_arrays_and_raw_nesting() {
        let inner = Obj::new().u64("count", 2).finish();
        let line = Obj::new()
            .f64("sum", 1.5)
            .f64("inf", f64::INFINITY)
            .u64_array("buckets", &[0, 4, 9])
            .raw("inner", &inner)
            .finish();
        validate(&line).unwrap();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("sum").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("inf"), Some(&Value::Null));
        assert_eq!(v.get("inner").and_then(|i| i.get("count")).and_then(Value::as_u64), Some(2));
    }
}
