//! Minimal JSON support for the telemetry sinks: an append-only object
//! writer used to serialize [`Event`](crate::Event)s, and a dependency-free
//! validator used by tests to prove every emitted line is well-formed.
//!
//! The stack is air-gapped, so this module hand-rolls the few pieces of
//! JSON it needs instead of pulling in a serializer. Only the event shapes
//! defined in this crate are ever written: flat objects of strings,
//! unsigned integers, and floats (non-finite floats become `null`, which
//! strict JSON requires).

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Single-line JSON object builder. Keys are trusted (compile-time event
/// field names); values are escaped.
pub(crate) struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Starts an empty object `{`.
    pub(crate) fn new() -> Self {
        Self { buf: String::from("{"), first: true }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub(crate) fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub(crate) fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a `usize` field.
    pub(crate) fn usize(self, k: &str, v: usize) -> Self {
        self.u64(k, v as u64)
    }

    /// Adds a float field; non-finite values become `null` (JSON has no
    /// NaN/Infinity literals).
    pub(crate) fn f32(mut self, k: &str, v: f32) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&v.to_string());
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds an optional float field (`None` → `null`).
    pub(crate) fn opt_f32(self, k: &str, v: Option<f32>) -> Self {
        match v {
            Some(v) => self.f32(k, v),
            None => {
                let mut s = self;
                s.key(k);
                s.buf.push_str("null");
                s
            }
        }
    }

    /// Closes the object and returns the single-line JSON string.
    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Validates that `s` is exactly one well-formed JSON value (with optional
/// surrounding whitespace). Returns the byte offset and a message on the
/// first syntax error. Used by tests to assert the sink's output parses
/// under any strict JSON reader.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!(
                                    "bad \\u escape at byte {pos}",
                                    pos = *pos
                                ));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> bool {
        let before = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > before
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number exponent at byte {start}"));
        }
    }
    Ok(())
}
