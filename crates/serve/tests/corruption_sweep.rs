//! Corruption sweep: artifact and snapshot loading must survive arbitrary
//! file damage — truncation at any offset, bit flips, byte substitutions,
//! non-UTF-8 injection — with a typed error or a still-valid decode, and
//! **never** a panic. This is the load-path half of the registry's
//! zero-downtime story: a corrupt candidate file must be rejectable while
//! the previous model keeps serving.

#![allow(missing_docs)]

use clfd::prelude::*;
use clfd::{ClfdSnapshot, CorrectorSnapshot};
use clfd_data::session::Session;
use clfd_nn::snapshot::Snapshot;
use clfd_serve::InferenceArtifact;
use clfd_tensor::Matrix;

const TINY_VOCAB: usize = 6;

/// Hand-packed corrector-shaped snapshot — no training, so the sweep over
/// hundreds of mutations stays fast.
fn tiny_snapshot() -> (ClfdSnapshot, ClfdConfig) {
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let (dim, hid) = (cfg.embed_dim, cfg.hidden);
    let wave = |scale: f32| move |r: usize, c: usize| ((r * 13 + c * 7) as f32 * scale).sin();
    let mut encoder = Vec::new();
    for layer in 0..cfg.lstm_layers {
        let in_dim = if layer == 0 { dim } else { hid };
        encoder.push(Matrix::from_fn(in_dim, 4 * hid, wave(0.11 + layer as f32)));
        encoder.push(Matrix::from_fn(hid, 4 * hid, wave(0.07 + layer as f32)));
        encoder.push(Matrix::from_fn(1, 4 * hid, wave(0.05)));
    }
    let snapshot = ClfdSnapshot {
        embeddings: Snapshot { values: vec![Matrix::from_fn(TINY_VOCAB, dim, wave(0.19))] },
        corrector: Some(CorrectorSnapshot {
            encoder: Snapshot { values: encoder },
            head: Snapshot {
                values: vec![
                    Matrix::from_fn(hid, hid, wave(0.03)),
                    Matrix::zeros(1, hid),
                    Matrix::from_fn(hid, 2, wave(0.23)),
                    Matrix::zeros(1, 2),
                ],
            },
        }),
        detector: None,
    };
    (snapshot, cfg)
}

fn tiny_artifact() -> InferenceArtifact {
    let (snapshot, cfg) = tiny_snapshot();
    InferenceArtifact::from_snapshot(&snapshot, cfg).expect("hand-packed snapshot freezes")
}

/// Deterministic xorshift so the sweep is reproducible without a rand
/// dependency in the test.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Every way this sweep damages a byte buffer.
fn mutate(bytes: &[u8], rng: &mut XorShift) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.below(5) {
        // Truncate at a random offset (including 0: an empty file).
        0 => out.truncate(rng.below(bytes.len() + 1)),
        // Flip one bit.
        1 => {
            let i = rng.below(out.len());
            out[i] ^= 1 << rng.below(8);
        }
        // Replace a byte with an arbitrary value (may break UTF-8).
        2 => {
            let i = rng.below(out.len());
            out[i] = (rng.next() & 0xFF) as u8;
        }
        // Stomp a run of bytes with 0xFF (continuation-byte garbage).
        3 => {
            let i = rng.below(out.len());
            let run = 1 + rng.below(16.min(out.len() - i));
            out[i..i + run].fill(0xFF);
        }
        // Drop a chunk from the middle (structurally unbalanced JSON).
        _ => {
            let i = rng.below(out.len());
            let run = 1 + rng.below(64.min(out.len() - i));
            out.drain(i..i + run);
        }
    }
    out
}

#[test]
fn corrupted_artifact_files_never_panic_the_loader() {
    let artifact = tiny_artifact();
    let bytes = artifact.to_json().into_bytes();
    let probe = Session { activities: vec![0, 1, 2], day: 0 };
    let mut rng = XorShift(0x5DEECE66D);
    let mut rejected = 0u32;
    for _ in 0..400 {
        let damaged = mutate(&bytes, &mut rng);
        match InferenceArtifact::from_json_bytes(&damaged) {
            // A mutation can land in a float's digits and still decode; a
            // decoded artifact must be fully servable (a typed session
            // rejection — e.g. the vocabulary shrank — is also fine; only
            // a panic is a failure).
            Ok(loaded) => {
                if loaded.validate_session(&probe).is_ok() {
                    let _ = loaded.predict(&[&probe]);
                }
            }
            Err(e) => {
                rejected += 1;
                assert!(!e.to_string().is_empty(), "error must describe the damage");
            }
        }
    }
    // The sweep is only meaningful if damage is actually being caught.
    // (Not every mutation is fatal — a flip inside a float's digits can
    // still be valid JSON — but most damage must be.)
    assert!(rejected > 200, "only {rejected}/400 mutations rejected — mutator too gentle");
}

#[test]
fn truncation_at_every_prefix_is_rejected_cleanly() {
    let bytes = tiny_artifact().to_json().into_bytes();
    // Dense scan of short prefixes plus a stride over the rest: truncated
    // writes (torn copies, full disks) land at arbitrary offsets.
    for len in (0..bytes.len().min(64)).chain((64..bytes.len()).step_by(97)) {
        let err = InferenceArtifact::from_json_bytes(&bytes[..len])
            .expect_err("a strict prefix of a JSON document cannot be valid");
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn corrupted_pipeline_snapshots_never_panic_the_loader() {
    let (snapshot, _) = tiny_snapshot();
    let bytes = snapshot.to_json().into_bytes();
    let mut rng = XorShift(0xB5297A4D);
    let mut rejected = 0u32;
    for _ in 0..200 {
        let damaged = mutate(&bytes, &mut rng);
        match ClfdSnapshot::from_json_bytes(&damaged) {
            Ok(_) => {}
            Err(e) => {
                rejected += 1;
                assert!(!e.to_string().is_empty());
            }
        }
    }
    assert!(rejected > 100, "only {rejected}/200 mutations rejected — mutator too gentle");
}
