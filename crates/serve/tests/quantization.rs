//! Quantized-serving guarantees: a quantized artifact survives a JSON
//! round trip bit-identically, passes the accuracy-delta gate against the
//! f32 artifact it was quantized from, is **rejected** by that gate once
//! corrupted, and serves through the engine under an explicit
//! [`EngineConfig::precision`] / kernel policy.

#![allow(missing_docs)]

use clfd::prelude::*;
use clfd_data::noise::NoiseModel;
use clfd_data::session::DatasetKind;
use clfd_serve::{
    Engine, EngineConfig, InferenceArtifact, QuantGate, QuantMatrix, QuantizedArtifact,
    ServableArtifact, ServeError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One trained f32 artifact shared by every test in this suite (training
/// dominates the suite's wall time; the quantization paths under test are
/// cheap).
fn frozen() -> &'static (InferenceArtifact, SplitCorpus) {
    static FROZEN: OnceLock<(InferenceArtifact, SplitCorpus)> = OnceLock::new();
    FROZEN.get_or_init(|| {
        let split = DatasetKind::Cert.generate(Preset::Smoke, 23);
        let mut rng = StdRng::seed_from_u64(23 ^ 0xA5A5);
        let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&split.train_labels(), &mut rng);
        let model = TrainedClfd::builder()
            .preset(Preset::Smoke)
            .seed(23)
            .fit(&split, &noisy);
        let artifact = InferenceArtifact::freeze(&model).expect("trained model freezes");
        (artifact, split)
    })
}

fn test_sessions(split: &SplitCorpus) -> Vec<&Session> {
    split.test.iter().map(|&i| &split.corpus.sessions[i]).collect()
}

fn assert_bit_identical(a: &[Prediction], b: &[Prediction], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.label, y.label, "{context}: label drift at {i}");
        assert_eq!(
            x.malicious_score.to_bits(),
            y.malicious_score.to_bits(),
            "{context}: score drift at {i}"
        );
        assert_eq!(
            x.confidence.to_bits(),
            y.confidence.to_bits(),
            "{context}: confidence drift at {i}"
        );
    }
}

#[test]
fn quantized_artifacts_pass_the_gate_and_round_trip_bit_identically() {
    let (artifact, split) = frozen();
    let sessions = test_sessions(split);
    for precision in [Precision::Int8, Precision::F16] {
        let quantized = artifact.quantize(precision).expect("quantizes");
        assert_eq!(quantized.precision(), precision);
        // Quantization shrinks weight storage by the promised factor.
        let f32_bytes = 4 * quantized.weight_bytes()
            / match precision {
                Precision::Int8 => 1,
                Precision::F16 => 2,
                Precision::F32 => unreachable!(),
            };
        assert!(quantized.weight_bytes() < f32_bytes, "{precision}: no size win");

        // A real trained model quantizes within the default drift budget.
        let report = quantized
            .gate_against(artifact, &QuantGate::default())
            .unwrap_or_else(|e| panic!("{precision} candidate failed the gate: {e}"));
        assert_eq!(report.probes, QuantGate::default().probes);

        // JSON round trip: the payload is lossless, so the rebuilt runtime
        // scores bit-identically to the original quantized artifact.
        let thawed = QuantizedArtifact::from_json(&quantized.to_json()).expect("round trip");
        assert_eq!(thawed, quantized);
        assert_bit_identical(
            &thawed.predict(&sessions),
            &quantized.predict(&sessions),
            &format!("{precision}/round-trip"),
        );

        // The servable wrapper sniffs the quantized wire format.
        let servable = ServableArtifact::from_json_bytes(quantized.to_json().as_bytes())
            .expect("servable load");
        assert_eq!(servable.precision(), precision);
        assert_bit_identical(
            &servable.predict(&sessions),
            &quantized.predict(&sessions),
            &format!("{precision}/servable"),
        );
    }
}

#[test]
fn the_gate_rejects_a_deliberately_corrupted_quantized_model() {
    let (artifact, _) = frozen();
    let quantized = artifact.quantize(Precision::Int8).expect("quantizes");

    // Corrupt the candidate's encoder: blow up every LSTM row's
    // quantization step so the dequantized weights are garbage while the
    // payload stays structurally valid (shapes and buffer lengths intact).
    let mut parts = quantized.parts().clone();
    for layer in &mut parts.lstm {
        for m in [&mut layer.wx, &mut layer.wh] {
            if let QuantMatrix::Int8 { scale, .. } = m {
                for s in scale.iter_mut() {
                    *s = *s * 40.0 + 1.0;
                }
            }
        }
    }
    let corrupted = QuantizedArtifact::from_parts(parts)
        .expect("corruption is structurally valid — only the gate can catch it");
    let err = corrupted
        .gate_against(artifact, &QuantGate::default())
        .expect_err("corrupted candidate must be rejected");
    assert!(
        matches!(err, ServeError::QuantizationRejected(_)),
        "unexpected rejection: {err}"
    );
    assert!(err.to_string().contains("exceeds budget"), "uninformative rejection: {err}");

    // The same corruption through the engine constructor: typed error from
    // try-new-style admission (FixedArtifact::quantized), never a panic.
    let tight = QuantGate { probes: 64, max_disagreement: 0.0, max_score_delta: 0.0 };
    assert!(matches!(
        clfd_serve::FixedArtifact::quantized(artifact.clone(), Precision::Int8, &tight),
        Err(ServeError::QuantizationRejected(_))
    ));
}

#[test]
fn engine_serves_a_gated_quantized_artifact_with_an_explicit_kernel_policy() {
    let (artifact, split) = frozen();
    let sessions = test_sessions(split);
    let quantized = artifact.quantize(Precision::Int8).expect("quantizes");
    let expected = quantized.predict(&sessions);

    let cfg = EngineConfig {
        precision: Precision::Int8,
        kernel_policy: Some(KernelPolicy::serial()),
        ..EngineConfig::deterministic()
    };
    let engine = Engine::try_new(artifact.clone(), cfg).expect("gate admits the artifact");
    assert_eq!(engine.artifact().precision(), Precision::Int8);
    let served = engine.score_batch(&sessions).expect("engine scores");
    assert_bit_identical(&served, &expected, "engine/int8");
}
