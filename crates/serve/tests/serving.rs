//! End-to-end serving guarantees: frozen artifacts and the micro-batching
//! engine must score **bit-identically** to the live pipeline's
//! `predict_sessions`, survive a JSON round trip unchanged, preserve
//! per-submitter result identity under thread contention, and shed load
//! with a typed error when the queue fills.

#![allow(missing_docs)]

use clfd::prelude::*;
use clfd::{CorrectorSnapshot, ClfdSnapshot};
use clfd_data::noise::NoiseModel;
use clfd_data::session::DatasetKind;
use clfd_nn::snapshot::Snapshot;
use clfd_serve::{Engine, EngineConfig, InferenceArtifact, ServeError};
use clfd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train(kind: DatasetKind, ablation: Ablation, seed: u64) -> (TrainedClfd, SplitCorpus) {
    let split = kind.generate(Preset::Smoke, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
    let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&split.train_labels(), &mut rng);
    let model = TrainedClfd::builder()
        .preset(Preset::Smoke)
        .ablation(ablation)
        .seed(seed)
        .fit(&split, &noisy);
    (model, split)
}

fn test_sessions(split: &SplitCorpus) -> Vec<&Session> {
    split.test.iter().map(|&i| &split.corpus.sessions[i]).collect()
}

fn assert_bit_identical(a: &[Prediction], b: &[Prediction], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.label, y.label, "{context}: label drift at {i}");
        assert_eq!(
            x.malicious_score.to_bits(),
            y.malicious_score.to_bits(),
            "{context}: score drift at {i}"
        );
        assert_eq!(
            x.confidence.to_bits(),
            y.confidence.to_bits(),
            "{context}: confidence drift at {i}"
        );
    }
}

/// Freezes `model`, scores via the raw artifact, a JSON-round-tripped
/// artifact, and the deterministic engine, and demands all three match
/// `predict_sessions` bit for bit.
fn exercise(model: &TrainedClfd, split: &SplitCorpus, context: &str) {
    let sessions = test_sessions(split);
    let expected = model.predict_sessions(&sessions);

    let artifact = InferenceArtifact::freeze(model).expect("trained model freezes");
    assert_bit_identical(&artifact.predict(&sessions), &expected, context);

    let thawed = InferenceArtifact::from_json(&artifact.to_json()).expect("round trip");
    assert_bit_identical(&thawed.predict(&sessions), &expected, context);

    let engine = Engine::new(artifact, EngineConfig::deterministic());
    let served = engine.score_batch(&sessions).expect("engine scores");
    assert_bit_identical(&served, &expected, context);

    // The generic Scorer surface routes through the same paths.
    let scorers: Vec<&dyn Scorer> = vec![model, &engine];
    for scorer in scorers {
        assert_bit_identical(&scorer.score(&sessions), &expected, context);
    }
}

#[test]
fn artifact_is_bit_identical_on_cert_with_classifier_head() {
    let (model, split) = train(DatasetKind::Cert, Ablation::full(), 11);
    exercise(&model, &split, "cert/full");
}

#[test]
fn artifact_is_bit_identical_on_wikipedia_with_corrector_head() {
    let (model, split) = train(DatasetKind::UmdWikipedia, Ablation::without_fraud_detector(), 7);
    exercise(&model, &split, "wiki/corrector");
}

#[test]
fn artifact_is_bit_identical_on_openstack_with_centroid_head() {
    let (model, split) = train(DatasetKind::OpenStack, Ablation::without_classifier(), 5);
    exercise(&model, &split, "openstack/centroids");
}

const TINY_VOCAB: usize = 6;

/// A hand-packed corrector-shaped artifact: no training involved, so the
/// queue-mechanics tests stay fast.
fn tiny_artifact() -> InferenceArtifact {
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let (dim, hid) = (cfg.embed_dim, cfg.hidden);
    let wave = |scale: f32| move |r: usize, c: usize| ((r * 13 + c * 7) as f32 * scale).sin();
    let mut encoder = Vec::new();
    for layer in 0..cfg.lstm_layers {
        let in_dim = if layer == 0 { dim } else { hid };
        encoder.push(Matrix::from_fn(in_dim, 4 * hid, wave(0.11 + layer as f32)));
        encoder.push(Matrix::from_fn(hid, 4 * hid, wave(0.07 + layer as f32)));
        encoder.push(Matrix::from_fn(1, 4 * hid, wave(0.05)));
    }
    let snapshot = ClfdSnapshot {
        embeddings: Snapshot { values: vec![Matrix::from_fn(TINY_VOCAB, dim, wave(0.19))] },
        corrector: Some(CorrectorSnapshot {
            encoder: Snapshot { values: encoder },
            head: Snapshot {
                values: vec![
                    Matrix::from_fn(hid, hid, wave(0.03)),
                    Matrix::zeros(1, hid),
                    Matrix::from_fn(hid, 2, wave(0.23)),
                    Matrix::zeros(1, 2),
                ],
            },
        }),
        detector: None,
    };
    InferenceArtifact::from_snapshot(&snapshot, cfg).expect("hand-packed snapshot freezes")
}

fn synthetic_sessions(n: usize) -> Vec<Session> {
    (0..n)
        .map(|i| Session {
            activities: (0..=(i % 9)).map(|j| ((i * 5 + j * 3) % TINY_VOCAB) as u32).collect(),
            day: i as u32,
        })
        .collect()
}

#[test]
fn contention_preserves_per_submitter_order_and_identity() {
    let artifact = tiny_artifact();
    let sessions = synthetic_sessions(24);
    // Serial per-session reference: what any batching must reproduce.
    let expected: Vec<Prediction> =
        sessions.iter().map(|s| artifact.predict(&[s]).remove(0)).collect();
    let engine = Engine::new(
        artifact,
        EngineConfig { max_batch: 4, queue_capacity: 16, workers: 3, ..EngineConfig::default() },
    );

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for submitter in 0..4 {
            let engine = &engine;
            let sessions = &sessions;
            handles.push(scope.spawn(move || {
                // Each submitter walks the sessions at its own stride so the
                // workers see interleaved, differently-ordered traffic.
                let order: Vec<usize> = (0..sessions.len())
                    .map(|i| (i * 7 + submitter * 3) % sessions.len())
                    .collect();
                let tickets: Vec<_> = order
                    .iter()
                    .map(|&i| engine.submit(&sessions[i]).expect("submit"))
                    .collect();
                let results: Vec<Prediction> =
                    tickets.into_iter().map(|t| t.wait().expect("answered")).collect();
                (order, results)
            }));
        }
        for handle in handles {
            let (order, results) = handle.join().expect("submitter thread");
            // Results come back in each submitter's own submission order and
            // match the serial reference bit for bit, regardless of how the
            // engine happened to compose its batches.
            for (&i, got) in order.iter().zip(&results) {
                assert_bit_identical(
                    std::slice::from_ref(got),
                    std::slice::from_ref(&expected[i]),
                    "contention",
                );
            }
        }
    });
}

#[test]
fn full_queue_sheds_load_with_a_typed_error() {
    let artifact = tiny_artifact();
    let session = Session { activities: vec![0, 1, 2], day: 0 };
    let engine = Engine::new(
        artifact,
        EngineConfig { max_batch: 1, queue_capacity: 2, workers: 1, ..EngineConfig::default() },
    );
    let mut tickets = Vec::new();
    let mut overloaded = false;
    for _ in 0..500 {
        match engine.try_submit(&session) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                overloaded = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(overloaded, "a capacity-2 queue must eventually shed load");
    // Accepted requests still complete.
    for t in tickets {
        t.wait().expect("accepted requests are answered");
    }
}

#[test]
fn engine_folds_events_into_metrics_and_flushes_periodic_reports() {
    use clfd_metrics::{names, EventFold, Registry};
    use clfd_obs::{Event, MemorySink, Obs};
    use std::sync::Arc;

    let artifact = tiny_artifact();
    let sessions = synthetic_sessions(32);
    let registry = Arc::new(Registry::new());
    let capture = Arc::new(MemorySink::new());
    // One obs handle: aggregates into the registry, tees raw events into
    // the capture (standing in for the JSONL file).
    let obs = Obs::new(EventFold::tee(registry.clone(), capture.clone()));
    let engine = Engine::with_metrics(
        artifact,
        EngineConfig { metrics_every: Some(8), ..EngineConfig::deterministic() },
        obs,
        registry.clone(),
    );
    let refs: Vec<&Session> = sessions.iter().collect();
    let served = engine.score_batch(&refs).expect("engine scores");
    assert_eq!(served.len(), 32);
    drop(engine);

    let model: &[(&str, &str)] = &[("model", clfd_serve::FIXED_MODEL_LABEL)];
    assert_eq!(registry.counter(names::SERVE_REQUESTS_TOTAL, "", model).get(), 32);
    let latency = registry.histogram(
        names::SERVE_REQUEST_LATENCY_US,
        "",
        model,
        names::latency_us_buckets(),
    );
    assert_eq!(latency.count(), 32);

    let reports: Vec<(String, String)> = capture
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::MetricsReport { scope, snapshot } => Some((scope, snapshot)),
            _ => None,
        })
        .collect();
    assert_eq!(reports.len(), 4, "32 requests / metrics_every=8");
    assert_eq!(reports[0].0, "serve/8");
    assert_eq!(reports[3].0, "serve/32");
    for (scope, snapshot) in &reports {
        clfd_obs::json::validate(snapshot)
            .unwrap_or_else(|e| panic!("snapshot {scope} is invalid JSON: {e}"));
    }
    // The deterministic engine answers in order, and each RequestDone is
    // folded before the flush that counts it — so the serve/8 snapshot
    // holds exactly 8 requests.
    let v = clfd_obs::json::parse(&reports[0].1).expect("parsed");
    let requests_total = v
        .get("families")
        .and_then(|f| f.as_array())
        .and_then(|fams| {
            fams.iter().find(|f| {
                f.get("name").and_then(|n| n.as_str()) == Some(names::SERVE_REQUESTS_TOTAL)
            })
        })
        .and_then(|f| f.get("series"))
        .and_then(|s| s.as_array())
        .and_then(|s| s.first())
        .and_then(|s| s.get("counter"))
        .and_then(|c| c.as_u64());
    assert_eq!(requests_total, Some(8));
}

#[test]
fn expired_requests_are_shed_with_event_and_metric() {
    use clfd_metrics::{names, EventFold, Registry};
    use clfd_obs::{Event, MemorySink, Obs};
    use std::sync::Arc;
    use std::time::Duration;

    let registry = Arc::new(Registry::new());
    let capture = Arc::new(MemorySink::new());
    let obs = Obs::new(EventFold::tee(registry.clone(), capture.clone()));
    let engine = Engine::with_obs(tiny_artifact(), EngineConfig::deterministic(), obs);
    let session = Session { activities: vec![0, 1, 2], day: 0 };

    // A zero timeout means the deadline has passed by the time any worker
    // drains the request: it must be shed, not scored.
    let ticket = engine.submit_with_deadline(&session, Duration::ZERO).expect("valid session");
    assert_eq!(ticket.wait().err(), Some(ServeError::DeadlineExceeded));
    // A request with generous headroom still completes.
    let ticket = engine.submit_with_deadline(&session, Duration::from_secs(60)).expect("valid");
    ticket.wait().expect("in-deadline request is scored");
    drop(engine); // joins workers: all events are flushed

    let expired: Vec<_> = capture
        .events()
        .into_iter()
        .filter(|e| matches!(e, Event::RequestExpired { .. }))
        .collect();
    assert_eq!(expired.len(), 1, "exactly the zero-deadline request expires");
    assert_eq!(
        registry
            .counter(
                names::SERVE_DEADLINE_EXCEEDED_TOTAL,
                "",
                &[("model", clfd_serve::FIXED_MODEL_LABEL)]
            )
            .get(),
        1
    );
}

/// An [`ArtifactSource`] that wedges the worker inside `lease` — standing
/// in for any stall in the scoring path — so the client-side deadline in
/// `Ticket::wait` is the only thing standing between the caller and a
/// hang.
struct StallingSource {
    inner: clfd_serve::FixedArtifact,
    stall: std::time::Duration,
}

impl clfd_serve::ArtifactSource for StallingSource {
    fn lease(&self) -> clfd_serve::ArtifactLease {
        std::thread::sleep(self.stall);
        self.inner.lease()
    }
}

#[test]
fn stalled_worker_cannot_wedge_a_deadline_caller() {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // The stall dwarfs the caller-side bound so the test discriminates
    // even on a heavily loaded machine: a caller wedged behind the worker
    // takes the full stall, an unwedged one returns at its 100ms deadline
    // with 1150ms of scheduling headroom before the assertion trips.
    let source = Arc::new(StallingSource {
        inner: clfd_serve::FixedArtifact::new(tiny_artifact()),
        stall: Duration::from_millis(2500),
    });
    let engine = Engine::from_source(
        source,
        EngineConfig::deterministic(),
        clfd_obs::Obs::null(),
        None,
    );
    let session = Session { activities: vec![0, 1, 2], day: 0 };
    let clock = Instant::now();
    let ticket = engine.submit_with_deadline(&session, Duration::from_millis(100)).expect("valid");
    assert_eq!(ticket.wait().err(), Some(ServeError::DeadlineExceeded));
    assert!(
        clock.elapsed() < Duration::from_millis(1250),
        "caller returned before the stalled worker did"
    );
}

/// A source that panics on its first lease, then recovers: the worker must
/// answer the affected batch with a typed error and keep serving.
struct PanicOnceSource {
    inner: clfd_serve::FixedArtifact,
    panicked: std::sync::atomic::AtomicBool,
}

impl clfd_serve::ArtifactSource for PanicOnceSource {
    fn lease(&self) -> clfd_serve::ArtifactLease {
        if !self.panicked.swap(true, std::sync::atomic::Ordering::SeqCst) {
            panic!("injected lease failure");
        }
        self.inner.lease()
    }
}

#[test]
fn scoring_path_panic_is_isolated_and_the_worker_survives() {
    use clfd_obs::{Event, MemorySink, Obs};
    use std::sync::Arc;

    let capture = Arc::new(MemorySink::new());
    let source = Arc::new(PanicOnceSource {
        inner: clfd_serve::FixedArtifact::new(tiny_artifact()),
        panicked: std::sync::atomic::AtomicBool::new(false),
    });
    let engine = Engine::from_source(
        source,
        EngineConfig::deterministic(),
        Obs::from_arc(capture.clone() as Arc<dyn clfd_obs::Recorder>),
        None,
    );
    let session = Session { activities: vec![0, 1, 2], day: 0 };
    // First request hits the injected panic and comes back typed.
    match engine.submit(&session).expect("valid").wait() {
        Err(ServeError::Internal(detail)) => {
            assert!(detail.contains("injected lease failure"), "{detail}");
        }
        other => panic!("expected Internal error, got {other:?}"),
    }
    // The worker survived: the next request is scored normally.
    engine.submit(&session).expect("valid").wait().expect("worker kept serving");
    drop(engine);
    assert!(
        capture.events().iter().any(|e| matches!(e, Event::ServePanic { .. })),
        "the caught panic is observable"
    );
}

#[test]
fn engine_rejects_invalid_sessions_at_submit_time() {
    let artifact = tiny_artifact();
    let vocab = artifact.vocab();
    let engine = Engine::new(artifact, EngineConfig::deterministic());
    let empty = Session { activities: vec![], day: 0 };
    assert_eq!(engine.submit(&empty).err(), Some(ServeError::EmptySession));
    let oov = Session { activities: vec![u32::MAX], day: 0 };
    assert_eq!(
        engine.try_submit(&oov).err(),
        Some(ServeError::UnknownToken { token: u32::MAX, vocab })
    );
}
