//! Where the engine gets its model from.
//!
//! PR 4's engine owned one frozen [`InferenceArtifact`] forever; swapping
//! models meant tearing the engine down. This module splits *scheduling*
//! from *scoring*: the engine now asks an [`ArtifactSource`] for an
//! [`ArtifactLease`] once per drained batch, scores the whole batch with
//! that lease, and reports the outcome back through the lease's observer.
//! A source backed by an atomic slot (the `clfd-registry` crate's
//! `ModelRegistry`) can then hot-swap artifacts under live traffic with
//! **batch granularity**: every batch is scored by exactly one artifact,
//! so responses are bit-identical to one of the installed versions and
//! never a blend.
//!
//! [`FixedArtifact`] is the degenerate source — one artifact, forever —
//! and keeps the PR-4 `Engine::new(artifact, cfg)` constructors working
//! unchanged.

use crate::artifact::InferenceArtifact;
use crate::error::ServeError;
use crate::quant::{QuantGate, ServableArtifact};
use clfd::Precision;
use std::sync::Arc;

/// Model label used by [`FixedArtifact`] (single-model engines) in metric
/// labels and serve events.
pub const FIXED_MODEL_LABEL: &str = "default";

/// Feedback channel from the engine back to whatever issued a lease.
///
/// The engine calls [`LeaseObserver::observe`] once per scored request
/// with the *scoring* cost (batch forward wall time divided across the
/// batch's rows — deliberately excluding queue wait, which is shared
/// state no single model version is responsible for) and whether the
/// request was answered successfully. A registry's canary controller sums
/// these into error-rate and latency windows and decides promote vs.
/// rollback.
pub trait LeaseObserver: Send + Sync {
    /// Records one scored request routed through the leased artifact.
    fn observe(&self, model: &str, score_us: u64, ok: bool);
}

/// One batch's claim on an artifact: the frozen model plus the label it
/// is known by in telemetry (`"default"`, or a registry's `"fraud@3"`).
#[derive(Clone)]
pub struct ArtifactLease {
    /// Telemetry label for the leased model (`model-id@version` for
    /// registry-backed sources).
    pub model: Arc<str>,
    /// The frozen artifact to score with — f32 or a gate-admitted
    /// quantized form; the engine scores both identically.
    pub artifact: Arc<ServableArtifact>,
    /// Optional feedback channel (canary accounting).
    pub observer: Option<Arc<dyn LeaseObserver>>,
}

impl ArtifactLease {
    /// A lease with no observer.
    pub fn new(model: impl Into<Arc<str>>, artifact: Arc<ServableArtifact>) -> Self {
        Self { model: model.into(), artifact, observer: None }
    }

    /// Attaches an observer (builder style).
    pub fn with_observer(mut self, observer: Arc<dyn LeaseObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Reports one scored request back to the lease issuer (no-op without
    /// an observer).
    pub fn observe(&self, score_us: u64, ok: bool) {
        if let Some(obs) = &self.observer {
            obs.observe(&self.model, score_us, ok);
        }
    }
}

impl std::fmt::Debug for ArtifactLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactLease")
            .field("model", &self.model)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

/// Hands out artifacts to the engine, one lease per drained batch.
///
/// Implementations must be cheap and non-blocking: `lease` sits on the
/// serving hot path. The engine treats a panic inside `lease` like a
/// panic inside scoring — the affected batch is answered with a typed
/// error and the worker keeps running — but a well-behaved source never
/// panics.
pub trait ArtifactSource: Send + Sync {
    /// The artifact the next batch should be scored with.
    fn lease(&self) -> ArtifactLease;

    /// A cheap artifact to validate sessions against at *submit* time,
    /// or `None` to defer all validation to scoring time.
    ///
    /// Unlike [`ArtifactSource::lease`], which only ever runs on worker
    /// threads (where stalls and panics are contained), this runs on the
    /// **caller's** thread inside `submit` — implementations must be
    /// non-blocking and panic-free, or return `None`. The hint is
    /// advisory: the worker re-validates every request against the
    /// actually-leased artifact before scoring, so a stale hint costs a
    /// late error on the ticket, never a wrong answer.
    fn validation_hint(&self) -> Option<Arc<ServableArtifact>> {
        None
    }
}

/// The single-model source: every lease is the same frozen artifact,
/// labeled [`FIXED_MODEL_LABEL`].
pub struct FixedArtifact {
    lease: ArtifactLease,
}

impl FixedArtifact {
    /// Wraps one f32 artifact.
    pub fn new(artifact: InferenceArtifact) -> Self {
        Self::servable(ServableArtifact::F32(artifact))
    }

    /// Wraps an artifact in either serving form.
    pub fn servable(artifact: ServableArtifact) -> Self {
        Self { lease: ArtifactLease::new(FIXED_MODEL_LABEL, Arc::new(artifact)) }
    }

    /// Quantizes `artifact` to `precision` and wraps the result, admitting
    /// it through the accuracy-delta gate against `artifact` itself.
    /// [`Precision::F32`] skips quantization (and the gate).
    ///
    /// # Errors
    /// Returns [`ServeError::QuantizationRejected`] when the quantized
    /// candidate drifts past the gate's budget.
    pub fn quantized(
        artifact: InferenceArtifact,
        precision: Precision,
        gate: &QuantGate,
    ) -> Result<Self, ServeError> {
        Ok(Self::servable(ServableArtifact::quantize_gated(artifact, precision, gate)?))
    }
}

impl ArtifactSource for FixedArtifact {
    fn lease(&self) -> ArtifactLease {
        self.lease.clone()
    }

    fn validation_hint(&self) -> Option<Arc<ServableArtifact>> {
        Some(Arc::clone(&self.lease.artifact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingObserver {
        calls: AtomicU64,
        errors: AtomicU64,
    }

    impl LeaseObserver for CountingObserver {
        fn observe(&self, _model: &str, _score_us: u64, ok: bool) {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if !ok {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn lease_observe_routes_to_the_observer() {
        let artifact = crate::artifact::InferenceArtifact::test_artifact();
        let observer = Arc::new(CountingObserver {
            calls: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let lease = ArtifactLease::new("m@1", Arc::new(ServableArtifact::F32(artifact)))
            .with_observer(observer.clone());
        lease.observe(10, true);
        lease.observe(20, false);
        assert_eq!(observer.calls.load(Ordering::Relaxed), 2);
        assert_eq!(observer.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fixed_source_hands_out_the_same_artifact() {
        let source = FixedArtifact::new(crate::artifact::InferenceArtifact::test_artifact());
        let a = source.lease();
        let b = source.lease();
        assert_eq!(&*a.model, FIXED_MODEL_LABEL);
        assert!(Arc::ptr_eq(&a.artifact, &b.artifact));
        assert!(a.observer.is_none());
    }
}
