//! Quantized serving artifacts and the accuracy-delta admission gate.
//!
//! [`InferenceArtifact::quantize`] shrinks a frozen f32 artifact into a
//! [`QuantizedArtifact`]: weight matrices stored per-row affine int8
//! (scale + zero-point per output row) or IEEE binary16, biases and
//! centroids kept in f32. Scoring always *accumulates* in f32 — on load
//! the quantized weights are dequantized once into an f32 runtime, plus a
//! fused layer-0 table (`embeddings · wx₀`, `vocab x 4·hidden`) that turns
//! the first LSTM layer's input projection into a row gather instead of a
//! per-timestep matmul. That fusion is where the quantized path's latency
//! win comes from; the quantization is where the artifact-size win comes
//! from.
//!
//! Quantization is lossy, so a quantized artifact is never admitted to an
//! engine or registry on faith: [`QuantizedArtifact::gate_against`] scores
//! deterministic probe sessions through both the candidate and the f32
//! reference and rejects the candidate
//! ([`ServeError::QuantizationRejected`]) when label disagreement or
//! malicious-score drift exceeds the [`QuantGate`] budget.
//!
//! [`ServableArtifact`] is the serving stack's closed sum of the two
//! artifact forms; engine leases, registry slots, and the gateway all hold
//! it so a quantized model drops into every serving surface unchanged.

use crate::artifact::{
    centroid_proba, predictions_from_proba, ArtifactHead, InferenceArtifact, PackedLinear,
    PackedLstmLayer, LEAKY_SLOPE, L2_EPS,
};
use crate::error::ServeError;
use clfd::api::Scorer;
use clfd::{ClfdConfig, Precision, Prediction};
use clfd_data::batch::batch_indices;
use clfd_data::session::Session;
use clfd_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Wire-format marker carried by every quantized artifact; doubles as the
/// sniff key [`ServableArtifact::from_json_bytes`] uses to route bytes.
pub const QUANT_SCHEME: &str = "clfd-quant-v1";

/// A weight matrix in its quantized storage form.
///
/// Dequantization is exact given the stored parameters, so a JSON round
/// trip reproduces the runtime bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantMatrix {
    /// Per-row affine int8: `w ≈ min[r] + scale[r] * (q + 128)`.
    Int8 {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Row-major quantized values.
        data: Vec<i8>,
        /// Per-row step size (`(max - min) / 255`; `0` for constant rows).
        scale: Vec<f32>,
        /// Per-row minimum (the affine zero point).
        min: Vec<f32>,
    },
    /// IEEE binary16 storage (round-to-nearest-even), f32 compute.
    F16 {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Row-major half-precision bit patterns.
        data: Vec<u16>,
    },
}

impl QuantMatrix {
    /// Quantizes `m` under `precision`.
    ///
    /// # Errors
    /// Returns [`ServeError::QuantizationRejected`] for
    /// [`Precision::F32`] — the f32 artifact *is* that precision.
    pub fn quantize(m: &Matrix, precision: Precision) -> Result<Self, ServeError> {
        match precision {
            Precision::F32 => Err(ServeError::QuantizationRejected(
                "f32 needs no quantized artifact; serve the InferenceArtifact directly".into(),
            )),
            Precision::F16 => Ok(Self::F16 {
                rows: m.rows(),
                cols: m.cols(),
                data: m.as_slice().iter().map(|&v| f32_to_f16_bits(v)).collect(),
            }),
            Precision::Int8 => {
                let (rows, cols) = m.shape();
                let mut data = Vec::with_capacity(rows * cols);
                let mut scale = Vec::with_capacity(rows);
                let mut min = Vec::with_capacity(rows);
                for r in 0..rows {
                    let row = m.row(r);
                    let mn = row.iter().copied().fold(f32::INFINITY, f32::min);
                    let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let s = if mx > mn { (mx - mn) / 255.0 } else { 0.0 };
                    scale.push(s);
                    min.push(if row.is_empty() { 0.0 } else { mn });
                    for &v in row {
                        let q = if s > 0.0 {
                            (((v - mn) / s).round() as i32 - 128).clamp(-128, 127)
                        } else {
                            -128
                        };
                        data.push(q as i8);
                    }
                }
                Ok(Self::Int8 { rows, cols, data, scale, min })
            }
        }
    }

    /// Reconstructs the f32 matrix this storage encodes.
    pub fn dequantize(&self) -> Matrix {
        match self {
            Self::Int8 { rows, cols, data, scale, min } => Matrix::from_fn(*rows, *cols, |r, c| {
                min[r] + scale[r] * (data[r * cols + c] as f32 + 128.0)
            }),
            Self::F16 { rows, cols, data } => {
                Matrix::from_fn(*rows, *cols, |r, c| f16_bits_to_f32(data[r * cols + c]))
            }
        }
    }

    /// Declared shape.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Self::Int8 { rows, cols, .. } | Self::F16 { rows, cols, .. } => (*rows, *cols),
        }
    }

    /// Bytes of weight storage (excluding per-row parameters).
    pub fn weight_bytes(&self) -> usize {
        match self {
            Self::Int8 { data, .. } => data.len(),
            Self::F16 { data, .. } => data.len() * 2,
        }
    }

    /// The storage precision of this matrix.
    pub fn precision(&self) -> Precision {
        match self {
            Self::Int8 { .. } => Precision::Int8,
            Self::F16 { .. } => Precision::F16,
        }
    }

    fn validate(&self, what: &str) -> Result<(), ServeError> {
        let err = |msg: String| Err(ServeError::Artifact(format!("{what}: {msg}")));
        match self {
            Self::Int8 { rows, cols, data, scale, min } => {
                if data.len() != rows * cols {
                    return err(format!(
                        "int8 buffer holds {} values for a {rows}x{cols} matrix",
                        data.len()
                    ));
                }
                if scale.len() != *rows || min.len() != *rows {
                    return err(format!(
                        "int8 row parameters hold {}/{} entries for {rows} rows",
                        scale.len(),
                        min.len()
                    ));
                }
                if scale.iter().chain(min).any(|v| !v.is_finite()) {
                    return err("non-finite quantization parameter".into());
                }
            }
            Self::F16 { rows, cols, data } => {
                if data.len() != rows * cols {
                    return err(format!(
                        "f16 buffer holds {} values for a {rows}x{cols} matrix",
                        data.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One LSTM layer with quantized weight matrices (bias stays f32 — it is
/// a single row and quantizing it saves nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantLstmLayer {
    /// Input weights, quantized.
    pub wx: QuantMatrix,
    /// Recurrent weights, quantized.
    pub wh: QuantMatrix,
    /// Bias, `1 x 4*hidden`, f32.
    pub b: Matrix,
}

/// The scoring head with quantized weight matrices; biases and centroids
/// stay f32 (single rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantHead {
    /// Two-layer FCNN classifier.
    Classifier {
        /// Hidden-layer weights, quantized.
        l1w: QuantMatrix,
        /// Hidden-layer bias, f32.
        l1b: Matrix,
        /// Output-layer weights, quantized.
        l2w: QuantMatrix,
        /// Output-layer bias, f32.
        l2b: Matrix,
    },
    /// Class centroids (f32; two rows, nothing to save).
    Centroids {
        /// Normal-class centroid, `1 x hidden`.
        normal: Matrix,
        /// Malicious-class centroid, `1 x hidden`.
        malicious: Matrix,
    },
}

/// The serializable body of a [`QuantizedArtifact`] — every field that
/// goes over the wire, and nothing derived. Public so tests (and tools)
/// can corrupt a candidate and prove the gate catches it; rebuild with
/// [`QuantizedArtifact::from_parts`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantParts {
    /// Always [`QUANT_SCHEME`]; checked on load.
    pub scheme: String,
    /// The storage precision of the weight matrices.
    pub precision: Precision,
    /// The hyper-parameters of the model this artifact froze.
    pub cfg: ClfdConfig,
    /// Embedding table, quantized.
    pub embeddings: QuantMatrix,
    /// LSTM stack, input layer first.
    pub lstm: Vec<QuantLstmLayer>,
    /// Scoring head.
    pub head: QuantHead,
}

/// Dequantized f32 compute state, rebuilt deterministically from
/// [`QuantParts`] on construction/load (never serialized).
#[derive(Debug, Clone)]
struct QuantRuntime {
    /// Fused layer-0 input projection: `dequant(embeddings) · dequant(wx₀)`,
    /// `vocab x 4*hidden`. Row `t` is token `t`'s layer-0 pre-activation
    /// contribution, making the first layer's input matmul a row gather.
    zx0: Matrix,
    /// Dequantized LSTM stack (layer 0's `wx` is carried but the fused
    /// table supersedes it at scoring time).
    lstm: Vec<PackedLstmLayer>,
    /// Dequantized scoring head.
    head: ArtifactHead,
}

/// A quantized serving artifact: compact storage, f32 accumulation,
/// admitted only through [`QuantizedArtifact::gate_against`].
///
/// Built by [`InferenceArtifact::quantize`], serialized with
/// [`QuantizedArtifact::to_json`], scored through [`Scorer`] exactly like
/// the f32 artifact.
#[derive(Debug, Clone)]
pub struct QuantizedArtifact {
    parts: QuantParts,
    runtime: QuantRuntime,
}

impl PartialEq for QuantizedArtifact {
    fn eq(&self, other: &Self) -> bool {
        // The runtime is a pure function of the parts.
        self.parts == other.parts
    }
}

impl InferenceArtifact {
    /// Quantizes this artifact's weight matrices to `precision`.
    ///
    /// The result scores *approximately* like `self`; run
    /// [`QuantizedArtifact::gate_against`] before serving it.
    ///
    /// # Errors
    /// Returns [`ServeError::QuantizationRejected`] for
    /// [`Precision::F32`].
    pub fn quantize(&self, precision: Precision) -> Result<QuantizedArtifact, ServeError> {
        let q = |m: &Matrix| QuantMatrix::quantize(m, precision);
        let head = match &self.head {
            ArtifactHead::Classifier { l1, l2 } => QuantHead::Classifier {
                l1w: q(&l1.w)?,
                l1b: l1.b.clone(),
                l2w: q(&l2.w)?,
                l2b: l2.b.clone(),
            },
            ArtifactHead::Centroids { normal, malicious } => QuantHead::Centroids {
                normal: normal.clone(),
                malicious: malicious.clone(),
            },
        };
        let parts = QuantParts {
            scheme: QUANT_SCHEME.to_string(),
            precision,
            cfg: self.cfg,
            embeddings: q(&self.embeddings)?,
            lstm: self
                .lstm
                .iter()
                .map(|l| {
                    Ok(QuantLstmLayer { wx: q(&l.wx)?, wh: q(&l.wh)?, b: l.b.clone() })
                })
                .collect::<Result<_, ServeError>>()?,
            head,
        };
        QuantizedArtifact::from_parts(parts)
    }
}

impl QuantizedArtifact {
    /// Validates `parts` and builds the dequantized runtime (including the
    /// fused layer-0 table).
    ///
    /// # Errors
    /// Returns [`ServeError::Artifact`] on a structurally inconsistent
    /// body (wrong scheme, shape drift, buffer/shape mismatch).
    pub fn from_parts(parts: QuantParts) -> Result<Self, ServeError> {
        if parts.scheme != QUANT_SCHEME {
            return Err(ServeError::Artifact(format!(
                "unknown quantized-artifact scheme {:?} (expected {QUANT_SCHEME:?})",
                parts.scheme
            )));
        }
        parts.embeddings.validate("embedding table")?;
        for layer in &parts.lstm {
            layer.wx.validate("LSTM wx")?;
            layer.wh.validate("LSTM wh")?;
        }
        if let QuantHead::Classifier { l1w, l2w, .. } = &parts.head {
            l1w.validate("head l1 weights")?;
            l2w.validate("head l2 weights")?;
        }

        let lstm: Vec<PackedLstmLayer> = parts
            .lstm
            .iter()
            .map(|l| PackedLstmLayer {
                wx: l.wx.dequantize(),
                wh: l.wh.dequantize(),
                b: l.b.clone(),
            })
            .collect();
        let head = match &parts.head {
            QuantHead::Classifier { l1w, l1b, l2w, l2b } => ArtifactHead::Classifier {
                l1: PackedLinear { w: l1w.dequantize(), b: l1b.clone() },
                l2: PackedLinear { w: l2w.dequantize(), b: l2b.clone() },
            },
            QuantHead::Centroids { normal, malicious } => ArtifactHead::Centroids {
                normal: normal.clone(),
                malicious: malicious.clone(),
            },
        };
        let embeddings = parts.embeddings.dequantize();
        let first = lstm.first().ok_or_else(|| {
            ServeError::Artifact("quantized artifact has no LSTM layers".into())
        })?;
        // Piggyback on the f32 structural validator: the dequantized
        // matrices must satisfy every shape the config promises.
        InferenceArtifact {
            cfg: parts.cfg,
            embeddings: embeddings.clone(),
            lstm: lstm.clone(),
            head: head.clone(),
        }
        .validate()?;
        let zx0 = embeddings.matmul(&first.wx);
        Ok(Self { parts, runtime: QuantRuntime { zx0, lstm, head } })
    }

    /// The wire-format body (corrupt a copy and feed it back through
    /// [`QuantizedArtifact::from_parts`] to exercise the gate).
    pub fn parts(&self) -> &QuantParts {
        &self.parts
    }

    /// The storage precision of the weight matrices.
    pub fn precision(&self) -> Precision {
        self.parts.precision
    }

    /// The hyper-parameters baked into the artifact.
    pub fn config(&self) -> &ClfdConfig {
        &self.parts.cfg
    }

    /// Embedding vocabulary size — the exclusive upper bound on activity
    /// tokens this artifact can score.
    pub fn vocab(&self) -> usize {
        self.parts.embeddings.shape().0
    }

    /// Total bytes of quantized weight storage (the size the quantization
    /// bought; the f32 equivalent is 4 bytes per element).
    pub fn weight_bytes(&self) -> usize {
        let head = match &self.parts.head {
            QuantHead::Classifier { l1w, l2w, .. } => l1w.weight_bytes() + l2w.weight_bytes(),
            QuantHead::Centroids { .. } => 0,
        };
        self.parts.embeddings.weight_bytes()
            + self
                .parts
                .lstm
                .iter()
                .map(|l| l.wx.weight_bytes() + l.wh.weight_bytes())
                .sum::<usize>()
            + head
    }

    /// Checks that a session is scorable by this artifact (mirrors
    /// [`InferenceArtifact::validate_session`]).
    ///
    /// # Errors
    /// Returns [`ServeError::EmptySession`] or [`ServeError::UnknownToken`].
    pub fn validate_session(&self, session: &Session) -> Result<(), ServeError> {
        if session.is_empty() {
            return Err(ServeError::EmptySession);
        }
        let vocab = self.vocab();
        for &token in &session.activities {
            if token as usize >= vocab {
                return Err(ServeError::UnknownToken { token, vocab });
            }
        }
        Ok(())
    }

    /// Scores sessions with f32 accumulation over the dequantized weights.
    ///
    /// # Panics
    /// Panics on an empty session list, an empty session, or a token
    /// outside the vocabulary — use
    /// [`validate_session`](Self::validate_session) for a typed rejection.
    pub fn predict(&self, sessions: &[&Session]) -> Vec<Prediction> {
        predictions_from_proba(&self.proba(sessions))
    }

    /// Class-probability matrix (`n x 2`) for `sessions`.
    pub fn proba(&self, sessions: &[&Session]) -> Matrix {
        assert!(!sessions.is_empty(), "empty session list");
        let cfg = &self.parts.cfg;
        let hid = cfg.hidden;
        let mut features = Matrix::zeros(sessions.len(), hid);
        let all: Vec<usize> = (0..sessions.len()).collect();
        for chunk in batch_indices(&all, cfg.batch_size) {
            let refs: Vec<&Session> = chunk.iter().map(|&i| sessions[i]).collect();
            let values = self.encode(&refs);
            for (row, &i) in chunk.iter().enumerate() {
                features.row_mut(i).copy_from_slice(values.row(row));
            }
        }
        let features = features.l2_normalize_rows(L2_EPS);
        match &self.runtime.head {
            ArtifactHead::Classifier { l1, l2 } => {
                let h = features.matmul(&l1.w).add_row_broadcast(&l1.b).leaky_relu(LEAKY_SLOPE);
                h.matmul(&l2.w).add_row_broadcast(&l2.b).softmax_rows()
            }
            ArtifactHead::Centroids { normal, malicious } => {
                centroid_proba(&features, normal, malicious)
            }
        }
    }

    /// Encodes one chunk of sessions: the layer-0 input projection is a
    /// gather from the fused `zx0` table (padding rows stay zero, exactly
    /// the zero vector a zero input row would produce), then the standard
    /// recurrence through the dequantized stack and length-masked mean
    /// pooling, mirroring [`InferenceArtifact`]'s encode loop.
    fn encode(&self, sessions: &[&Session]) -> Matrix {
        let cfg = &self.parts.cfg;
        let hid = cfg.hidden;
        let rows = sessions.len();
        let t = sessions
            .iter()
            .map(|s| s.len().min(cfg.max_seq_len))
            .max()
            .expect("non-empty chunk");
        let lengths: Vec<usize> =
            sessions.iter().map(|s| s.len().min(cfg.max_seq_len)).collect();
        for (r, s) in sessions.iter().enumerate() {
            assert!(!s.is_empty(), "session {r} has no activities");
        }

        let first = &self.runtime.lstm[0];
        let mut h = Matrix::zeros(rows, hid);
        let mut c = Matrix::zeros(rows, hid);
        let mut sequence: Vec<Matrix> = Vec::with_capacity(t);
        for step in 0..t {
            let mut zx = Matrix::zeros(rows, 4 * hid);
            for (r, s) in sessions.iter().enumerate() {
                if step < lengths[r] {
                    let token = s.activities[step] as usize;
                    zx.row_mut(r).copy_from_slice(self.runtime.zx0.row(token));
                }
            }
            let zh = h.matmul(&first.wh);
            let z = zx.add(&zh).add_row_broadcast(&first.b);
            let (h2, c2) = z.lstm_cell_update(&c);
            h = h2;
            c = c2;
            sequence.push(h.clone());
        }
        for layer in &self.runtime.lstm[1..] {
            let mut h = Matrix::zeros(rows, hid);
            let mut c = Matrix::zeros(rows, hid);
            let mut next = Vec::with_capacity(sequence.len());
            for x in &sequence {
                let zx = x.matmul(&layer.wx);
                let zh = h.matmul(&layer.wh);
                let z = zx.add(&zh).add_row_broadcast(&layer.b);
                let (h2, c2) = z.lstm_cell_update(&c);
                h = h2;
                c = c2;
                next.push(h.clone());
            }
            sequence = next;
        }
        let mut acc: Option<Matrix> = None;
        for (step, h) in sequence.iter().enumerate() {
            let scales: Vec<f32> = lengths
                .iter()
                .map(|&len| if step < len { 1.0 / len.max(1) as f32 } else { 0.0 })
                .collect();
            if scales.iter().all(|&s| s == 0.0) {
                continue;
            }
            let mut contrib = h.clone();
            for (r, &s) in scales.iter().enumerate() {
                for x in contrib.row_mut(r) {
                    *x *= s;
                }
            }
            acc = Some(match acc {
                Some(a) => a.add(&contrib),
                None => contrib,
            });
        }
        acc.expect("at least one valid timestep")
    }

    /// Serializes the wire-format body to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.parts).expect("quantized artifact serialization cannot fail")
    }

    /// Deserializes from a JSON string, validates, and rebuilds the
    /// runtime.
    ///
    /// # Errors
    /// Returns [`ServeError::Artifact`] on malformed JSON or a
    /// structurally inconsistent body.
    pub fn from_json(s: &str) -> Result<Self, ServeError> {
        let parts: QuantParts =
            serde_json::from_str(s).map_err(|e| ServeError::Artifact(e.to_string()))?;
        Self::from_parts(parts)
    }

    /// Scores `gate.probes` deterministic probe sessions through both this
    /// artifact and the f32 `reference` and checks the drift budget:
    /// label disagreement ≤ [`QuantGate::max_disagreement`] and worst
    /// malicious-score drift ≤ [`QuantGate::max_score_delta`].
    ///
    /// # Errors
    /// Returns [`ServeError::QuantizationRejected`] (with the measured
    /// drift) when either budget is exceeded, or
    /// [`ServeError::Artifact`] when the two artifacts are not comparable
    /// (different vocabulary).
    pub fn gate_against(
        &self,
        reference: &InferenceArtifact,
        gate: &QuantGate,
    ) -> Result<QuantGateReport, ServeError> {
        if reference.vocab() != self.vocab() {
            return Err(ServeError::Artifact(format!(
                "gate reference has vocabulary {}, candidate has {}",
                reference.vocab(),
                self.vocab()
            )));
        }
        let sessions = probe_sessions(self.vocab(), self.parts.cfg.max_seq_len, gate.probes);
        let refs: Vec<&Session> = sessions.iter().collect();
        let want = reference.predict(&refs);
        let got = self.predict(&refs);
        let mut disagreements = 0_usize;
        let mut max_score_delta = 0.0_f32;
        for (w, g) in want.iter().zip(&got) {
            if w.label != g.label {
                disagreements += 1;
            }
            max_score_delta = max_score_delta.max((w.malicious_score - g.malicious_score).abs());
        }
        let report = QuantGateReport {
            precision: self.parts.precision,
            probes: sessions.len(),
            disagreements,
            max_score_delta,
        };
        let disagreement = report.disagreement();
        if disagreement > gate.max_disagreement {
            return Err(ServeError::QuantizationRejected(format!(
                "{} label disagreement {:.4} exceeds budget {:.4} over {} probes",
                self.parts.precision, disagreement, gate.max_disagreement, report.probes
            )));
        }
        if max_score_delta > gate.max_score_delta {
            return Err(ServeError::QuantizationRejected(format!(
                "{} malicious-score drift {:.4} exceeds budget {:.4} over {} probes",
                self.parts.precision, max_score_delta, gate.max_score_delta, report.probes
            )));
        }
        Ok(report)
    }
}

impl Scorer for QuantizedArtifact {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.predict(sessions)
    }
}

/// Admission budget for [`QuantizedArtifact::gate_against`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantGate {
    /// Deterministic probe sessions to score through both artifacts.
    pub probes: usize,
    /// Maximum fraction of probes whose predicted label may flip.
    pub max_disagreement: f32,
    /// Maximum absolute drift of any probe's malicious score.
    pub max_score_delta: f32,
}

impl Default for QuantGate {
    fn default() -> Self {
        Self { probes: 256, max_disagreement: 0.02, max_score_delta: 0.05 }
    }
}

/// What [`QuantizedArtifact::gate_against`] measured on the probe set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantGateReport {
    /// The candidate's storage precision.
    pub precision: Precision,
    /// Probe sessions scored.
    pub probes: usize,
    /// Probes whose predicted label differed from the reference.
    pub disagreements: usize,
    /// Worst absolute malicious-score drift across probes.
    pub max_score_delta: f32,
}

impl QuantGateReport {
    /// Label-disagreement fraction.
    pub fn disagreement(&self) -> f32 {
        self.disagreements as f32 / self.probes.max(1) as f32
    }
}

/// Deterministic probe sessions covering the vocabulary and the length
/// range: token streams from a fixed-seed splitmix64, lengths cycling
/// `1..=max_seq_len`. Both artifacts score the identical set, so the gate
/// is reproducible across runs and machines.
fn probe_sessions(vocab: usize, max_seq_len: usize, count: usize) -> Vec<Session> {
    let mut state = 0x9e37_79b9_7f4a_7c15_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|i| {
            let len = (i % max_seq_len.max(1)) + 1;
            let activities =
                (0..len).map(|_| (next() % vocab.max(1) as u64) as u32).collect();
            Session { activities, day: (i / 7) as u32 }
        })
        .collect()
}

/// The serving stack's closed sum of artifact forms: every engine lease,
/// registry slot, and gateway response is scored by exactly one of these.
// Both variants are weight-bearing structs, and the sum is only ever held
// behind an `Arc` (leases, registry slots), so the size spread between
// them never reaches a copy-heavy path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ServableArtifact {
    /// The full-precision artifact, bit-identical to the trained model.
    F32(InferenceArtifact),
    /// A quantized artifact admitted through the accuracy-delta gate.
    Quantized(QuantizedArtifact),
}

impl ServableArtifact {
    /// Quantizes `artifact` to `precision` and admits the result through
    /// the accuracy-delta gate against `artifact` itself.
    /// [`Precision::F32`] short-circuits to the f32 form (no gate to run).
    ///
    /// # Errors
    /// Returns [`ServeError::QuantizationRejected`] when the candidate
    /// fails the gate.
    pub fn quantize_gated(
        artifact: InferenceArtifact,
        precision: Precision,
        gate: &QuantGate,
    ) -> Result<Self, ServeError> {
        match precision {
            Precision::F32 => Ok(Self::F32(artifact)),
            _ => {
                let quantized = artifact.quantize(precision)?;
                quantized.gate_against(&artifact, gate)?;
                Ok(Self::Quantized(quantized))
            }
        }
    }

    /// The hyper-parameters baked into the artifact.
    pub fn config(&self) -> &ClfdConfig {
        match self {
            Self::F32(a) => a.config(),
            Self::Quantized(a) => a.config(),
        }
    }

    /// Embedding vocabulary size.
    pub fn vocab(&self) -> usize {
        match self {
            Self::F32(a) => a.vocab(),
            Self::Quantized(a) => a.vocab(),
        }
    }

    /// The serving precision of this artifact.
    pub fn precision(&self) -> Precision {
        match self {
            Self::F32(_) => Precision::F32,
            Self::Quantized(a) => a.precision(),
        }
    }

    /// Checks that a session is scorable by this artifact.
    ///
    /// # Errors
    /// Returns [`ServeError::EmptySession`] or [`ServeError::UnknownToken`].
    pub fn validate_session(&self, session: &Session) -> Result<(), ServeError> {
        match self {
            Self::F32(a) => a.validate_session(session),
            Self::Quantized(a) => a.validate_session(session),
        }
    }

    /// Scores sessions through whichever form this is.
    ///
    /// # Panics
    /// As [`InferenceArtifact::predict`] /
    /// [`QuantizedArtifact::predict`].
    pub fn predict(&self, sessions: &[&Session]) -> Vec<Prediction> {
        match self {
            Self::F32(a) => a.predict(sessions),
            Self::Quantized(a) => a.predict(sessions),
        }
    }

    /// Serializes to a JSON string (each form keeps its own wire format;
    /// [`from_json_bytes`](Self::from_json_bytes) routes on load).
    pub fn to_json(&self) -> String {
        match self {
            Self::F32(a) => a.to_json(),
            Self::Quantized(a) => a.to_json(),
        }
    }

    /// Deserializes either artifact form from raw bytes: quantized bodies
    /// carry the [`QUANT_SCHEME`] marker and route to
    /// [`QuantizedArtifact::from_json`]; everything else is parsed as an
    /// f32 [`InferenceArtifact`].
    ///
    /// # Errors
    /// Returns [`ServeError::Artifact`] on invalid UTF-8, malformed JSON,
    /// or a structurally inconsistent artifact.
    pub fn from_json_bytes(bytes: &[u8]) -> Result<Self, ServeError> {
        let s = std::str::from_utf8(bytes)
            .map_err(|e| ServeError::Artifact(format!("artifact is not UTF-8: {e}")))?;
        if s.contains(QUANT_SCHEME) {
            QuantizedArtifact::from_json(s).map(Self::Quantized)
        } else {
            InferenceArtifact::from_json(s).map(Self::F32)
        }
    }
}

impl Scorer for ServableArtifact {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.predict(sessions)
    }
}

impl From<InferenceArtifact> for ServableArtifact {
    fn from(artifact: InferenceArtifact) -> Self {
        Self::F32(artifact)
    }
}

impl From<QuantizedArtifact> for ServableArtifact {
    fn from(artifact: QuantizedArtifact) -> Self {
        Self::Quantized(artifact)
    }
}

/// IEEE 754 binary32 → binary16 bit conversion, round-to-nearest-even.
/// f32 subnormals (< 1.2e-38) are far below the f16 subnormal range and
/// flush to signed zero.
fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 255 {
        // Inf / NaN (NaN keeps a payload bit so it stays NaN).
        return sign | 0x7c00 | u16::from(mant != 0) << 9;
    }
    if exp == 0 {
        return sign;
    }
    let e16 = exp - 127 + 15;
    if e16 >= 31 {
        return sign | 0x7c00;
    }
    if e16 <= 0 {
        // f16 subnormal: shift the 24-bit significand (implicit bit set)
        // down past the exponent deficit.
        if e16 < -10 {
            return sign;
        }
        let full = mant | 0x0080_0000;
        let shift = (14 - e16) as u32;
        let half = 1_u32 << (shift - 1);
        let rem = full & ((1 << shift) - 1);
        let mut out = full >> shift;
        if rem > half || (rem == half && out & 1 == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    let rem = mant & 0x1fff;
    let mut out = ((e16 as u32) << 10) | (mant >> 13);
    if rem > 0x1000 || (rem == 0x1000 && out & 1 == 1) {
        out += 1; // carry may ripple into the exponent; that rounds up correctly
    }
    sign | out as u16
}

/// IEEE 754 binary16 → binary32 bit conversion (exact).
fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1f;
    let mant = u32::from(h & 0x3ff);
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, _) => {
            // Subnormal: renormalize into the f32 exponent range.
            let mut e = 127 - 15 + 1;
            let mut m = mant;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((m & 0x3ff) << 13)
        }
        (31, 0) => sign | 0x7f80_0000,
        (31, _) => sign | 0x7f80_0000 | (mant << 13),
        _ => sign | ((exp + 127 - 15) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_conversion_round_trips_representable_values() {
        for &v in &[0.0_f32, -0.0, 1.0, -1.0, 0.5, 65504.0, -65504.0, 6.1035156e-5] {
            let h = f32_to_f16_bits(v);
            assert_eq!(f16_bits_to_f32(h).to_bits(), v.to_bits(), "{v}");
        }
        // Rounding: 1 + 2^-11 is exactly halfway between 1.0 and the next
        // f16; round-to-even lands on 1.0.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0 + 4.8828125e-4)), 1.0);
        // Overflow saturates to infinity, tiny values flush to zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e9)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e-30)).to_bits(), (-0.0_f32).to_bits());
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Subnormal f16 range survives.
        let sub = 2.0e-6_f32;
        let back = f16_bits_to_f32(f32_to_f16_bits(sub));
        assert!((back - sub).abs() / sub < 0.05, "{back} vs {sub}");
    }

    #[test]
    fn int8_quantization_bounds_per_row_error() {
        let m = Matrix::from_fn(7, 33, |r, c| ((r * 31 + c * 7) as f32 * 0.37).sin() * (r + 1) as f32);
        let q = QuantMatrix::quantize(&m, Precision::Int8).expect("int8");
        let d = q.dequantize();
        assert_eq!(d.shape(), m.shape());
        for r in 0..m.rows() {
            let row = m.row(r);
            let mn = row.iter().copied().fold(f32::INFINITY, f32::min);
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let step = (mx - mn) / 255.0;
            for c in 0..m.cols() {
                let err = (d.get(r, c) - m.get(r, c)).abs();
                assert!(err <= step * 0.5 + 1e-6, "row {r} col {c}: err {err} > step {step}");
            }
        }
        // Constant rows are exact.
        let flat = Matrix::full(2, 9, 0.625);
        let qd = QuantMatrix::quantize(&flat, Precision::Int8).expect("int8").dequantize();
        assert_eq!(qd, flat);
    }

    #[test]
    fn quantize_rejects_f32_and_validate_catches_buffer_drift() {
        let artifact = InferenceArtifact::test_artifact();
        assert!(matches!(
            artifact.quantize(Precision::F32),
            Err(ServeError::QuantizationRejected(_))
        ));
        let q = artifact.quantize(Precision::Int8).expect("int8 quantizes");
        let mut parts = q.parts().clone();
        if let QuantMatrix::Int8 { data, .. } = &mut parts.embeddings {
            data.pop();
        }
        assert!(matches!(
            QuantizedArtifact::from_parts(parts),
            Err(ServeError::Artifact(_))
        ));
    }

    #[test]
    fn fused_layer0_table_matches_the_unfused_forward() {
        // The quantized encode must equal an InferenceArtifact built from
        // the *dequantized* weights bit-for-bit: the fused zx0 gather is
        // the same matmul rows the unfused path would compute.
        let artifact = InferenceArtifact::test_artifact();
        let q = artifact.quantize(Precision::Int8).expect("int8");
        let dequant = InferenceArtifact {
            cfg: *q.config(),
            embeddings: q.parts().embeddings.dequantize(),
            lstm: q
                .parts()
                .lstm
                .iter()
                .map(|l| PackedLstmLayer {
                    wx: l.wx.dequantize(),
                    wh: l.wh.dequantize(),
                    b: l.b.clone(),
                })
                .collect(),
            head: match &q.parts().head {
                QuantHead::Classifier { l1w, l1b, l2w, l2b } => ArtifactHead::Classifier {
                    l1: PackedLinear { w: l1w.dequantize(), b: l1b.clone() },
                    l2: PackedLinear { w: l2w.dequantize(), b: l2b.clone() },
                },
                QuantHead::Centroids { normal, malicious } => ArtifactHead::Centroids {
                    normal: normal.clone(),
                    malicious: malicious.clone(),
                },
            },
        };
        let sessions = [
            Session { activities: vec![0, 2, 4, 1], day: 0 },
            Session { activities: vec![3], day: 1 },
            Session { activities: vec![4, 4, 4, 0, 1, 2, 3], day: 2 },
        ];
        let refs: Vec<&Session> = sessions.iter().collect();
        let a = q.predict(&refs);
        let b = dequant.predict(&refs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.malicious_score.to_bits(), y.malicious_score.to_bits());
            assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
        }
    }

    #[test]
    fn probe_sessions_are_deterministic_and_in_vocab() {
        let a = probe_sessions(5, 12, 64);
        let b = probe_sessions(5, 12, 64);
        assert_eq!(a, b);
        assert!(a.iter().all(|s| !s.is_empty() && s.len() <= 12));
        assert!(a.iter().flat_map(|s| &s.activities).all(|&t| t < 5));
        // Lengths cover the full range.
        assert!((1..=12).all(|l| a.iter().any(|s| s.len() == l)));
    }

    #[test]
    fn servable_round_trips_both_forms() {
        let artifact = InferenceArtifact::test_artifact();
        let f32_bytes = ServableArtifact::F32(artifact.clone()).to_json();
        match ServableArtifact::from_json_bytes(f32_bytes.as_bytes()).expect("f32 loads") {
            ServableArtifact::F32(back) => assert_eq!(back, artifact),
            other => panic!("expected f32 form, got {other:?}"),
        }
        let q = artifact.quantize(Precision::F16).expect("f16");
        let q_bytes = ServableArtifact::Quantized(q.clone()).to_json();
        match ServableArtifact::from_json_bytes(q_bytes.as_bytes()).expect("quant loads") {
            ServableArtifact::Quantized(back) => assert_eq!(back, q),
            other => panic!("expected quantized form, got {other:?}"),
        }
    }
}
