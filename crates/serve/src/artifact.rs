//! Frozen inference artifacts.
//!
//! [`InferenceArtifact`] packs everything a trained [`TrainedClfd`] needs at
//! serving time — the embedding table, the inference encoder's LSTM stack,
//! and whichever head the pipeline would route predictions through — into
//! plain contiguous matrices with no tape, optimizer state, or training
//! corpus attached. Artifacts serialize to JSON (like
//! [`clfd::ClfdSnapshot`]) and their value-only forward pass performs
//! exactly the same `Matrix` operations in the same order as
//! [`TrainedClfd::predict_sessions`], so a frozen artifact's predictions
//! are bit-identical to the live model's.
//!
//! [`clfd::ClfdSnapshot`]: clfd::ClfdSnapshot

use crate::error::ServeError;
use clfd::api::Scorer;
use clfd::{ClfdConfig, ClfdSnapshot, Prediction, TrainedClfd};
use clfd_data::batch::{assemble_features, SessionBatch};
use clfd_data::session::{Label, Session};
use clfd_data::word2vec::ActivityEmbeddings;
use clfd_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Mirrors the classifier head's private LeakyReLU slope; the serve crate's
/// bit-identity tests pin the two together.
pub(crate) const LEAKY_SLOPE: f32 = 0.01;

/// Epsilon of the unit-sphere projection applied to encoder features,
/// mirroring the corrector/detector inference paths.
pub(crate) const L2_EPS: f32 = 1e-9;

/// One LSTM layer's parameters (gate order i, f, g, o, matching
/// `clfd_nn::Lstm`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedLstmLayer {
    /// Input weights, `in_dim x 4*hidden`.
    pub wx: Matrix,
    /// Recurrent weights, `hidden x 4*hidden`.
    pub wh: Matrix,
    /// Bias, `1 x 4*hidden`.
    pub b: Matrix,
}

/// A linear layer's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedLinear {
    /// Weights, `in_dim x out_dim`.
    pub w: Matrix,
    /// Bias, `1 x out_dim`.
    pub b: Matrix,
}

/// The frozen inference head: whichever of the pipeline's two scoring modes
/// the trained model would use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArtifactHead {
    /// Two-layer FCNN classifier (LeakyReLU hidden layer + softmax).
    Classifier {
        /// Hidden layer.
        l1: PackedLinear,
        /// Output layer.
        l2: PackedLinear,
    },
    /// Class centroids — the `w/o classifier (FD)` ablation's
    /// distance-softmax scoring.
    Centroids {
        /// Normal-class centroid, `1 x hidden`.
        normal: Matrix,
        /// Malicious-class centroid, `1 x hidden`.
        malicious: Matrix,
    },
}

/// A trained model frozen into contiguous buffers for serving.
///
/// Built with [`InferenceArtifact::freeze`], serialized with
/// [`InferenceArtifact::to_json`], scored with
/// [`InferenceArtifact::predict`] or through the [`Scorer`] trait.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceArtifact {
    /// The hyper-parameters the model was trained with (batch shaping and
    /// widths are read at inference time).
    pub(crate) cfg: ClfdConfig,
    /// The word2vec activity-embedding table, `vocab x embed_dim`.
    pub(crate) embeddings: Matrix,
    /// The inference encoder's LSTM stack, input layer first.
    pub(crate) lstm: Vec<PackedLstmLayer>,
    /// The scoring head.
    pub(crate) head: ArtifactHead,
}

impl InferenceArtifact {
    /// Freezes a trained pipeline into a serving artifact.
    ///
    /// Routing mirrors [`TrainedClfd::predict_sessions`]: the fraud
    /// detector's encoder and head when the detector was trained, otherwise
    /// the label corrector's.
    ///
    /// # Errors
    /// Returns [`ServeError::Freeze`] when the snapshot is structurally
    /// incomplete or inconsistent with the model's config.
    pub fn freeze(model: &TrainedClfd) -> Result<Self, ServeError> {
        Self::from_snapshot(&model.snapshot(), *model.config())
    }

    /// Builds an artifact from an already-captured snapshot plus the config
    /// it was trained under.
    ///
    /// # Errors
    /// Returns [`ServeError::Freeze`] on a structurally invalid snapshot.
    pub fn from_snapshot(snapshot: &ClfdSnapshot, cfg: ClfdConfig) -> Result<Self, ServeError> {
        let [embeddings] = snapshot.embeddings.values.as_slice() else {
            return Err(ServeError::Freeze(format!(
                "embedding snapshot must hold 1 matrix, found {}",
                snapshot.embeddings.values.len()
            )));
        };
        let (encoder, head) = if let Some(det) = &snapshot.detector {
            let head = match (&det.head, &det.centroids) {
                (Some(head), None) => ArtifactHead::Classifier {
                    l1: PackedLinear {
                        w: get(&head.values, 0, "detector head")?,
                        b: get(&head.values, 1, "detector head")?,
                    },
                    l2: PackedLinear {
                        w: get(&head.values, 2, "detector head")?,
                        b: get(&head.values, 3, "detector head")?,
                    },
                },
                (None, Some(centroids)) => ArtifactHead::Centroids {
                    normal: get(&centroids.values, 0, "centroids")?,
                    malicious: get(&centroids.values, 1, "centroids")?,
                },
                (head, _) => {
                    return Err(ServeError::Freeze(format!(
                        "detector snapshot must hold exactly one of head/centroids \
                         (head: {}, centroids: {})",
                        head.is_some(),
                        det.centroids.is_some()
                    )))
                }
            };
            (&det.encoder, head)
        } else if let Some(cor) = &snapshot.corrector {
            let head = ArtifactHead::Classifier {
                l1: PackedLinear {
                    w: get(&cor.head.values, 0, "corrector head")?,
                    b: get(&cor.head.values, 1, "corrector head")?,
                },
                l2: PackedLinear {
                    w: get(&cor.head.values, 2, "corrector head")?,
                    b: get(&cor.head.values, 3, "corrector head")?,
                },
            };
            (&cor.encoder, head)
        } else {
            return Err(ServeError::Freeze(
                "snapshot holds neither a detector nor a corrector".into(),
            ));
        };

        if encoder.values.len() != 3 * cfg.lstm_layers {
            return Err(ServeError::Freeze(format!(
                "encoder snapshot holds {} matrices, expected {} (3 per LSTM layer)",
                encoder.values.len(),
                3 * cfg.lstm_layers
            )));
        }
        let lstm: Vec<PackedLstmLayer> = encoder
            .values
            .chunks_exact(3)
            .map(|layer| PackedLstmLayer {
                wx: layer[0].clone(),
                wh: layer[1].clone(),
                b: layer[2].clone(),
            })
            .collect();

        let artifact = Self { cfg, embeddings: embeddings.clone(), lstm, head };
        artifact.validate().map_err(|e| ServeError::Freeze(e.to_string()))?;
        Ok(artifact)
    }

    /// Structural consistency check: every matrix has the shape the config
    /// promises, and every buffer matches its declared shape (a decoded
    /// matrix can lie about its dimensions; kernels index on trust).
    ///
    /// # Errors
    /// Returns [`ServeError::Artifact`] naming the first inconsistency.
    pub fn validate(&self) -> Result<(), ServeError> {
        let mut matrices: Vec<(&str, &Matrix)> = vec![("embedding table", &self.embeddings)];
        for layer in &self.lstm {
            matrices.push(("LSTM wx", &layer.wx));
            matrices.push(("LSTM wh", &layer.wh));
            matrices.push(("LSTM bias", &layer.b));
        }
        match &self.head {
            ArtifactHead::Classifier { l1, l2 } => {
                matrices.extend([
                    ("head l1 weights", &l1.w),
                    ("head l1 bias", &l1.b),
                    ("head l2 weights", &l2.w),
                    ("head l2 bias", &l2.b),
                ]);
            }
            ArtifactHead::Centroids { normal, malicious } => {
                matrices.extend([("normal centroid", normal), ("malicious centroid", malicious)]);
            }
        }
        for (what, m) in matrices {
            m.check_shape()
                .map_err(|e| ServeError::Artifact(format!("{what}: {e}")))?;
        }
        let bad = |what: &str, got: (usize, usize), want: (usize, usize)| {
            Err(ServeError::Artifact(format!(
                "{what} has shape {}x{}, expected {}x{}",
                got.0, got.1, want.0, want.1
            )))
        };
        let (dim, hid) = (self.cfg.embed_dim, self.cfg.hidden);
        if self.embeddings.rows() == 0 || self.embeddings.cols() != dim {
            return bad("embedding table", self.embeddings.shape(), (1, dim));
        }
        if self.lstm.len() != self.cfg.lstm_layers {
            return Err(ServeError::Artifact(format!(
                "artifact has {} LSTM layers, config promises {}",
                self.lstm.len(),
                self.cfg.lstm_layers
            )));
        }
        for (l, layer) in self.lstm.iter().enumerate() {
            let in_dim = if l == 0 { dim } else { hid };
            if layer.wx.shape() != (in_dim, 4 * hid) {
                return bad("LSTM wx", layer.wx.shape(), (in_dim, 4 * hid));
            }
            if layer.wh.shape() != (hid, 4 * hid) {
                return bad("LSTM wh", layer.wh.shape(), (hid, 4 * hid));
            }
            if layer.b.shape() != (1, 4 * hid) {
                return bad("LSTM bias", layer.b.shape(), (1, 4 * hid));
            }
        }
        match &self.head {
            ArtifactHead::Classifier { l1, l2 } => {
                if l1.w.shape() != (hid, hid) {
                    return bad("head l1 weights", l1.w.shape(), (hid, hid));
                }
                if l1.b.shape() != (1, hid) {
                    return bad("head l1 bias", l1.b.shape(), (1, hid));
                }
                if l2.w.shape() != (hid, 2) {
                    return bad("head l2 weights", l2.w.shape(), (hid, 2));
                }
                if l2.b.shape() != (1, 2) {
                    return bad("head l2 bias", l2.b.shape(), (1, 2));
                }
            }
            ArtifactHead::Centroids { normal, malicious } => {
                if normal.shape() != (1, hid) {
                    return bad("normal centroid", normal.shape(), (1, hid));
                }
                if malicious.shape() != (1, hid) {
                    return bad("malicious centroid", malicious.shape(), (1, hid));
                }
            }
        }
        Ok(())
    }

    /// The hyper-parameters baked into the artifact.
    pub fn config(&self) -> &ClfdConfig {
        &self.cfg
    }

    /// Embedding vocabulary size — the exclusive upper bound on activity
    /// tokens this artifact can score.
    pub fn vocab(&self) -> usize {
        self.embeddings.rows()
    }

    /// Checks that a session is scorable by this artifact.
    ///
    /// # Errors
    /// Returns [`ServeError::EmptySession`] or [`ServeError::UnknownToken`].
    pub fn validate_session(&self, session: &Session) -> Result<(), ServeError> {
        if session.is_empty() {
            return Err(ServeError::EmptySession);
        }
        let vocab = self.vocab();
        for &token in &session.activities {
            if token as usize >= vocab {
                return Err(ServeError::UnknownToken { token, vocab });
            }
        }
        Ok(())
    }

    /// Scores sessions, bit-identically to
    /// [`TrainedClfd::predict_sessions`] on the model this artifact froze.
    ///
    /// # Panics
    /// Panics on an empty session list, an empty session, or a token
    /// outside the vocabulary — use
    /// [`validate_session`](Self::validate_session) (or go through the
    /// engine, which validates at submit time) for a typed rejection.
    pub fn predict(&self, sessions: &[&Session]) -> Vec<Prediction> {
        predictions_from_proba(&self.proba(sessions))
    }

    /// Class-probability matrix (`n x 2`) for `sessions`.
    pub fn proba(&self, sessions: &[&Session]) -> Matrix {
        let embeddings = ActivityEmbeddings::from_matrix(self.embeddings.clone());
        let features = assemble_features(
            sessions,
            &embeddings,
            self.cfg.batch_size,
            self.cfg.max_seq_len,
            self.cfg.hidden,
            |b| self.encode(b),
        )
        .l2_normalize_rows(L2_EPS);
        match &self.head {
            ArtifactHead::Classifier { l1, l2 } => {
                let h = features.matmul(&l1.w).add_row_broadcast(&l1.b).leaky_relu(LEAKY_SLOPE);
                h.matmul(&l2.w).add_row_broadcast(&l2.b).softmax_rows()
            }
            ArtifactHead::Centroids { normal, malicious } => {
                centroid_proba(&features, normal, malicious)
            }
        }
    }

    /// Value-only LSTM encode of one padded batch: per-timestep recurrence
    /// through the packed stack, then length-masked mean pooling. Performs
    /// exactly the same `Matrix` operations in the same order as
    /// `clfd_nn::Lstm::infer`, keeping the artifact bit-identical to the
    /// live encoder.
    fn encode(&self, batch: &SessionBatch) -> Matrix {
        let rows = batch.batch_size();
        let hid = self.cfg.hidden;
        let mut sequence: Vec<Matrix> = batch.steps.clone();
        for layer in &self.lstm {
            let mut h = Matrix::zeros(rows, hid);
            let mut c = Matrix::zeros(rows, hid);
            let mut next = Vec::with_capacity(sequence.len());
            for x in &sequence {
                let zx = x.matmul(&layer.wx);
                let zh = h.matmul(&layer.wh);
                let z = zx.add(&zh).add_row_broadcast(&layer.b);
                let (h2, c2) = z.lstm_cell_update(&c);
                h = h2;
                c = c2;
                next.push(h.clone());
            }
            sequence = next;
        }
        let mut acc: Option<Matrix> = None;
        for (t, h) in sequence.iter().enumerate() {
            let scales: Vec<f32> = batch
                .lengths
                .iter()
                .map(|&len| if t < len { 1.0 / len.max(1) as f32 } else { 0.0 })
                .collect();
            if scales.iter().all(|&s| s == 0.0) {
                continue;
            }
            let mut contrib = h.clone();
            for (r, &s) in scales.iter().enumerate() {
                for x in contrib.row_mut(r) {
                    *x *= s;
                }
            }
            acc = Some(match acc {
                Some(a) => a.add(&contrib),
                None => contrib,
            });
        }
        acc.expect("at least one valid timestep")
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialization cannot fail")
    }

    /// Deserializes from a JSON string and validates the result.
    ///
    /// # Errors
    /// Returns [`ServeError::Artifact`] on malformed JSON or a structurally
    /// inconsistent artifact.
    pub fn from_json(s: &str) -> Result<Self, ServeError> {
        let artifact: Self =
            serde_json::from_str(s).map_err(|e| ServeError::Artifact(e.to_string()))?;
        artifact.validate()?;
        Ok(artifact)
    }

    /// Deserializes from raw bytes (the on-disk representation) and
    /// validates the result. Truncated, bit-flipped, or non-UTF-8 files
    /// all come back as typed errors — never a panic — which is what lets
    /// a registry reject a corrupt candidate while the previous model
    /// keeps serving.
    ///
    /// # Errors
    /// Returns [`ServeError::Artifact`] on invalid UTF-8, malformed JSON,
    /// or a structurally inconsistent artifact.
    pub fn from_json_bytes(bytes: &[u8]) -> Result<Self, ServeError> {
        let s = std::str::from_utf8(bytes)
            .map_err(|e| ServeError::Artifact(format!("artifact is not UTF-8: {e}")))?;
        Self::from_json(s)
    }
}

impl Scorer for InferenceArtifact {
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.predict(sessions)
    }
}

/// Distance-softmax over the two class centroids; mirrors the detector's
/// centroid inference expression-for-expression.
pub(crate) fn centroid_proba(features: &Matrix, normal: &Matrix, malicious: &Matrix) -> Matrix {
    Matrix::from_fn(features.rows(), 2, |r, c| {
        let row = Matrix::row_vector(features.row(r));
        let d0 = row.euclidean_distance(normal);
        let d1 = row.euclidean_distance(malicious);
        let e0 = (-d0).exp();
        let e1 = (-d1).exp();
        let denom = (e0 + e1).max(f32::MIN_POSITIVE);
        if c == 0 {
            e0 / denom
        } else {
            e1 / denom
        }
    })
}

/// Mirrors the pipeline's probability → [`Prediction`] conversion.
pub(crate) fn predictions_from_proba(probs: &Matrix) -> Vec<Prediction> {
    (0..probs.rows())
        .map(|r| {
            let p0 = probs.get(r, 0);
            let p1 = probs.get(r, 1);
            Prediction {
                label: if p1 > p0 { Label::Malicious } else { Label::Normal },
                malicious_score: p1,
                confidence: p0.max(p1),
            }
        })
        .collect()
}

fn get(values: &[Matrix], index: usize, what: &str) -> Result<Matrix, ServeError> {
    values.get(index).cloned().ok_or_else(|| {
        ServeError::Freeze(format!(
            "{what} snapshot holds {} matrices, need at least {}",
            values.len(),
            index + 1
        ))
    })
}

#[cfg(test)]
impl InferenceArtifact {
    /// Hand-packed tiny centroid artifact for crate-internal unit tests.
    pub(crate) fn test_artifact() -> Self {
        let cfg = ClfdConfig {
            embed_dim: 3,
            hidden: 4,
            lstm_layers: 1,
            ..ClfdConfig::for_preset(clfd_data::session::Preset::Smoke)
        };
        InferenceArtifact {
            cfg,
            embeddings: Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32 * 0.1),
            lstm: vec![PackedLstmLayer {
                wx: Matrix::from_fn(3, 16, |r, c| ((r + c) as f32 * 0.07).sin()),
                wh: Matrix::from_fn(4, 16, |r, c| ((r * 2 + c) as f32 * 0.05).cos()),
                b: Matrix::zeros(1, 16),
            }],
            head: ArtifactHead::Centroids {
                normal: Matrix::full(1, 4, 0.1),
                malicious: Matrix::full(1, 4, -0.2),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_artifact() -> InferenceArtifact {
        InferenceArtifact::test_artifact()
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let artifact = tiny_artifact();
        let back = InferenceArtifact::from_json(&artifact.to_json()).expect("round trip");
        assert_eq!(artifact, back);
        let s = Session { activities: vec![0, 2, 4, 1], day: 0 };
        let a = artifact.predict(&[&s]);
        let b = back.predict(&[&s]);
        assert_eq!(a[0].malicious_score.to_bits(), b[0].malicious_score.to_bits());
    }

    #[test]
    fn validate_session_rejects_bad_inputs() {
        let artifact = tiny_artifact();
        let empty = Session { activities: vec![], day: 0 };
        assert_eq!(artifact.validate_session(&empty), Err(ServeError::EmptySession));
        let oov = Session { activities: vec![0, 9], day: 0 };
        assert_eq!(
            artifact.validate_session(&oov),
            Err(ServeError::UnknownToken { token: 9, vocab: 5 })
        );
        let ok = Session { activities: vec![0, 4], day: 0 };
        assert_eq!(artifact.validate_session(&ok), Ok(()));
    }

    #[test]
    fn validate_catches_shape_drift() {
        let mut artifact = tiny_artifact();
        artifact.lstm[0].wh = Matrix::zeros(4, 8);
        let err = artifact.validate().expect_err("bad wh must be rejected");
        assert!(err.to_string().contains("wh"), "unexpected error: {err}");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            InferenceArtifact::from_json("{not json"),
            Err(ServeError::Artifact(_))
        ));
    }
}
