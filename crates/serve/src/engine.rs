//! The micro-batching request engine.
//!
//! Callers submit individual [`Session`]s; a pool of worker threads drains
//! the bounded queue into batches (bucketed by padded session length so
//! every forward pass is uniformly shaped), scores each batch through the
//! artifact leased from an [`ArtifactSource`], and delivers
//! [`Prediction`]s back through per-request tickets. Queue depth, batch
//! flushes, and per-request latency stream out as structured `clfd-obs`
//! events, labeled with the model that scored them.
//!
//! # Scheduling vs. scoring
//!
//! The engine owns *scheduling* only: queueing, backpressure, batching,
//! deadlines. *Scoring* is a lease lookup — each drained batch asks the
//! source for the current artifact and scores the whole batch with it.
//! Under a hot-swapping source (`clfd-registry`), a swap therefore lands
//! on a batch boundary: every response is bit-identical to exactly one
//! installed artifact, never a blend. With the default [`FixedArtifact`]
//! source the engine behaves exactly like PR 4's single-model engine.
//!
//! # Resilience
//!
//! Three things can go wrong mid-flight and none of them wedges a caller:
//!
//! * a request's deadline passes in the queue — the worker answers it with
//!   [`ServeError::DeadlineExceeded`] instead of scoring it;
//! * the worker itself stalls (or dies) — [`Ticket::wait`] enforces the
//!   deadline from the caller's side;
//! * the scoring path panics — the worker catches it, answers the batch
//!   with [`ServeError::Internal`], emits [`Event::ServePanic`], and keeps
//!   serving subsequent requests.
//!
//! Source code only ever runs on worker threads: `submit` validates
//! against the source's cheap [`ArtifactSource::validation_hint`] (or just
//! the emptiness check, without one) instead of taking a lease, so a
//! source that stalls or panics inside `lease` cannot wedge or crash the
//! submitting caller.

use crate::artifact::InferenceArtifact;
use crate::error::ServeError;
use crate::quant::{QuantGate, ServableArtifact};
use crate::source::{ArtifactSource, FixedArtifact};
use clfd::api::Scorer;
use clfd::{Precision, Prediction};
use clfd_tensor::KernelPolicy;
use clfd_data::session::Session;
use clfd_metrics::Registry;
use clfd_obs::{Event, Obs};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine shape: batch bound, queue bound, worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum requests drained into one flush (further split into
    /// uniform-length buckets before the forward pass).
    pub max_batch: usize,
    /// Bound on queued (not yet drained) requests; submissions beyond it
    /// block ([`Engine::submit`]) or fail with [`ServeError::Overloaded`]
    /// ([`Engine::try_submit`]).
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// With a metrics registry attached ([`Engine::with_metrics`]), flush
    /// an [`Event::MetricsReport`] snapshot into the event stream every
    /// this many completed requests. `None` disables periodic flushing
    /// (a final snapshot can still be taken from the registry directly).
    pub metrics_every: Option<u64>,
    /// Serving precision for the artifact-owning constructors
    /// ([`Engine::new`] / [`Engine::with_obs`] / [`Engine::with_metrics`]):
    /// anything other than [`Precision::F32`] quantizes the supplied
    /// artifact and admits it through the default accuracy-delta
    /// [`QuantGate`]. Source-backed engines ([`Engine::from_source`])
    /// serve whatever form the source leases and ignore this field.
    pub precision: Precision,
    /// Tensor-kernel policy installed on every worker thread
    /// (thread count, cache-block shape, SIMD lanes — see
    /// [`clfd_tensor::KernelPolicy`]). `None` inherits the process-wide
    /// policy. Scoring is bit-identical under any policy.
    pub kernel_policy: Option<KernelPolicy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            queue_capacity: 256,
            workers: 1,
            metrics_every: None,
            precision: Precision::F32,
            kernel_policy: None,
        }
    }
}

impl EngineConfig {
    /// Single-worker mode: requests are drained and flushed in strict
    /// submission order, so the whole engine behaves like one serial
    /// scorer. (Per-request *results* are bit-identical at any worker
    /// count; this mode additionally makes batch composition and the obs
    /// event stream deterministic.)
    pub fn deterministic() -> Self {
        Self { workers: 1, ..Self::default() }
    }
}

/// A pending request: one session, its submission time, optional deadline,
/// and the channel its answer travels back on.
struct Request {
    id: u64,
    session: Session,
    enqueued: Instant,
    deadline: Option<Instant>,
    resp: mpsc::Sender<Result<Prediction, ServeError>>,
}

struct QueueState {
    items: VecDeque<Request>,
    shutdown: bool,
    next_id: u64,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when work arrives (workers wait here).
    work_cv: Condvar,
    /// Signalled when queue space frees up (blocking submitters wait here).
    space_cv: Condvar,
    /// Where each drained batch gets its artifact from.
    source: Arc<dyn ArtifactSource>,
    cfg: EngineConfig,
    obs: Obs,
    /// Registry for periodic [`Event::MetricsReport`] snapshots; the
    /// *aggregation* itself happens in whatever `EventFold` the caller
    /// wired into `obs`.
    metrics: Option<Arc<Registry>>,
    /// Requests answered across all workers, driving the
    /// [`EngineConfig::metrics_every`] flush cadence.
    done: AtomicU64,
}

/// Claim on one in-flight prediction; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
    deadline: Option<Instant>,
}

impl Ticket {
    /// Blocks until the answer arrives — or, when the request carried a
    /// deadline, until the deadline passes, whichever is first. The
    /// deadline is enforced *here*, on the caller's side, so even a
    /// stalled or dead worker cannot wedge the caller.
    ///
    /// # Errors
    /// [`ServeError::DeadlineExceeded`] when the deadline passed without
    /// an answer, [`ServeError::ShuttingDown`] if the engine dropped
    /// before answering, or whatever typed error the worker answered with
    /// (deadline expiry in the queue, a validation failure at scoring
    /// time, a caught panic).
    pub fn wait(self) -> Result<Prediction, ServeError> {
        match self.deadline {
            None => self.rx.recv().map_err(|_| ServeError::ShuttingDown)?,
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match self.rx.recv_timeout(remaining) {
                    Ok(result) => result,
                    Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::ShuttingDown),
                }
            }
        }
    }
}

/// A batched streaming inference engine over an [`ArtifactSource`].
///
/// Dropping the engine drains already-queued requests, then joins the
/// workers.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawns an engine (and its worker pool) over one frozen `artifact`
    /// (a [`FixedArtifact`] source labeled `"default"`). When
    /// [`EngineConfig::precision`] is not [`Precision::F32`], the artifact
    /// is quantized and admitted through the default [`QuantGate`] first.
    ///
    /// # Panics
    /// Panics when `cfg` asks for zero workers, a zero batch bound, or a
    /// zero-capacity queue — or when the quantized artifact fails the
    /// accuracy-delta gate (use [`Engine::try_new`] for a typed rejection).
    pub fn new(artifact: InferenceArtifact, cfg: EngineConfig) -> Self {
        Self::with_obs(artifact, cfg, Obs::null())
    }

    /// [`Engine::new`] with the quantization gate surfaced as a typed
    /// error instead of a panic.
    ///
    /// # Errors
    /// Returns [`ServeError::QuantizationRejected`] when
    /// [`EngineConfig::precision`] asks for a quantized artifact that
    /// fails the accuracy-delta gate.
    pub fn try_new(artifact: InferenceArtifact, cfg: EngineConfig) -> Result<Self, ServeError> {
        let source = Arc::new(FixedArtifact::servable(ServableArtifact::quantize_gated(
            artifact,
            cfg.precision,
            &QuantGate::default(),
        )?));
        Ok(Self::build(source, cfg, Obs::null(), None))
    }

    /// Like [`Engine::new`] with a `clfd-obs` sink attached: the engine
    /// emits [`Event::QueueDepth`], [`Event::BatchFlushed`], and
    /// [`Event::RequestDone`] (plus [`Event::RequestExpired`] /
    /// [`Event::ServePanic`] on the failure paths).
    pub fn with_obs(artifact: InferenceArtifact, cfg: EngineConfig, obs: Obs) -> Self {
        Self::build(Arc::new(admit(artifact, &cfg)), cfg, obs, None)
    }

    /// Like [`Engine::with_obs`] with a metrics [`Registry`] attached:
    /// every [`EngineConfig::metrics_every`] completed requests, a worker
    /// emits an [`Event::MetricsReport`] carrying the registry's JSON
    /// snapshot into the event stream.
    ///
    /// The registry is only *read* here — to aggregate this engine's
    /// events into it, wire a [`clfd_metrics::EventFold`] over the same
    /// registry into `obs`.
    pub fn with_metrics(
        artifact: InferenceArtifact,
        cfg: EngineConfig,
        obs: Obs,
        metrics: Arc<Registry>,
    ) -> Self {
        Self::build(Arc::new(admit(artifact, &cfg)), cfg, obs, Some(metrics))
    }

    /// Spawns an engine over an arbitrary [`ArtifactSource`] — the
    /// hot-swap entry point used by `clfd-registry`. Pass
    /// `metrics: None` unless periodic [`Event::MetricsReport`] flushes
    /// are wanted.
    ///
    /// # Panics
    /// Panics when `cfg` asks for zero workers, a zero batch bound, or a
    /// zero-capacity queue.
    pub fn from_source(
        source: Arc<dyn ArtifactSource>,
        cfg: EngineConfig,
        obs: Obs,
        metrics: Option<Arc<Registry>>,
    ) -> Self {
        Self::build(source, cfg, obs, metrics)
    }

    fn build(
        source: Arc<dyn ArtifactSource>,
        cfg: EngineConfig,
        obs: Obs,
        metrics: Option<Arc<Registry>>,
    ) -> Self {
        assert!(cfg.workers > 0, "engine needs at least one worker");
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.queue_capacity > 0, "queue_capacity must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                shutdown: false,
                next_id: 0,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            source,
            cfg,
            obs,
            metrics,
            done: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        Self { shared, workers }
    }

    /// The artifact the engine would score the next batch with (a fresh
    /// lease from the source; under a hot-swapping source this can change
    /// between calls).
    pub fn artifact(&self) -> Arc<ServableArtifact> {
        self.shared.source.lease().artifact
    }

    /// Non-blocking submit: validates the session and enqueues it.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the queue is full,
    /// [`ServeError::ShuttingDown`] after shutdown began, or a validation
    /// error ([`ServeError::EmptySession`] / [`ServeError::UnknownToken`]).
    pub fn try_submit(&self, session: &Session) -> Result<Ticket, ServeError> {
        self.try_submit_inner(session, None)
    }

    /// [`Engine::try_submit`] with a deadline: if `timeout` elapses before
    /// a worker answers, the request is abandoned and the ticket yields
    /// [`ServeError::DeadlineExceeded`].
    ///
    /// # Errors
    /// As [`Engine::try_submit`].
    pub fn try_submit_with_deadline(
        &self,
        session: &Session,
        timeout: Duration,
    ) -> Result<Ticket, ServeError> {
        self.try_submit_inner(session, Some(Instant::now() + timeout))
    }

    fn try_submit_inner(
        &self,
        session: &Session,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        self.validate_at_submit(session)?;
        let state = self.lock_state();
        if state.items.len() >= self.shared.cfg.queue_capacity {
            return Err(ServeError::Overloaded { capacity: self.shared.cfg.queue_capacity });
        }
        self.enqueue(state, session, deadline)
    }

    /// Blocking submit: validates the session, then waits for queue space
    /// if necessary.
    ///
    /// # Errors
    /// [`ServeError::ShuttingDown`] after shutdown began, or a validation
    /// error ([`ServeError::EmptySession`] / [`ServeError::UnknownToken`]).
    pub fn submit(&self, session: &Session) -> Result<Ticket, ServeError> {
        self.submit_inner(session, None)
    }

    /// [`Engine::submit`] with a deadline: if `timeout` elapses before a
    /// worker answers, the ticket yields
    /// [`ServeError::DeadlineExceeded`] instead of blocking forever —
    /// even if a worker is wedged mid-batch.
    ///
    /// # Errors
    /// As [`Engine::submit`].
    pub fn submit_with_deadline(
        &self,
        session: &Session,
        timeout: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(session, Some(Instant::now() + timeout))
    }

    fn submit_inner(
        &self,
        session: &Session,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        self.validate_at_submit(session)?;
        let mut state = self.lock_state();
        while state.items.len() >= self.shared.cfg.queue_capacity && !state.shutdown {
            state = self
                .shared
                .space_cv
                .wait(state)
                .expect("engine state mutex poisoned");
        }
        self.enqueue(state, session, deadline)
    }

    /// Submits every session (blocking on backpressure) and waits for all
    /// predictions, returned in input order.
    ///
    /// # Errors
    /// Any [`ServeError`] from submission, or
    /// [`ServeError::ShuttingDown`] if the engine dropped mid-flight.
    pub fn score_batch(&self, sessions: &[&Session]) -> Result<Vec<Prediction>, ServeError> {
        let tickets: Vec<Ticket> = sessions
            .iter()
            .map(|s| self.submit(s))
            .collect::<Result<_, _>>()?;
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Submit-time validation. Deliberately does **not** take a lease: a
    /// lease runs source code, and a stalled or panicking source must
    /// never reach the thread calling `submit` — only worker threads,
    /// where both are contained. Sources that can produce an artifact
    /// cheaply expose it via [`ArtifactSource::validation_hint`]; without
    /// one, only the artifact-independent emptiness check runs here and
    /// token validation happens at scoring time (the error then arrives
    /// on the ticket instead).
    fn validate_at_submit(&self, session: &Session) -> Result<(), ServeError> {
        match self.shared.source.validation_hint() {
            Some(artifact) => artifact.validate_session(session),
            None if session.is_empty() => Err(ServeError::EmptySession),
            None => Ok(()),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.shared.state.lock().expect("engine state mutex poisoned")
    }

    fn enqueue(
        &self,
        mut state: MutexGuard<'_, QueueState>,
        session: &Session,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let id = state.next_id;
        state.next_id += 1;
        let (tx, rx) = mpsc::channel();
        state.items.push_back(Request {
            id,
            session: session.clone(),
            enqueued: Instant::now(),
            deadline,
            resp: tx,
        });
        drop(state);
        self.shared.work_cv.notify_one();
        Ok(Ticket { rx, deadline })
    }
}

impl Scorer for Engine {
    /// # Panics
    /// Panics on a rejected session (empty or out-of-vocabulary) or when
    /// the engine is shutting down; use [`Engine::score_batch`] for typed
    /// errors.
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.score_batch(sessions).expect("engine scoring failed")
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut state = self.lock_state();
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Quantizes (or passes through) one owned artifact per
/// [`EngineConfig::precision`]; the panicking constructors funnel here.
fn admit(artifact: InferenceArtifact, cfg: &EngineConfig) -> FixedArtifact {
    let servable = ServableArtifact::quantize_gated(artifact, cfg.precision, &QuantGate::default())
        .expect("quantized artifact failed the accuracy-delta gate");
    FixedArtifact::servable(servable)
}

/// Installs the engine's kernel policy (if any) for the lifetime of one
/// worker thread, then runs the drain loop.
fn worker_loop(shared: &Shared, worker: usize) {
    match shared.cfg.kernel_policy {
        Some(policy) => clfd_tensor::with_policy(policy, || worker_drain_loop(shared, worker)),
        None => worker_drain_loop(shared, worker),
    }
}

fn worker_drain_loop(shared: &Shared, worker: usize) {
    loop {
        let drained = {
            let mut state = shared.state.lock().expect("engine state mutex poisoned");
            loop {
                if !state.items.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_cv
                    .wait(state)
                    .expect("engine state mutex poisoned");
            }
            let n = state.items.len().min(shared.cfg.max_batch);
            let drained: Vec<Request> = state.items.drain(..n).collect();
            shared.obs.emit(Event::QueueDepth {
                depth: state.items.len(),
                capacity: shared.cfg.queue_capacity,
            });
            drained
        };
        shared.space_cv.notify_all();
        process_batch(shared, worker, drained);
    }
}

/// Scores one drained batch: leases the current artifact, sheds expired
/// and no-longer-valid requests with typed errors, scores each uniform-
/// length bucket, and answers every ticket exactly once. A panic anywhere
/// in the lease or scoring path is caught and turned into
/// [`ServeError::Internal`] answers — the worker survives.
fn process_batch(shared: &Shared, worker: usize, drained: Vec<Request>) {
    // The lease pins one artifact for the whole batch: responses are
    // bit-identical to that artifact, no matter what the source swaps to
    // mid-flight.
    let lease = match catch_unwind(AssertUnwindSafe(|| shared.source.lease())) {
        Ok(lease) => lease,
        Err(payload) => {
            let detail = panic_detail(payload.as_ref());
            shared.obs.emit(Event::ServePanic {
                worker,
                model: "unknown".to_string(),
                detail: detail.clone(),
            });
            for req in drained {
                answer(shared, req.resp, Err(ServeError::Internal(detail.clone())));
            }
            return;
        }
    };

    // Bucket by padded length so each forward pass is uniformly shaped
    // (no wasted timesteps on mostly-padding rows). BTreeMap keeps the
    // bucket order deterministic. Expired requests and requests the
    // leased artifact can no longer score (a swap may have shrunk the
    // vocabulary since submit-time validation) are answered here with
    // typed errors instead of entering the forward pass.
    let mut buckets: BTreeMap<usize, Vec<Request>> = BTreeMap::new();
    let max_len = lease.artifact.config().max_seq_len;
    let now = Instant::now();
    for req in drained {
        if req.deadline.is_some_and(|d| now >= d) {
            shared.obs.emit(Event::RequestExpired {
                request: req.id,
                model: lease.model.to_string(),
                waited_us: elapsed_us(req.enqueued),
            });
            answer(shared, req.resp, Err(ServeError::DeadlineExceeded));
            continue;
        }
        if let Err(e) = lease.artifact.validate_session(&req.session) {
            lease.observe(0, false);
            answer(shared, req.resp, Err(e));
            continue;
        }
        let len = req.session.len().min(max_len);
        buckets.entry(len).or_default().push(req);
    }

    for (padded_len, requests) in buckets {
        let clock = Instant::now();
        let predictions = {
            let sessions: Vec<&Session> = requests.iter().map(|r| &r.session).collect();
            catch_unwind(AssertUnwindSafe(|| lease.artifact.predict(&sessions)))
        };
        let wall_us = elapsed_us(clock);
        match predictions {
            Ok(predictions) => {
                shared.obs.emit(Event::BatchFlushed {
                    worker,
                    rows: requests.len(),
                    padded_len,
                    wall_us,
                    model: lease.model.to_string(),
                });
                // Scoring cost attributed per row, so canary latency
                // accounting sees the forward pass, not queue wait.
                let score_us = wall_us / requests.len().max(1) as u64;
                for (req, prediction) in requests.into_iter().zip(predictions) {
                    shared.obs.emit(Event::RequestDone {
                        request: req.id,
                        sessions: 1,
                        latency_us: elapsed_us(req.enqueued),
                        model: lease.model.to_string(),
                    });
                    lease.observe(score_us, true);
                    answer(shared, req.resp, Ok(prediction));
                }
            }
            Err(payload) => {
                let detail = panic_detail(payload.as_ref());
                shared.obs.emit(Event::ServePanic {
                    worker,
                    model: lease.model.to_string(),
                    detail: detail.clone(),
                });
                for req in requests {
                    lease.observe(wall_us, false);
                    answer(shared, req.resp, Err(ServeError::Internal(detail.clone())));
                }
            }
        }
    }
}

/// Delivers one answer (the ticket may have been dropped; that just
/// discards it) and advances the metrics-flush cadence.
fn answer(
    shared: &Shared,
    resp: mpsc::Sender<Result<Prediction, ServeError>>,
    result: Result<Prediction, ServeError>,
) {
    maybe_flush_metrics(shared);
    let _ = resp.send(result);
}

/// Best-effort stringification of a caught panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Counts one answered request and, at every `metrics_every`-th
/// completion, flushes the attached registry's JSON snapshot into the
/// event stream. The count is global across workers, so the cadence holds
/// at any worker count (which worker flushes is racy; the *snapshot* is
/// whatever the registry holds at that instant).
fn maybe_flush_metrics(shared: &Shared) {
    let done = shared.done.fetch_add(1, Ordering::Relaxed) + 1;
    let (Some(registry), Some(every)) = (&shared.metrics, shared.cfg.metrics_every) else {
        return;
    };
    if every > 0 && done.is_multiple_of(every) {
        shared.obs.emit(Event::MetricsReport {
            scope: format!("serve/{done}"),
            snapshot: registry.snapshot().to_json(),
        });
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}
