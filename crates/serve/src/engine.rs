//! The micro-batching request engine.
//!
//! Callers submit individual [`Session`]s; a pool of worker threads drains
//! the bounded queue into batches (bucketed by padded session length so
//! every forward pass is uniformly shaped), scores each batch through the
//! frozen [`InferenceArtifact`], and delivers [`Prediction`]s back through
//! per-request tickets. Queue depth, batch flushes, and per-request latency
//! stream out as structured `clfd-obs` events.
//!
//! Because every per-session output of the artifact's forward pass is
//! independent of its batch neighbours, predictions are bit-identical to
//! [`InferenceArtifact::predict`] (and hence to
//! `TrainedClfd::predict_sessions`) no matter how requests happen to be
//! batched together — the contention test pins this.

use crate::artifact::InferenceArtifact;
use crate::error::ServeError;
use clfd::api::Scorer;
use clfd::Prediction;
use clfd_data::session::Session;
use clfd_metrics::Registry;
use clfd_obs::{Event, Obs};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine shape: batch bound, queue bound, worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum requests drained into one flush (further split into
    /// uniform-length buckets before the forward pass).
    pub max_batch: usize,
    /// Bound on queued (not yet drained) requests; submissions beyond it
    /// block ([`Engine::submit`]) or fail with [`ServeError::Overloaded`]
    /// ([`Engine::try_submit`]).
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// With a metrics registry attached ([`Engine::with_metrics`]), flush
    /// an [`Event::MetricsReport`] snapshot into the event stream every
    /// this many completed requests. `None` disables periodic flushing
    /// (a final snapshot can still be taken from the registry directly).
    pub metrics_every: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { max_batch: 32, queue_capacity: 256, workers: 1, metrics_every: None }
    }
}

impl EngineConfig {
    /// Single-worker mode: requests are drained and flushed in strict
    /// submission order, so the whole engine behaves like one serial
    /// scorer. (Per-request *results* are bit-identical at any worker
    /// count; this mode additionally makes batch composition and the obs
    /// event stream deterministic.)
    pub fn deterministic() -> Self {
        Self { workers: 1, ..Self::default() }
    }
}

/// A pending request: one session, its submission time, and the channel its
/// prediction travels back on.
struct Request {
    id: u64,
    session: Session,
    enqueued: Instant,
    resp: mpsc::Sender<Prediction>,
}

struct QueueState {
    items: VecDeque<Request>,
    shutdown: bool,
    next_id: u64,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when work arrives (workers wait here).
    work_cv: Condvar,
    /// Signalled when queue space frees up (blocking submitters wait here).
    space_cv: Condvar,
    artifact: InferenceArtifact,
    cfg: EngineConfig,
    obs: Obs,
    /// Registry for periodic [`Event::MetricsReport`] snapshots; the
    /// *aggregation* itself happens in whatever `EventFold` the caller
    /// wired into `obs`.
    metrics: Option<Arc<Registry>>,
    /// Requests completed across all workers, driving the
    /// [`EngineConfig::metrics_every`] flush cadence.
    done: AtomicU64,
}

/// Claim on one in-flight prediction; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Prediction>,
}

impl Ticket {
    /// Blocks until the prediction arrives.
    ///
    /// # Errors
    /// Returns [`ServeError::ShuttingDown`] if the engine dropped before
    /// answering.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)
    }
}

/// A batched streaming inference engine over one frozen artifact.
///
/// Dropping the engine drains already-queued requests, then joins the
/// workers.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawns an engine (and its worker pool) over `artifact`.
    ///
    /// # Panics
    /// Panics when `cfg` asks for zero workers, a zero batch bound, or a
    /// zero-capacity queue.
    pub fn new(artifact: InferenceArtifact, cfg: EngineConfig) -> Self {
        Self::with_obs(artifact, cfg, Obs::null())
    }

    /// Like [`Engine::new`] with a `clfd-obs` sink attached: the engine
    /// emits [`Event::QueueDepth`], [`Event::BatchFlushed`], and
    /// [`Event::RequestDone`].
    pub fn with_obs(artifact: InferenceArtifact, cfg: EngineConfig, obs: Obs) -> Self {
        Self::build(artifact, cfg, obs, None)
    }

    /// Like [`Engine::with_obs`] with a metrics [`Registry`] attached:
    /// every [`EngineConfig::metrics_every`] completed requests, a worker
    /// emits an [`Event::MetricsReport`] carrying the registry's JSON
    /// snapshot into the event stream.
    ///
    /// The registry is only *read* here — to aggregate this engine's
    /// events into it, wire a [`clfd_metrics::EventFold`] over the same
    /// registry into `obs`.
    pub fn with_metrics(
        artifact: InferenceArtifact,
        cfg: EngineConfig,
        obs: Obs,
        metrics: Arc<Registry>,
    ) -> Self {
        Self::build(artifact, cfg, obs, Some(metrics))
    }

    fn build(
        artifact: InferenceArtifact,
        cfg: EngineConfig,
        obs: Obs,
        metrics: Option<Arc<Registry>>,
    ) -> Self {
        assert!(cfg.workers > 0, "engine needs at least one worker");
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.queue_capacity > 0, "queue_capacity must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                shutdown: false,
                next_id: 0,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            artifact,
            cfg,
            obs,
            metrics,
            done: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        Self { shared, workers }
    }

    /// The frozen artifact this engine scores with.
    pub fn artifact(&self) -> &InferenceArtifact {
        &self.shared.artifact
    }

    /// Non-blocking submit: validates the session and enqueues it.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the queue is full,
    /// [`ServeError::ShuttingDown`] after shutdown began, or a validation
    /// error ([`ServeError::EmptySession`] / [`ServeError::UnknownToken`]).
    pub fn try_submit(&self, session: &Session) -> Result<Ticket, ServeError> {
        self.shared.artifact.validate_session(session)?;
        let state = self.lock_state();
        if state.items.len() >= self.shared.cfg.queue_capacity {
            return Err(ServeError::Overloaded { capacity: self.shared.cfg.queue_capacity });
        }
        self.enqueue(state, session)
    }

    /// Blocking submit: validates the session, then waits for queue space
    /// if necessary.
    ///
    /// # Errors
    /// [`ServeError::ShuttingDown`] after shutdown began, or a validation
    /// error ([`ServeError::EmptySession`] / [`ServeError::UnknownToken`]).
    pub fn submit(&self, session: &Session) -> Result<Ticket, ServeError> {
        self.shared.artifact.validate_session(session)?;
        let mut state = self.lock_state();
        while state.items.len() >= self.shared.cfg.queue_capacity && !state.shutdown {
            state = self
                .shared
                .space_cv
                .wait(state)
                .expect("engine state mutex poisoned");
        }
        self.enqueue(state, session)
    }

    /// Submits every session (blocking on backpressure) and waits for all
    /// predictions, returned in input order.
    ///
    /// # Errors
    /// Any [`ServeError`] from submission, or
    /// [`ServeError::ShuttingDown`] if the engine dropped mid-flight.
    pub fn score_batch(&self, sessions: &[&Session]) -> Result<Vec<Prediction>, ServeError> {
        let tickets: Vec<Ticket> = sessions
            .iter()
            .map(|s| self.submit(s))
            .collect::<Result<_, _>>()?;
        tickets.into_iter().map(Ticket::wait).collect()
    }

    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.shared.state.lock().expect("engine state mutex poisoned")
    }

    fn enqueue(
        &self,
        mut state: MutexGuard<'_, QueueState>,
        session: &Session,
    ) -> Result<Ticket, ServeError> {
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let id = state.next_id;
        state.next_id += 1;
        let (tx, rx) = mpsc::channel();
        state.items.push_back(Request {
            id,
            session: session.clone(),
            enqueued: Instant::now(),
            resp: tx,
        });
        drop(state);
        self.shared.work_cv.notify_one();
        Ok(Ticket { rx })
    }
}

impl Scorer for Engine {
    /// # Panics
    /// Panics on a rejected session (empty or out-of-vocabulary) or when
    /// the engine is shutting down; use [`Engine::score_batch`] for typed
    /// errors.
    fn score(&self, sessions: &[&Session]) -> Vec<Prediction> {
        self.score_batch(sessions).expect("engine scoring failed")
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut state = self.lock_state();
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        let drained = {
            let mut state = shared.state.lock().expect("engine state mutex poisoned");
            loop {
                if !state.items.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_cv
                    .wait(state)
                    .expect("engine state mutex poisoned");
            }
            let n = state.items.len().min(shared.cfg.max_batch);
            let drained: Vec<Request> = state.items.drain(..n).collect();
            shared.obs.emit(Event::QueueDepth {
                depth: state.items.len(),
                capacity: shared.cfg.queue_capacity,
            });
            drained
        };
        shared.space_cv.notify_all();

        // Bucket by padded length so each forward pass is uniformly shaped
        // (no wasted timesteps on mostly-padding rows). BTreeMap keeps the
        // bucket order deterministic.
        let mut buckets: BTreeMap<usize, Vec<Request>> = BTreeMap::new();
        let max_len = shared.artifact.config().max_seq_len;
        for req in drained {
            let len = req.session.len().min(max_len);
            buckets.entry(len).or_default().push(req);
        }
        for (padded_len, requests) in buckets {
            let clock = Instant::now();
            let sessions: Vec<&Session> = requests.iter().map(|r| &r.session).collect();
            let predictions = shared.artifact.predict(&sessions);
            shared.obs.emit(Event::BatchFlushed {
                worker,
                rows: requests.len(),
                padded_len,
                wall_us: elapsed_us(clock),
            });
            for (req, prediction) in requests.into_iter().zip(predictions) {
                shared.obs.emit(Event::RequestDone {
                    request: req.id,
                    sessions: 1,
                    latency_us: elapsed_us(req.enqueued),
                });
                maybe_flush_metrics(shared);
                // The ticket may have been dropped; that just discards the
                // prediction.
                let _ = req.resp.send(prediction);
            }
        }
    }
}

/// Counts one completed request and, at every `metrics_every`-th
/// completion, flushes the attached registry's JSON snapshot into the
/// event stream. The count is global across workers, so the cadence holds
/// at any worker count (which worker flushes is racy; the *snapshot* is
/// whatever the registry holds at that instant).
fn maybe_flush_metrics(shared: &Shared) {
    let done = shared.done.fetch_add(1, Ordering::Relaxed) + 1;
    let (Some(registry), Some(every)) = (&shared.metrics, shared.cfg.metrics_every) else {
        return;
    };
    if every > 0 && done.is_multiple_of(every) {
        shared.obs.emit(Event::MetricsReport {
            scope: format!("serve/{done}"),
            snapshot: registry.snapshot().to_json(),
        });
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}
