//! **clfd-serve** — batched streaming inference for trained CLFD models.
//!
//! Training produces a [`clfd::TrainedClfd`] dragging tapes, optimizer
//! state, and a corpus behind it; serving wants none of that. This crate
//! splits inference into two pieces:
//!
//! * [`InferenceArtifact`] — a trained model frozen into plain contiguous
//!   matrices (embedding table + LSTM stack + scoring head), JSON
//!   round-trippable, scoring **bit-identically** to
//!   [`TrainedClfd::predict_sessions`].
//! * [`Engine`] — a bounded micro-batching request queue over one
//!   artifact: callers [`Engine::submit`] sessions, a worker pool drains
//!   the queue into length-bucketed batches, runs the artifact's value-only
//!   batched forward on the threaded tensor kernels, and answers each
//!   [`Ticket`] with a [`clfd::Prediction`]. Queue depth, flushes, and
//!   per-request latency stream out as `clfd-obs` events.
//!
//! ```
//! use clfd::prelude::*;
//! use clfd_serve::{Engine, EngineConfig, InferenceArtifact};
//! use clfd_data::noise::NoiseModel;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let split = DatasetKind::Cert.generate(Preset::Smoke, 42);
//! let mut rng = StdRng::seed_from_u64(0);
//! let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&split.train_labels(), &mut rng);
//! let model = TrainedClfd::builder().preset(Preset::Smoke).fit(&split, &noisy);
//!
//! // Freeze, (optionally) ship as JSON, and serve.
//! let artifact = InferenceArtifact::freeze(&model).expect("trained model freezes");
//! let engine = Engine::new(artifact, EngineConfig::default());
//! let session = &split.corpus.sessions[split.test[0]];
//! let prediction = engine.submit(session).unwrap().wait().unwrap();
//! assert_eq!(prediction.label, model.predict_sessions(&[session])[0].label);
//! ```
//!
//! Backpressure is explicit: the queue is bounded, [`Engine::try_submit`]
//! fails fast with [`ServeError::Overloaded`], and the blocking
//! [`Engine::submit`] waits for space. [`EngineConfig::deterministic`]
//! (one worker) additionally makes batch composition and the event stream
//! deterministic — though per-request predictions are bit-identical at any
//! worker count, because each session's output is independent of its batch
//! neighbours.
//!
//! # Hot-swap and resilience
//!
//! The engine schedules; *where the model comes from* is an
//! [`ArtifactSource`] ([`FixedArtifact`] by default, `clfd-registry`'s
//! `ModelRegistry` for zero-downtime hot-swap). Each drained batch takes
//! one [`ArtifactLease`], so a swap lands on a batch boundary and every
//! response is bit-identical to exactly one installed artifact. Requests
//! may carry deadlines ([`Engine::submit_with_deadline`]) enforced on both
//! sides — workers shed expired requests with
//! [`ServeError::DeadlineExceeded`], and [`Ticket::wait`] times out even
//! against a wedged worker. Panics in the scoring path are caught per
//! batch and answered as [`ServeError::Internal`]; the worker survives.
//!
//! [`TrainedClfd::predict_sessions`]: clfd::TrainedClfd::predict_sessions

//! # Quantized serving
//!
//! [`InferenceArtifact::quantize`] shrinks a frozen artifact to
//! [`Precision::Int8`](clfd::Precision::Int8) (per-row affine) or
//! [`Precision::F16`](clfd::Precision::F16) (binary16 storage) with f32
//! accumulation; the result is only admitted to an engine through an
//! accuracy-delta gate ([`QuantGate`]) against the f32 reference. Set
//! [`EngineConfig::precision`] (or build a [`ServableArtifact`] directly)
//! to serve quantized; everything downstream — leases, hot-swap, the
//! gateway — handles both forms through [`ServableArtifact`].

pub mod artifact;
pub mod engine;
pub mod error;
pub mod quant;
pub mod source;

pub use artifact::{ArtifactHead, InferenceArtifact, PackedLinear, PackedLstmLayer};
pub use engine::{Engine, EngineConfig, Ticket};
pub use error::ServeError;
pub use quant::{
    QuantGate, QuantGateReport, QuantHead, QuantLstmLayer, QuantMatrix, QuantParts,
    QuantizedArtifact, ServableArtifact, QUANT_SCHEME,
};
pub use source::{ArtifactLease, ArtifactSource, FixedArtifact, LeaseObserver, FIXED_MODEL_LABEL};
