//! Typed serving failures.

use std::fmt;

/// Everything that can go wrong between freezing a model and delivering a
/// prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is full; the caller should back off and
    /// retry ([`try_submit`](crate::Engine::try_submit) only — the blocking
    /// [`submit`](crate::Engine::submit) waits instead).
    Overloaded {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// A trained model could not be frozen into an
    /// [`InferenceArtifact`](crate::InferenceArtifact) (structurally
    /// incomplete or inconsistent snapshot).
    Freeze(String),
    /// A serialized artifact could not be decoded.
    Artifact(String),
    /// The submitted session has no activities.
    EmptySession,
    /// The submitted session references a token outside the artifact's
    /// embedding vocabulary.
    UnknownToken {
        /// The offending activity token.
        token: u32,
        /// The artifact's vocabulary size.
        vocab: usize,
    },
    /// The engine is shutting down and no longer accepts or answers
    /// requests.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            Self::Freeze(msg) => write!(f, "cannot freeze model: {msg}"),
            Self::Artifact(msg) => write!(f, "malformed artifact: {msg}"),
            Self::EmptySession => write!(f, "session has no activities"),
            Self::UnknownToken { token, vocab } => {
                write!(f, "token {token} outside the artifact vocabulary of {vocab}")
            }
            Self::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServeError::Overloaded { capacity: 8 }.to_string().contains("capacity 8"));
        assert!(ServeError::UnknownToken { token: 9, vocab: 4 }.to_string().contains("token 9"));
        assert!(ServeError::Freeze("no head".into()).to_string().contains("no head"));
    }
}
