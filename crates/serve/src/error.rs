//! Typed serving failures.

use std::fmt;

/// Everything that can go wrong between freezing a model and delivering a
/// prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is full; the caller should back off and
    /// retry ([`try_submit`](crate::Engine::try_submit) only — the blocking
    /// [`submit`](crate::Engine::submit) waits instead).
    Overloaded {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// A trained model could not be frozen into an
    /// [`InferenceArtifact`](crate::InferenceArtifact) (structurally
    /// incomplete or inconsistent snapshot).
    Freeze(String),
    /// A serialized artifact could not be decoded.
    Artifact(String),
    /// The submitted session has no activities.
    EmptySession,
    /// The submitted session references a token outside the artifact's
    /// embedding vocabulary.
    UnknownToken {
        /// The offending activity token.
        token: u32,
        /// The artifact's vocabulary size.
        vocab: usize,
    },
    /// A quantized artifact failed the accuracy-delta admission gate (or
    /// quantization was requested at a precision that has no quantized
    /// form). The payload says which budget was exceeded and by how much;
    /// the f32 artifact keeps serving.
    QuantizationRejected(String),
    /// The engine is shutting down and no longer accepts or answers
    /// requests.
    ShuttingDown,
    /// The request's deadline passed before a prediction could be
    /// delivered. Raised on both sides: a worker answers expired requests
    /// with it instead of scoring them, and [`Ticket::wait`] returns it
    /// when the deadline passes with no answer (so a stalled worker can
    /// never wedge a caller).
    ///
    /// [`Ticket::wait`]: crate::Ticket::wait
    DeadlineExceeded,
    /// The scoring path panicked; the worker caught it, answered the
    /// affected requests with this error, and kept serving.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            Self::Freeze(msg) => write!(f, "cannot freeze model: {msg}"),
            Self::Artifact(msg) => write!(f, "malformed artifact: {msg}"),
            Self::EmptySession => write!(f, "session has no activities"),
            Self::UnknownToken { token, vocab } => {
                write!(f, "token {token} outside the artifact vocabulary of {vocab}")
            }
            Self::QuantizationRejected(msg) => {
                write!(f, "quantized artifact rejected: {msg}")
            }
            Self::ShuttingDown => write!(f, "engine is shutting down"),
            Self::DeadlineExceeded => write!(f, "request deadline exceeded"),
            Self::Internal(msg) => write!(f, "scoring path panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServeError::Overloaded { capacity: 8 }.to_string().contains("capacity 8"));
        assert!(ServeError::UnknownToken { token: 9, vocab: 4 }.to_string().contains("token 9"));
        assert!(ServeError::Freeze("no head".into()).to_string().contains("no head"));
    }
}
