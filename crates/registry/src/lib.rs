//! Zero-downtime model registry for the CLFD serving stack.
//!
//! Production fraud scoring cannot stop for a model update, and it cannot
//! trust one either: a retrained artifact may be truncated on disk, shape-
//! corrupt, nondeterministic, or simply worse. This crate closes the gap
//! between "a training run wrote `artifact.json`" and "the serving engine
//! scores with it":
//!
//! - [`ArtifactStore`] — versioned artifact files under one root with an
//!   atomically rewritten manifest: lifecycle state, FNV-1a checksums
//!   (hex-encoded), sizes, operator notes.
//! - [`ModelRegistry`] — the serving side. Each model gets a slot whose
//!   Active / previous / canary versions live behind a [`Swap`] cell;
//!   [`ModelRegistry::source_for`] yields an
//!   [`ArtifactSource`](clfd_serve::ArtifactSource) so a
//!   [`clfd_serve::Engine`] picks up swaps at batch granularity with zero
//!   dropped requests.
//! - Promotion gates — a candidate must decode and validate, score the
//!   probe set bit-identically twice, and hold probe accuracy within the
//!   configured budget of the Active version. Transient load failures are
//!   retried with exponential backoff; corruption is rejected permanently.
//! - Canary rollback — with a [`CanaryConfig`], a gated candidate serves
//!   every N-th lease while its live error rate and latency are compared
//!   against Active; it is committed or rolled back automatically.
//! - [`fault`] — deterministic injection (corrupt/truncated bytes, slow or
//!   failing loads, mid-swap panics) proving every failure leaves the last
//!   good version serving.
//! - [`Reloader`] — a background sweep promoting newly staged versions and
//!   flushing canary verdicts to the manifest.
//!
//! Every transition emits `SwapStart` / `SwapCommit` / `SwapRollback`
//! events ([`clfd_obs::Event`]), which `clfd-metrics` folds into
//! `clfd_registry_swaps_total{model,outcome}`.
//!
//! ```no_run
//! use clfd_registry::{ArtifactStore, ModelRegistry, RegistryConfig};
//! use clfd_serve::{Engine, EngineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let store = ArtifactStore::open("registry-root")?;
//! let registry = ModelRegistry::new(store, RegistryConfig::default(), clfd_obs::Obs::null());
//! let v = registry.stage("fraud", b"...artifact json...", "weekly retrain")?;
//! registry.promote("fraud", v)?;
//! let engine = Engine::from_source(
//!     registry.source_for("fraud")?,
//!     EngineConfig::default(),
//!     clfd_obs::Obs::null(),
//!     None,
//! );
//! # let _ = engine; Ok(()) }
//! ```

pub mod error;
pub mod fault;
pub mod registry;
pub mod reloader;
pub mod store;
pub mod swap;

pub use error::RegistryError;
pub use fault::{FiredFault, ServeFault, ServeFaultInjector, ServeFaultPlan, ServeOp};
pub use registry::{
    CanaryConfig, ModelRegistry, PromotionOutcome, RegistryConfig, RegistrySource,
};
pub use reloader::{sync_once, Reloader, SyncReport};
pub use store::{
    checksum_hex, fnv1a64, ArtifactStore, Manifest, ManifestEntry, ModelManifest, VersionState,
};
pub use swap::Swap;
