//! Atomic hot-swap cell.
//!
//! [`Swap`] holds an `Arc<T>` that readers clone out and writers replace
//! wholesale. The workspace denies `unsafe_code`, so instead of a true
//! lock-free `AtomicPtr` scheme this is the sanctioned safe variant: an
//! `RwLock` whose critical sections are a single `Arc` clone or store —
//! nanoseconds, never held across scoring — plus a generation counter so
//! observers can tell *that* a swap happened without comparing pointers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A swappable shared value: reads clone an `Arc`, writes replace it.
#[derive(Debug)]
pub struct Swap<T> {
    slot: RwLock<Arc<T>>,
    generation: AtomicU64,
}

impl<T> Swap<T> {
    /// Wraps an initial value.
    pub fn new(value: Arc<T>) -> Self {
        Self { slot: RwLock::new(value), generation: AtomicU64::new(0) }
    }

    /// Clones out the current value. Lock poisoning is impossible by
    /// construction (no user code runs inside the critical section), but
    /// is tolerated anyway by taking the poisoned guard's contents.
    pub fn load(&self) -> Arc<T> {
        match self.slot.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Installs a new value, returning the one it replaced, and bumps the
    /// generation counter.
    pub fn store(&self, value: Arc<T>) -> Arc<T> {
        let prior = match self.slot.write() {
            Ok(mut g) => std::mem::replace(&mut *g, value),
            Err(poisoned) => std::mem::replace(&mut *poisoned.into_inner(), value),
        };
        self.generation.fetch_add(1, Ordering::Release);
        prior
    }

    /// How many times [`store`](Self::store) has run. Starts at 0.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn swap_is_visible_and_counts_generations() {
        let cell = Swap::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.generation(), 0);
        let prior = cell.store(Arc::new(2));
        assert_eq!(*prior, 1);
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_value() {
        let cell = Arc::new(Swap::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let v = *cell.load();
                        // Writers only move the value forward.
                        assert!(v >= last, "read went backwards: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=1000 {
            cell.store(Arc::new(v));
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(cell.generation(), 1000);
    }
}
