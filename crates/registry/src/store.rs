//! Versioned on-disk artifact store.
//!
//! Layout under a root directory:
//!
//! ```text
//! <root>/manifest.json                  # lifecycle state, checksums
//! <root>/artifacts/<model>/v<N>.json    # one InferenceArtifact per version
//! ```
//!
//! Every write goes through a temp-file-then-rename so a crash mid-write
//! can never leave a half-written manifest or artifact where a reader will
//! trust it. Artifact bytes are checksummed (FNV-1a 64) at stage time and
//! re-verified on every load; checksums live in the manifest as *hex
//! strings* because the vendored JSON layer round-trips numbers through
//! `f64`, which is exact only to 2^53.

use crate::error::RegistryError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Lifecycle state of one artifact version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VersionState {
    /// Uploaded, not yet validated.
    Staged,
    /// Serving a slice of traffic under observation.
    Canary,
    /// The version all non-canary traffic scores against.
    Active,
    /// A former active version, kept for rollback.
    Retired,
    /// Failed validation or canary; never serves again.
    Rejected,
}

impl fmt::Display for VersionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Staged => "staged",
            Self::Canary => "canary",
            Self::Active => "active",
            Self::Retired => "retired",
            Self::Rejected => "rejected",
        };
        f.write_str(s)
    }
}

/// One version's manifest row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Version number, unique and increasing within a model.
    pub version: u64,
    /// Where in the lifecycle this version sits.
    pub state: VersionState,
    /// FNV-1a 64 checksum of the artifact file, as 16 hex digits.
    pub checksum: String,
    /// Size of the artifact file in bytes when staged.
    pub bytes: u64,
    /// Free-form operator note ("retrained on week 31", ...).
    pub note: String,
}

/// One model's manifest section.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelManifest {
    /// Model identifier (the `model` label on serve metrics).
    pub id: String,
    /// The currently active version, if any. 0 means none (the vendored
    /// JSON layer handles `Option<u64>` fine; this is a plain field for
    /// manifest readability).
    pub active: u64,
    /// Every version ever staged, oldest first.
    pub versions: Vec<ManifestEntry>,
}

/// The whole registry manifest.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Manifest {
    /// Every model the store knows, in stage order.
    pub models: Vec<ModelManifest>,
}

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a checksum the way the manifest stores it.
pub fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// A versioned artifact store rooted at one directory.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    manifest: Manifest,
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> RegistryError {
    RegistryError::Io(format!("{what} {}: {e}", path.display()))
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// then rename over the destination.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), RegistryError> {
    let dir = path.parent().ok_or_else(|| {
        RegistryError::Io(format!("{} has no parent directory", path.display()))
    })?;
    std::fs::create_dir_all(dir).map_err(|e| io_err("create", dir, &e))?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(|e| io_err("write", &tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, &e))
}

impl ArtifactStore {
    /// Opens (or initializes) a store rooted at `root`. A missing manifest
    /// means a fresh store; a present-but-unparseable one is an error, not
    /// something to silently overwrite.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let root = root.into();
        let manifest_path = root.join("manifest.json");
        let manifest = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => serde_json::from_str(&text)
                .map_err(|e| RegistryError::Manifest(e.to_string()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest::default(),
            Err(e) => return Err(io_err("read", &manifest_path, &e)),
        };
        Ok(Self { root, manifest })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Read access to the manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Where a version's artifact file lives.
    pub fn artifact_path(&self, model: &str, version: u64) -> PathBuf {
        self.root.join("artifacts").join(model).join(format!("v{version}.json"))
    }

    fn model(&self, model: &str) -> Result<&ModelManifest, RegistryError> {
        self.manifest
            .models
            .iter()
            .find(|m| m.id == model)
            .ok_or_else(|| RegistryError::UnknownModel(model.to_string()))
    }

    fn model_mut(&mut self, model: &str) -> Result<&mut ModelManifest, RegistryError> {
        self.manifest
            .models
            .iter_mut()
            .find(|m| m.id == model)
            .ok_or_else(|| RegistryError::UnknownModel(model.to_string()))
    }

    /// The manifest's recorded active version for `model`: `Some(v)` with
    /// `v > 0` when one is active, `Some(0)` when the model exists with no
    /// active version, `None` for an unknown model.
    pub fn model_active(&self, model: &str) -> Option<u64> {
        self.model(model).ok().map(|m| m.active)
    }

    /// Looks up one version's manifest row.
    pub fn entry(&self, model: &str, version: u64) -> Result<&ManifestEntry, RegistryError> {
        self.model(model)?
            .versions
            .iter()
            .find(|v| v.version == version)
            .ok_or(RegistryError::UnknownVersion { model: model.to_string(), version })
    }

    fn entry_mut(
        &mut self,
        model: &str,
        version: u64,
    ) -> Result<&mut ManifestEntry, RegistryError> {
        self.model_mut(model)?
            .versions
            .iter_mut()
            .find(|v| v.version == version)
            .ok_or(RegistryError::UnknownVersion { model: model.to_string(), version })
    }

    /// Stages new artifact bytes for `model`, assigning the next version
    /// number. The file is written atomically and its checksum recorded;
    /// the version starts [`VersionState::Staged`]. The bytes are *not*
    /// decoded here — validation happens at promotion, where a failure can
    /// be attributed and the version marked rejected.
    pub fn stage(
        &mut self,
        model: &str,
        json: &[u8],
        note: &str,
    ) -> Result<u64, RegistryError> {
        if self.manifest.models.iter().all(|m| m.id != model) {
            self.manifest.models.push(ModelManifest {
                id: model.to_string(),
                active: 0,
                versions: Vec::new(),
            });
        }
        let next = self
            .model(model)?
            .versions
            .iter()
            .map(|v| v.version)
            .max()
            .unwrap_or(0)
            + 1;
        atomic_write(&self.artifact_path(model, next), json)?;
        let entry = ManifestEntry {
            version: next,
            state: VersionState::Staged,
            checksum: checksum_hex(json),
            bytes: json.len() as u64,
            note: note.to_string(),
        };
        self.model_mut(model)?.versions.push(entry);
        self.save()?;
        Ok(next)
    }

    /// Reads a version's artifact bytes and verifies them against the
    /// checksum recorded at stage time.
    pub fn load_bytes(&self, model: &str, version: u64) -> Result<Vec<u8>, RegistryError> {
        let entry = self.entry(model, version)?;
        let expected = entry.checksum.clone();
        let path = self.artifact_path(model, version);
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
        if checksum_hex(&bytes) != expected {
            return Err(RegistryError::ChecksumMismatch {
                model: model.to_string(),
                version,
            });
        }
        Ok(bytes)
    }

    /// Moves one version to a new lifecycle state and persists the
    /// manifest.
    pub fn set_state(
        &mut self,
        model: &str,
        version: u64,
        state: VersionState,
    ) -> Result<(), RegistryError> {
        self.entry_mut(model, version)?.state = state;
        self.save()
    }

    /// Records which version is active for `model` (0 = none) and persists
    /// the manifest.
    pub fn set_active(&mut self, model: &str, version: u64) -> Result<(), RegistryError> {
        self.model_mut(model)?.active = version;
        self.save()
    }

    /// Persists the manifest atomically.
    pub fn save(&self) -> Result<(), RegistryError> {
        let text = serde_json::to_string(&self.manifest)
            .map_err(|e| RegistryError::Manifest(e.to_string()))?;
        atomic_write(&self.root.join("manifest.json"), text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "clfd-registry-store-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stage_load_roundtrip_and_states_persist() {
        let root = temp_root("roundtrip");
        let mut store = ArtifactStore::open(&root).expect("open");
        let v1 = store.stage("fraud", b"{\"fake\":1}", "first").expect("stage");
        let v2 = store.stage("fraud", b"{\"fake\":2}", "second").expect("stage");
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(store.load_bytes("fraud", 1).expect("load"), b"{\"fake\":1}");
        store.set_state("fraud", 1, VersionState::Active).expect("state");
        store.set_active("fraud", 1).expect("active");

        // Reopen from disk: everything survives.
        let reopened = ArtifactStore::open(&root).expect("reopen");
        assert_eq!(reopened.manifest().models.len(), 1);
        assert_eq!(reopened.manifest().models[0].active, 1);
        assert_eq!(reopened.entry("fraud", 1).expect("entry").state, VersionState::Active);
        assert_eq!(reopened.entry("fraud", 2).expect("entry").state, VersionState::Staged);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tampered_bytes_fail_the_checksum() {
        let root = temp_root("tamper");
        let mut store = ArtifactStore::open(&root).expect("open");
        let v = store.stage("fraud", b"{\"honest\":true}", "").expect("stage");
        let path = store.artifact_path("fraud", v);
        std::fs::write(&path, b"{\"honest\":false}").expect("tamper");
        let err = store.load_bytes("fraud", v).expect_err("must fail");
        assert!(matches!(err, RegistryError::ChecksumMismatch { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_ids_are_typed_errors() {
        let root = temp_root("unknown");
        let mut store = ArtifactStore::open(&root).expect("open");
        assert!(matches!(
            store.load_bytes("ghost", 1),
            Err(RegistryError::UnknownModel(_))
        ));
        store.stage("fraud", b"{}", "").expect("stage");
        assert!(matches!(
            store.load_bytes("fraud", 9),
            Err(RegistryError::UnknownVersion { version: 9, .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }
}
