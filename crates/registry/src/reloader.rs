//! Background promotion sweep.
//!
//! A [`Reloader`] polls the registry: newly staged manifest versions are
//! promoted through the full validation gate, and queued canary verdicts
//! are flushed to the manifest. One [`sync_once`] pass is also usable
//! standalone (tests, CLI `sync`).

use crate::registry::ModelRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Outcome of one [`sync_once`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Staged versions promoted (to Active or into a canary).
    pub promoted: usize,
    /// Staged versions whose promotion failed (now Rejected).
    pub rejected: usize,
    /// Canary verdicts flushed to the manifest.
    pub resolutions: usize,
}

/// Promotes every staged version and flushes canary verdicts, once.
/// Promotion failures are absorbed (the registry already marked the
/// candidate Rejected and emitted `SwapRollback`); the report counts them.
pub fn sync_once(registry: &ModelRegistry) -> SyncReport {
    let mut report = SyncReport::default();
    for (model, version) in registry.staged_versions() {
        match registry.promote(&model, version) {
            Ok(_) => report.promoted += 1,
            Err(_) => report.rejected += 1,
        }
    }
    report.resolutions = registry.sync_resolutions().unwrap_or(0);
    report
}

/// A background thread running [`sync_once`] on an interval. Dropping the
/// reloader stops and joins the thread.
#[derive(Debug)]
pub struct Reloader {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Reloader {
    /// Starts the sweep at `poll` cadence.
    pub fn spawn(registry: ModelRegistry, poll: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("clfd-registry-reloader".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    let _ = sync_once(&registry);
                    // Sleep in small slices so shutdown is prompt even with
                    // a long poll interval.
                    let mut remaining = poll;
                    while remaining > Duration::ZERO && !stop_flag.load(Ordering::Relaxed) {
                        let slice = remaining.min(Duration::from_millis(25));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn reloader thread");
        Self { stop, handle: Some(handle) }
    }

    /// Stops the sweep and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Reloader {
    fn drop(&mut self) {
        self.shutdown();
    }
}
