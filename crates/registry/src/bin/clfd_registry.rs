//! `clfd-registry`: operate a model registry root from the command line.
//!
//! ```text
//! clfd-registry init       --root DIR
//! clfd-registry train-demo --root DIR --model ID [--seed N] [--note TEXT]
//! clfd-registry stage      --root DIR --model ID --file ARTIFACT.json \
//!                          [--precision f32|f16|int8] [--note TEXT]
//! clfd-registry promote    --root DIR --model ID --version N [--canary-every N]
//! clfd-registry rollback   --root DIR --model ID
//! clfd-registry status     --root DIR
//! ```
//!
//! `train-demo` trains a smoke-preset CLFD pipeline on synthetic CERT-like
//! data, freezes it to an inference artifact, and stages it — the fastest
//! way to get a promotable version into a fresh root. `promote` runs the
//! full validation gate (decode, shape check, deterministic probe scoring)
//! before the version becomes Active; with `--canary-every N` the registry
//! is configured for canary rollout, which matters for long-running serve
//! processes watching the same root.
//!
//! `stage --precision int8|f16` quantizes an **f32** artifact file before
//! staging: the quantized candidate must first pass the serve crate's
//! accuracy-delta gate against the very f32 artifact it came from
//! (deterministic probes; label-disagreement and score-drift budgets), so
//! a quantized version can never enter the registry unchecked.
//!
//! Exit codes: `0` success, `1` registry/validation failure, `2` usage.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clfd::prelude::*;
use clfd_data::noise::NoiseModel;
use clfd_data::session::{DatasetKind, Session};
use clfd_obs::Obs;
use clfd_registry::{
    ArtifactStore, CanaryConfig, ModelRegistry, PromotionOutcome, RegistryConfig,
};
use clfd_serve::{InferenceArtifact, QuantGate, ServableArtifact};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: clfd-registry <init|train-demo|stage|promote|rollback|status> \
         --root DIR [--model ID] [--version N] [--file F] [--seed N] \
         [--note TEXT] [--canary-every N] [--precision f32|f16|int8]"
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    flags: BTreeMap<String, String>,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let mut flags = BTreeMap::new();
    while let Some(flag) = argv.next() {
        let key = flag.strip_prefix("--")?.to_string();
        let value = argv.next()?;
        flags.insert(key, value);
    }
    Some(Args { command, flags })
}

impl Args {
    fn get(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn get_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)?.parse().map_err(|e| format!("--{key}: {e}"))
    }

    fn opt_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
            None => Ok(default),
        }
    }
}

/// Small deterministic probe set; activity ids 0..3 are valid for any
/// realistically sized vocabulary.
fn probe_set() -> Vec<Session> {
    (0..6)
        .map(|i| Session {
            activities: (0..3 + i % 2).map(|j| ((i + j * 2) % 4) as u32).collect(),
            day: (i % 7) as u32,
        })
        .collect()
}

fn registry_at(root: &str, canary_every: u64) -> Result<ModelRegistry, String> {
    let store = ArtifactStore::open(root).map_err(|e| e.to_string())?;
    let cfg = RegistryConfig {
        probe: probe_set(),
        canary: (canary_every > 0)
            .then(|| CanaryConfig { every: canary_every, ..CanaryConfig::default() }),
        ..RegistryConfig::default()
    };
    // Swap-lifecycle events for this invocation land next to the manifest
    // so `clfd-report` can render the transition timeline.
    let obs = Obs::jsonl(std::path::Path::new(root).join("RUN_registry.jsonl"))
        .unwrap_or_else(|_| Obs::null());
    Ok(ModelRegistry::new(store, cfg, obs))
}

fn run(args: &Args) -> Result<(), String> {
    let root = args.get("root")?;
    match args.command.as_str() {
        "init" => {
            let store = ArtifactStore::open(root).map_err(|e| e.to_string())?;
            store.save().map_err(|e| e.to_string())?;
            println!("initialized registry root {root}");
            Ok(())
        }
        "train-demo" => {
            let model_id = args.get("model")?;
            let seed = args.opt_u64("seed", 17)?;
            let note = args.flags.get("note").cloned().unwrap_or_else(|| {
                format!("train-demo smoke preset, seed {seed}")
            });
            eprintln!("training smoke pipeline (seed {seed})...");
            let split = DatasetKind::Cert.generate(Preset::Smoke, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
            let noisy = NoiseModel::Uniform { eta: 0.2 }.apply(&split.train_labels(), &mut rng);
            let trained = TrainedClfd::builder()
                .preset(Preset::Smoke)
                .seed(seed)
                .fit(&split, &noisy);
            let artifact = InferenceArtifact::freeze(&trained).map_err(|e| e.to_string())?;
            let registry = registry_at(root, 0)?;
            let version = registry
                .stage(model_id, artifact.to_json().as_bytes(), &note)
                .map_err(|e| e.to_string())?;
            println!("staged {model_id}@{version} ({note})");
            Ok(())
        }
        "stage" => {
            let model_id = args.get("model")?;
            let file = args.get("file")?;
            let note = args.flags.get("note").map(String::as_str).unwrap_or("");
            let precision: Precision = args
                .flags
                .get("precision")
                .map_or(Ok(Precision::F32), |p| p.parse())?;
            let mut bytes = std::fs::read(file).map_err(|e| format!("read {file}: {e}"))?;
            if precision != Precision::F32 {
                // Quantize-and-gate before a byte reaches the store: the
                // candidate must track the f32 artifact it came from.
                let f32_artifact = InferenceArtifact::from_json_bytes(&bytes)
                    .map_err(|e| format!("--precision {precision} needs an f32 artifact: {e}"))?;
                let servable =
                    ServableArtifact::quantize_gated(f32_artifact, precision, &QuantGate::default())
                        .map_err(|e| e.to_string())?;
                bytes = servable.to_json().into_bytes();
                eprintln!("quantized {file} to {precision} (accuracy-delta gate passed)");
            }
            let registry = registry_at(root, 0)?;
            let version =
                registry.stage(model_id, &bytes, note).map_err(|e| e.to_string())?;
            println!("staged {model_id}@{version} from {file} ({precision})");
            Ok(())
        }
        "promote" => {
            let model_id = args.get("model")?;
            let version = args.get_u64("version")?;
            let canary_every = args.opt_u64("canary-every", 0)?;
            let registry = registry_at(root, canary_every)?;
            // A long-running serve process resumes the current Active
            // version so the canary (if any) has a baseline.
            if registry.manifest_snapshot().models.iter().any(|m| m.id == model_id) {
                let _ = registry.source_for(model_id);
            }
            match registry.promote(model_id, version).map_err(|e| e.to_string())? {
                PromotionOutcome::Committed => {
                    println!("{model_id}@{version} is now active")
                }
                PromotionOutcome::CanaryStarted => println!(
                    "{model_id}@{version} entered the canary phase \
                     (1 in {canary_every} leases)"
                ),
            }
            Ok(())
        }
        "rollback" => {
            let model_id = args.get("model")?;
            let registry = registry_at(root, 0)?;
            let _ = registry.source_for(model_id); // resume Active + previous
            let reinstated = registry.rollback(model_id).map_err(|e| e.to_string())?;
            println!("{model_id} rolled back; {model_id}@{reinstated} is active again");
            Ok(())
        }
        "status" => {
            let store = ArtifactStore::open(root).map_err(|e| e.to_string())?;
            let manifest = store.manifest();
            if manifest.models.is_empty() {
                println!("registry {root}: no models");
                return Ok(());
            }
            for model in &manifest.models {
                println!("model {} (active: v{})", model.id, model.active);
                for v in &model.versions {
                    println!(
                        "  v{:<4} {:<9} {:>9} bytes  {}  {}",
                        v.version, v.state.to_string(), v.bytes, v.checksum, v.note
                    );
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else { return usage() };
    if args.command == "--help" || args.command == "-h" || args.command == "help" {
        println!("clfd-registry: manage versioned inference artifacts with validated promotion");
        usage();
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("clfd-registry: {msg}");
            ExitCode::FAILURE
        }
    }
}
