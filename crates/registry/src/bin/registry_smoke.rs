//! `registry_smoke`: the CI gate for the zero-downtime registry.
//!
//! ```text
//! registry_smoke [--root DIR] [--requests N]
//! ```
//!
//! End to end, in one process: stage and promote an artifact, serve a
//! sustained request load through an engine wired to the registry, hot-swap
//! to a second version mid-load, then stage a corrupt candidate and prove
//! it is rejected while serving never hiccups. The process exits non-zero
//! if a single request fails, a response matches neither installed
//! version, or the corrupt candidate slips through.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clfd::prelude::*;
use clfd::{ClfdSnapshot, CorrectorSnapshot};
use clfd_data::session::Session;
use clfd_nn::snapshot::Snapshot;
use clfd_obs::{Event, MemorySink, Obs};
use clfd_registry::{ArtifactStore, ModelRegistry, RegistryConfig, RegistryError};
use clfd_serve::{Engine, EngineConfig, InferenceArtifact};
use clfd_tensor::Matrix;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const VOCAB: usize = 6;

/// Hand-packed corrector-shaped artifact (no training: the smoke must be
/// fast). `variant` perturbs every weight so the two versions disagree.
fn artifact(variant: u32) -> InferenceArtifact {
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let (dim, hid) = (cfg.embed_dim, cfg.hidden);
    let shift = variant as f32 * 0.37;
    let wave =
        move |scale: f32| move |r: usize, c: usize| ((r * 13 + c * 7) as f32 * scale + shift).sin();
    let mut encoder = Vec::new();
    for layer in 0..cfg.lstm_layers {
        let in_dim = if layer == 0 { dim } else { hid };
        encoder.push(Matrix::from_fn(in_dim, 4 * hid, wave(0.11 + layer as f32)));
        encoder.push(Matrix::from_fn(hid, 4 * hid, wave(0.07 + layer as f32)));
        encoder.push(Matrix::from_fn(1, 4 * hid, wave(0.05)));
    }
    let snapshot = ClfdSnapshot {
        embeddings: Snapshot { values: vec![Matrix::from_fn(VOCAB, dim, wave(0.19))] },
        corrector: Some(CorrectorSnapshot {
            encoder: Snapshot { values: encoder },
            head: Snapshot {
                values: vec![
                    Matrix::from_fn(hid, hid, wave(0.03)),
                    Matrix::zeros(1, hid),
                    Matrix::from_fn(hid, 2, wave(0.23)),
                    Matrix::zeros(1, 2),
                ],
            },
        }),
        detector: None,
    };
    InferenceArtifact::from_snapshot(&snapshot, cfg).expect("hand-packed snapshot freezes")
}

fn traffic(n: usize) -> Vec<Session> {
    (0..n)
        .map(|i| Session {
            activities: (0..3 + i % 3).map(|j| ((i + j * 5) % VOCAB) as u32).collect(),
            day: (i % 7) as u32,
        })
        .collect()
}

fn same(a: &Prediction, b: &Prediction) -> bool {
    a.label == b.label
        && a.malicious_score.to_bits() == b.malicious_score.to_bits()
        && a.confidence.to_bits() == b.confidence.to_bits()
}

fn run(root: &str, requests: usize) -> Result<(), String> {
    let _ = std::fs::remove_dir_all(root);
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::from_arc(sink.clone() as Arc<dyn clfd_obs::Recorder>);
    let probe = traffic(4);
    let cfg = RegistryConfig { probe, ..RegistryConfig::default() };
    let registry = ModelRegistry::new(
        ArtifactStore::open(root).map_err(|e| e.to_string())?,
        cfg,
        obs,
    );

    let v1_json = artifact(0).to_json();
    let v1 = registry.stage("fraud", v1_json.as_bytes(), "smoke v1").map_err(|e| e.to_string())?;
    registry.promote("fraud", v1).map_err(|e| format!("promote v1: {e}"))?;

    let engine = Arc::new(Engine::from_source(
        registry.source_for("fraud").map_err(|e| e.to_string())?,
        EngineConfig { workers: 2, ..EngineConfig::default() },
        Obs::null(),
        None,
    ));

    // Precompute what each version predicts for every traffic session.
    let sessions = traffic(10);
    let refs: Vec<&Session> = sessions.iter().collect();
    let expected_v1 = artifact(0).predict(&refs);
    let expected_v2 = artifact(1).predict(&refs);

    // Sustained load from two submitter threads while the main thread
    // swaps versions and feeds the registry a corrupt candidate.
    let unmatched = Arc::new(AtomicUsize::new(0));
    let submitters: Vec<_> = (0..2)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let sessions = sessions.clone();
            let expected_v1 = expected_v1.clone();
            let expected_v2 = expected_v2.clone();
            let unmatched = Arc::clone(&unmatched);
            let per_thread = requests / 2;
            std::thread::spawn(move || -> Result<usize, String> {
                for i in 0..per_thread {
                    let idx = (t + i * 2) % sessions.len();
                    let pred = engine
                        .submit(&sessions[idx])
                        .map_err(|e| format!("submit failed: {e}"))?
                        .wait()
                        .map_err(|e| format!("request failed mid-swap: {e}"))?;
                    if !same(&pred, &expected_v1[idx]) && !same(&pred, &expected_v2[idx]) {
                        unmatched.fetch_add(1, Ordering::Relaxed);
                    }
                    if i % 10 == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                Ok(per_thread)
            })
        })
        .collect();

    // Hot-swap to v2 while the load runs.
    std::thread::sleep(Duration::from_millis(10));
    let v2_json = artifact(1).to_json();
    let v2 = registry.stage("fraud", v2_json.as_bytes(), "smoke v2").map_err(|e| e.to_string())?;
    registry.promote("fraud", v2).map_err(|e| format!("promote v2 under load: {e}"))?;

    // A corrupt candidate must be rejected while serving continues.
    let mut torn = v1_json.into_bytes();
    torn.truncate(torn.len() / 3);
    let v3 = registry.stage("fraud", &torn, "torn write").map_err(|e| e.to_string())?;
    match registry.promote("fraud", v3) {
        Err(RegistryError::Corrupt(_)) => {}
        Err(other) => return Err(format!("expected Corrupt rejection, got: {other}")),
        Ok(_) => return Err("corrupt candidate was promoted".into()),
    }
    if registry.active_version("fraud") != Some(v2) {
        return Err("active version changed after the corrupt candidate".into());
    }

    let mut served = 0;
    for handle in submitters {
        served += handle.join().map_err(|_| "submitter panicked".to_string())??;
    }
    if unmatched.load(Ordering::Relaxed) != 0 {
        return Err(format!(
            "{} responses matched neither installed version",
            unmatched.load(Ordering::Relaxed)
        ));
    }

    // The lifecycle was observable: two commits, one rollback.
    let events = sink.events();
    let commits = events.iter().filter(|e| matches!(e, Event::SwapCommit { .. })).count();
    let rollbacks = events.iter().filter(|e| matches!(e, Event::SwapRollback { .. })).count();
    if commits != 2 || rollbacks != 1 {
        return Err(format!("expected 2 commits + 1 rollback, saw {commits} + {rollbacks}"));
    }

    println!(
        "registry smoke ok: {served} requests served across a hot swap, \
         corrupt candidate rejected, {commits} commits / {rollbacks} rollback observed"
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut root = "REGISTRY_SMOKE".to_string();
    let mut requests = 100usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = v,
                None => return ExitCode::from(2),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => requests = v,
                None => return ExitCode::from(2),
            },
            _ => {
                eprintln!("usage: registry_smoke [--root DIR] [--requests N]");
                return ExitCode::from(2);
            }
        }
    }
    match run(&root, requests) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("registry_smoke: {msg}");
            ExitCode::FAILURE
        }
    }
}
