//! Deterministic fault injection for the serve/registry path.
//!
//! Mirrors the trainer-side `clfd_nn::fault` idiom: a [`ServeFaultPlan`]
//! built up-front names which *operation index* each fault fires at, and a
//! [`ServeFaultInjector`] owns the plan plus monotonically increasing
//! operation counters, recording every fault it actually fired so tests can
//! assert the injection happened. Loads and swaps count independently: the
//! third load and the third swap are different operations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// Flip one byte of the artifact's bytes after the checksum is taken,
    /// simulating in-memory/decode-path corruption that checksums cannot
    /// catch.
    CorruptByte {
        /// Byte offset to damage (clamped to the buffer).
        offset: usize,
    },
    /// Keep only the first `keep` bytes of the artifact, simulating a torn
    /// or truncated read.
    Truncate {
        /// Number of leading bytes to keep.
        keep: usize,
    },
    /// Sleep this long inside the load, simulating a slow disk or cold
    /// cache. The load still succeeds.
    SlowLoad {
        /// Milliseconds to stall.
        ms: u64,
    },
    /// Fail the load with a transient I/O error — the retry/backoff path's
    /// food.
    FailLoad,
    /// Panic inside the commit step, after validation passed but before
    /// the new version lands.
    PanicMidSwap,
}

/// Which operation stream a fault attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOp {
    /// Reading + decoding an artifact file (each retry attempt counts).
    Load,
    /// Committing a validated candidate into the active slot.
    Swap,
}

/// A record of a fault that actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// Which stream it fired on.
    pub op: ServeOp,
    /// The operation index it fired at (0-based within its stream).
    pub index: u64,
    /// What was injected.
    pub fault: ServeFault,
}

/// A schedule of faults keyed by operation index.
#[derive(Debug, Clone, Default)]
pub struct ServeFaultPlan {
    loads: Vec<(u64, ServeFault)>,
    swaps: Vec<(u64, ServeFault)>,
}

impl ServeFaultPlan {
    /// An empty plan: no faults fire.
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects `fault` at the `index`-th load operation (0-based). A later
    /// registration for the same index replaces the earlier one.
    pub fn load_at(mut self, index: u64, fault: ServeFault) -> Self {
        self.loads.retain(|(i, _)| *i != index);
        self.loads.push((index, fault));
        self
    }

    /// Injects `fault` at the `index`-th swap operation (0-based). A later
    /// registration for the same index replaces the earlier one.
    pub fn swap_at(mut self, index: u64, fault: ServeFault) -> Self {
        self.swaps.retain(|(i, _)| *i != index);
        self.swaps.push((index, fault));
        self
    }

    fn lookup(&self, op: ServeOp, index: u64) -> Option<ServeFault> {
        let table = match op {
            ServeOp::Load => &self.loads,
            ServeOp::Swap => &self.swaps,
        };
        table.iter().find(|(i, _)| *i == index).map(|(_, f)| *f)
    }
}

/// Owns a [`ServeFaultPlan`] and the live operation counters.
#[derive(Debug, Default)]
pub struct ServeFaultInjector {
    plan: ServeFaultPlan,
    loads: AtomicU64,
    swaps: AtomicU64,
    fired: Mutex<Vec<FiredFault>>,
}

impl ServeFaultInjector {
    /// Wraps a plan with zeroed counters.
    pub fn new(plan: ServeFaultPlan) -> Self {
        Self { plan, ..Self::default() }
    }

    /// Advances the counter for `op` and returns the fault scheduled at
    /// the *previous* count, if any, recording it as fired.
    ///
    /// `SlowLoad` is applied here directly (the sleep happens inside this
    /// call); all other faults are returned for the caller to act on,
    /// because only the caller knows how to corrupt its buffer or panic at
    /// the right spot.
    pub fn next(&self, op: ServeOp) -> Option<ServeFault> {
        let counter = match op {
            ServeOp::Load => &self.loads,
            ServeOp::Swap => &self.swaps,
        };
        let index = counter.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.lookup(op, index)?;
        self.fired
            .lock()
            .expect("fault record lock")
            .push(FiredFault { op, index, fault });
        if let ServeFault::SlowLoad { ms } = fault {
            std::thread::sleep(Duration::from_millis(ms));
        }
        Some(fault)
    }

    /// Every fault that has fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired.lock().expect("fault record lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_swap_streams_count_independently() {
        let plan = ServeFaultPlan::new()
            .load_at(1, ServeFault::FailLoad)
            .swap_at(0, ServeFault::PanicMidSwap);
        let inj = ServeFaultInjector::new(plan);
        assert_eq!(inj.next(ServeOp::Load), None); // load #0
        assert_eq!(inj.next(ServeOp::Swap), Some(ServeFault::PanicMidSwap)); // swap #0
        assert_eq!(inj.next(ServeOp::Load), Some(ServeFault::FailLoad)); // load #1
        assert_eq!(inj.next(ServeOp::Load), None); // load #2
        let fired = inj.fired();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].op, ServeOp::Swap);
        assert_eq!(fired[1], FiredFault {
            op: ServeOp::Load,
            index: 1,
            fault: ServeFault::FailLoad,
        });
    }

    #[test]
    fn later_registration_replaces_earlier_at_same_index() {
        let plan = ServeFaultPlan::new()
            .load_at(0, ServeFault::FailLoad)
            .load_at(0, ServeFault::Truncate { keep: 8 });
        let inj = ServeFaultInjector::new(plan);
        assert_eq!(inj.next(ServeOp::Load), Some(ServeFault::Truncate { keep: 8 }));
    }
}
