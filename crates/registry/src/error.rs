//! Typed registry failures.

use std::fmt;

/// Everything that can go wrong between staging an artifact file and
/// serving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Filesystem trouble (read, write, rename, create-dir). Transient by
    /// assumption: loads are retried with backoff before giving up.
    Io(String),
    /// The artifact file's bytes do not match the checksum recorded when
    /// it was staged — disk corruption or a torn write, detected *before*
    /// attempting a decode.
    ChecksumMismatch {
        /// The model the file belongs to.
        model: String,
        /// The candidate version.
        version: u64,
    },
    /// The artifact file failed to decode or validate (truncated JSON,
    /// shape-inconsistent matrices). Permanent: retries cannot help.
    Corrupt(String),
    /// A promotion gate rejected the candidate; the reason names the gate.
    Rejected {
        /// The model whose candidate was rejected.
        model: String,
        /// The rejected candidate version.
        version: u64,
        /// Which gate failed and why.
        reason: String,
    },
    /// The scoring or commit path panicked mid-swap; the previous active
    /// version is still serving.
    SwapPanicked {
        /// The model whose swap panicked.
        model: String,
        /// The candidate version that never landed.
        version: u64,
        /// Best-effort panic payload.
        detail: String,
    },
    /// The manifest does not know this model id.
    UnknownModel(String),
    /// The manifest knows the model but not this version.
    UnknownVersion {
        /// The model that was found.
        model: String,
        /// The version that was not.
        version: u64,
    },
    /// A lifecycle operation that the version's current state forbids
    /// (e.g. promoting a `Retired` version, rolling back with no prior).
    InvalidState {
        /// The model involved.
        model: String,
        /// What was attempted and why the state forbids it.
        detail: String,
    },
    /// The manifest file itself failed to parse.
    Manifest(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "registry I/O failure: {msg}"),
            Self::ChecksumMismatch { model, version } => {
                write!(f, "artifact {model}@{version} fails its recorded checksum")
            }
            Self::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            Self::Rejected { model, version, reason } => {
                write!(f, "candidate {model}@{version} rejected: {reason}")
            }
            Self::SwapPanicked { model, version, detail } => {
                write!(f, "swap of {model}@{version} panicked: {detail}")
            }
            Self::UnknownModel(model) => write!(f, "unknown model {model:?}"),
            Self::UnknownVersion { model, version } => {
                write!(f, "model {model:?} has no version {version}")
            }
            Self::InvalidState { model, detail } => {
                write!(f, "invalid lifecycle operation on {model:?}: {detail}")
            }
            Self::Manifest(msg) => write!(f, "malformed manifest: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl RegistryError {
    /// Whether retrying the same operation can plausibly succeed
    /// (I/O hiccups), as opposed to deterministic rejections (corruption,
    /// failed gates) where retrying only burns time.
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::Io(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RegistryError::Rejected {
            model: "fraud".into(),
            version: 3,
            reason: "probe accuracy dropped".into(),
        };
        assert!(e.to_string().contains("fraud@3"));
        assert!(e.to_string().contains("probe accuracy"));
        assert!(RegistryError::Io("disk".into()).is_transient());
        assert!(!RegistryError::Corrupt("bad json".into()).is_transient());
    }
}
