//! The model registry: validated promotion, canary observation, rollback.
//!
//! A [`ModelRegistry`] wraps an [`ArtifactStore`] with the in-memory serving
//! side: one [`Slot`] per model holding the Active / previous / Canary
//! versions behind a [`Swap`] cell, so a serving [`Engine`] wired through
//! [`ModelRegistry::source_for`] picks up a promoted version at its next
//! batch lease without dropping a single in-flight request.
//!
//! Promotion is gated: a candidate must decode, pass shape validation, score
//! the probe set deterministically (bit-identical across two runs), and not
//! regress probe accuracy beyond the configured budget. With a
//! [`CanaryConfig`], a gated candidate first serves every N-th lease while
//! the registry compares its live error rate and latency against the Active
//! version, committing or rolling back automatically. Every transition is
//! observable: `SwapStart` / `SwapCommit` / `SwapRollback` events feed the
//! `clfd_registry_swaps_total{model,outcome}` metric.
//!
//! [`Engine`]: clfd_serve::Engine

use crate::error::RegistryError;
use crate::fault::{ServeFault, ServeFaultInjector, ServeOp};
use crate::store::{ArtifactStore, Manifest, VersionState};
use crate::swap::Swap;
use clfd::Prediction;
use clfd_data::{Label, Session};
use clfd_obs::{Event, Obs};
use clfd_serve::{ArtifactLease, ArtifactSource, LeaseObserver, ServableArtifact};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// How a canary phase routes and judges traffic.
#[derive(Debug, Clone)]
pub struct CanaryConfig {
    /// Route every `every`-th lease to the canary (2 = half, 10 = a tenth).
    pub every: u64,
    /// Observe at least this many canary-scored requests before judging.
    pub min_requests: u64,
    /// Roll back if the canary's error rate exceeds the Active version's by
    /// more than this (absolute).
    pub max_error_rate_delta: f64,
    /// Roll back if the canary's mean per-request scoring latency exceeds
    /// the Active version's by more than this factor.
    pub max_latency_factor: f64,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        Self { every: 4, min_requests: 64, max_error_rate_delta: 0.01, max_latency_factor: 3.0 }
    }
}

/// Registry behaviour knobs.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Sessions every candidate must score during validation.
    pub probe: Vec<Session>,
    /// Ground-truth labels for the probe set; when non-empty (and an Active
    /// version exists), candidates whose probe accuracy drops more than
    /// [`max_accuracy_drop`](Self::max_accuracy_drop) below the Active
    /// version's are rejected.
    pub probe_labels: Vec<Label>,
    /// Largest tolerated probe-accuracy drop vs. the Active version.
    pub max_accuracy_drop: f64,
    /// Canary phase configuration; `None` promotes straight to Active.
    pub canary: Option<CanaryConfig>,
    /// How many times to attempt a load before giving up on transient I/O
    /// failures (minimum 1).
    pub load_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            probe: Vec::new(),
            probe_labels: Vec::new(),
            max_accuracy_drop: 0.02,
            canary: None,
            load_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
        }
    }
}

/// What [`ModelRegistry::promote`] did with a gated candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionOutcome {
    /// The candidate is Active; the swap committed.
    Committed,
    /// The candidate entered the canary phase; live traffic decides.
    CanaryStarted,
}

/// Live scoring statistics for one served version.
#[derive(Debug, Default)]
struct StatsWindow {
    requests: AtomicU64,
    errors: AtomicU64,
    score_us: AtomicU64,
}

impl StatsWindow {
    fn record(&self, score_us: u64, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.score_us.fetch_add(score_us, Ordering::Relaxed);
    }

    /// (requests, errors, total score microseconds).
    fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.score_us.load(Ordering::Relaxed),
        )
    }
}

/// One loaded, servable artifact version.
#[derive(Debug)]
struct VersionedArtifact {
    version: u64,
    /// `"<model>@<version>"` — the serve-side metric label.
    label: Arc<str>,
    artifact: Arc<ServableArtifact>,
    window: StatsWindow,
}

impl VersionedArtifact {
    fn new(model: &str, version: u64, artifact: Arc<ServableArtifact>) -> Arc<Self> {
        Arc::new(Self {
            version,
            label: format!("{model}@{version}").into(),
            artifact,
            window: StatsWindow::default(),
        })
    }
}

/// The atomically swapped per-model serving state. Transitions build a new
/// state and install it with a single [`Swap::store`], so a lease sees
/// either entirely the old state or entirely the new one.
#[derive(Debug, Default)]
struct SlotState {
    active: Option<Arc<VersionedArtifact>>,
    previous: Option<Arc<VersionedArtifact>>,
    canary: Option<Arc<VersionedArtifact>>,
}

/// One model's serving slot.
#[derive(Debug)]
struct Slot {
    model: String,
    state: Swap<SlotState>,
    leases: AtomicU64,
    /// Serializes canary verdicts so concurrent workers cannot both resolve
    /// the same canary.
    decision: Mutex<()>,
}

impl Slot {
    fn new(model: &str) -> Arc<Self> {
        Arc::new(Self {
            model: model.to_string(),
            state: Swap::new(Arc::new(SlotState::default())),
            leases: AtomicU64::new(0),
            decision: Mutex::new(()),
        })
    }
}

/// A manifest update owed to an observer-side canary verdict. Verdicts fire
/// on scoring threads, which must not block on manifest I/O; they queue here
/// and [`ModelRegistry::sync_resolutions`] applies them.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Resolution {
    CanaryPromoted { model: String, version: u64, prior: Option<u64> },
    CanaryRejected { model: String, version: u64 },
}

struct RegistryInner {
    store: Mutex<ArtifactStore>,
    cfg: RegistryConfig,
    obs: Obs,
    slots: RwLock<BTreeMap<String, Arc<Slot>>>,
    resolutions: Arc<Mutex<Vec<Resolution>>>,
    faults: Option<Arc<ServeFaultInjector>>,
}

/// See the [module docs](self).
#[derive(Clone)]
pub struct ModelRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry").finish_non_exhaustive()
    }
}

/// Judges finished canary windows and accumulates per-version stats; one is
/// attached to every lease a [`RegistrySource`] hands out.
struct SlotObserver {
    slot: Arc<Slot>,
    obs: Obs,
    canary: Option<CanaryConfig>,
    resolutions: Arc<Mutex<Vec<Resolution>>>,
}

impl SlotObserver {
    /// Applies a canary verdict if the observation window is full. Runs
    /// under the slot's decision lock so only one worker resolves.
    fn maybe_resolve(&self) {
        let Some(cfg) = &self.canary else { return };
        let _guard = self.slot.decision.lock().expect("canary decision lock");
        let state = self.slot.state.load();
        let Some(canary) = state.canary.as_ref() else { return };
        let (c_req, c_err, c_us) = canary.window.snapshot();
        if c_req < cfg.min_requests {
            return;
        }
        let c_err_rate = c_err as f64 / c_req as f64;
        let c_mean_us = c_us as f64 / c_req as f64;
        let (a_err_rate, a_mean_us) = match state.active.as_ref() {
            Some(active) => {
                let (a_req, a_err, a_us) = active.window.snapshot();
                if a_req > 0 {
                    (a_err as f64 / a_req as f64, a_us as f64 / a_req as f64)
                } else {
                    (0.0, 0.0)
                }
            }
            None => (0.0, 0.0),
        };
        let mut reason = None;
        if c_err_rate > a_err_rate + cfg.max_error_rate_delta {
            reason = Some(format!(
                "canary error rate {c_err_rate:.4} exceeds active {a_err_rate:.4} + {:.4}",
                cfg.max_error_rate_delta
            ));
        } else if a_mean_us > 0.0 && c_mean_us > a_mean_us * cfg.max_latency_factor {
            reason = Some(format!(
                "canary mean latency {c_mean_us:.0}us exceeds {:.1}x active {a_mean_us:.0}us",
                cfg.max_latency_factor
            ));
        }
        let model = self.slot.model.clone();
        let version = canary.version;
        let prior = state.active.as_ref().map(|a| a.version);
        match reason {
            Some(reason) => {
                // Regressed: drop the canary, Active keeps serving.
                self.slot.state.store(Arc::new(SlotState {
                    active: state.active.clone(),
                    previous: state.previous.clone(),
                    canary: None,
                }));
                self.obs.emit(Event::SwapRollback {
                    model: model.clone(),
                    version,
                    active: prior,
                    reason,
                });
                self.push(Resolution::CanaryRejected { model, version });
            }
            None => {
                // Healthy: the canary becomes Active, Active becomes the
                // rollback target.
                self.slot.state.store(Arc::new(SlotState {
                    active: Some(Arc::clone(canary)),
                    previous: state.active.clone(),
                    canary: None,
                }));
                self.obs.emit(Event::SwapCommit { model: model.clone(), version, prior });
                self.push(Resolution::CanaryPromoted { model, version, prior });
            }
        }
    }

    fn push(&self, r: Resolution) {
        self.resolutions.lock().expect("resolutions lock").push(r);
    }
}

impl LeaseObserver for SlotObserver {
    fn observe(&self, model: &str, score_us: u64, ok: bool) {
        let state = self.slot.state.load();
        if let Some(canary) = state.canary.as_ref() {
            if &*canary.label == model {
                canary.window.record(score_us, ok);
                self.maybe_resolve();
                return;
            }
        }
        if let Some(active) = state.active.as_ref() {
            if &*active.label == model {
                active.window.record(score_us, ok);
            }
        }
        // A retired version's stats are no longer interesting; drop them.
    }
}

/// An [`ArtifactSource`] backed by one registry slot. Each lease routes to
/// the canary (pseudo-randomly one in `every`, when one is live) or the
/// Active version, and carries an observer so scoring outcomes feed the
/// canary verdict.
pub struct RegistrySource {
    slot: Arc<Slot>,
    observer: Arc<SlotObserver>,
    canary_every: u64,
}

impl std::fmt::Debug for RegistrySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistrySource").field("model", &self.slot.model).finish()
    }
}

/// SplitMix64 finalizer. Canary routing hashes the lease counter instead
/// of taking it modulo `every`: the engine leases once per drained batch,
/// and batch cadence can phase-lock with periodic traffic patterns so a
/// bare modulo routes the canary a biased slice of the load. Hashing
/// decorrelates routing from batch structure while staying deterministic
/// for a given counter value.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ArtifactSource for RegistrySource {
    fn lease(&self) -> ArtifactLease {
        let n = self.slot.leases.fetch_add(1, Ordering::Relaxed);
        let state = self.slot.state.load();
        let chosen = match state.canary.as_ref() {
            Some(canary)
                if self.canary_every > 0 && splitmix64(n).is_multiple_of(self.canary_every) =>
            {
                canary
            }
            _ => state.active.as_ref().unwrap_or_else(|| {
                // Unreachable through the public API: `source_for` refuses
                // to build a source for a model with no Active version, and
                // no transition ever clears `active`. The serving engine
                // catches lease panics and answers typed errors regardless.
                panic!("model {:?} has no active version", self.slot.model)
            }),
        };
        ArtifactLease::new(Arc::clone(&chosen.label), Arc::clone(&chosen.artifact))
            .with_observer(Arc::clone(&self.observer) as Arc<dyn LeaseObserver>)
    }

    /// Submit-time validation always checks against the Active version,
    /// never the canary: a canary with a narrower vocabulary must not
    /// reject traffic at the engine's front door — it has to *score* (and
    /// fail) its share of live requests for the error-rate window to see
    /// the regression and roll it back.
    fn validation_hint(&self) -> Option<Arc<ServableArtifact>> {
        self.slot.state.load().active.as_ref().map(|v| Arc::clone(&v.artifact))
    }
}

fn predictions_identical(a: &[Prediction], b: &[Prediction]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.label == y.label
                && x.malicious_score.to_bits() == y.malicious_score.to_bits()
                && x.confidence.to_bits() == y.confidence.to_bits()
        })
}

fn accuracy(preds: &[Prediction], labels: &[Label]) -> f64 {
    if preds.is_empty() || preds.len() != labels.len() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p.label == **l).count();
    correct as f64 / preds.len() as f64
}

impl ModelRegistry {
    /// Wraps a store. `obs` receives every swap-lifecycle event.
    pub fn new(store: ArtifactStore, cfg: RegistryConfig, obs: Obs) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                store: Mutex::new(store),
                cfg,
                obs,
                slots: RwLock::new(BTreeMap::new()),
                resolutions: Arc::new(Mutex::new(Vec::new())),
                faults: None,
            }),
        }
    }

    /// Attaches a fault injector (tests and resilience drills only). Must
    /// be called before the registry is shared.
    ///
    /// # Panics
    /// Panics if the registry has already been cloned.
    pub fn with_faults(mut self, faults: Arc<ServeFaultInjector>) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("with_faults must run before the registry is shared")
            .faults = Some(faults);
        self
    }

    fn slot(&self, model: &str) -> Arc<Slot> {
        if let Some(slot) = self.inner.slots.read().expect("slots lock").get(model) {
            return Arc::clone(slot);
        }
        let mut slots = self.inner.slots.write().expect("slots lock");
        Arc::clone(slots.entry(model.to_string()).or_insert_with(|| Slot::new(model)))
    }

    /// Stages artifact bytes as the model's next version. See
    /// [`ArtifactStore::stage`].
    pub fn stage(&self, model: &str, json: &[u8], note: &str) -> Result<u64, RegistryError> {
        self.inner.store.lock().expect("store lock").stage(model, json, note)
    }

    /// Reads a version's bytes (checksum-verified), applies any injected
    /// load faults, decodes, and validates — retrying transient failures
    /// with exponential backoff per
    /// [`RegistryConfig::load_attempts`]/[`RegistryConfig::backoff_base_ms`].
    fn load_artifact(
        &self,
        model: &str,
        version: u64,
    ) -> Result<Arc<ServableArtifact>, RegistryError> {
        let attempts = self.inner.cfg.load_attempts.max(1);
        let mut last = RegistryError::Io("no load attempted".into());
        for attempt in 0..attempts {
            match self.try_load_once(model, version) {
                Ok(artifact) => return Ok(artifact),
                Err(e) if e.is_transient() && attempt + 1 < attempts => {
                    let backoff = self
                        .inner
                        .cfg
                        .backoff_base_ms
                        .saturating_mul(1 << attempt.min(20))
                        .min(self.inner.cfg.backoff_cap_ms);
                    std::thread::sleep(Duration::from_millis(backoff));
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    fn try_load_once(
        &self,
        model: &str,
        version: u64,
    ) -> Result<Arc<ServableArtifact>, RegistryError> {
        let mut bytes =
            self.inner.store.lock().expect("store lock").load_bytes(model, version)?;
        if let Some(injector) = &self.inner.faults {
            match injector.next(ServeOp::Load) {
                Some(ServeFault::FailLoad) => {
                    return Err(RegistryError::Io("injected transient load failure".into()))
                }
                Some(ServeFault::Truncate { keep }) => bytes.truncate(keep),
                Some(ServeFault::CorruptByte { offset }) if !bytes.is_empty() => {
                    let i = offset.min(bytes.len() - 1);
                    bytes[i] ^= 0x3f;
                }
                // SlowLoad sleeps inside `next`; nothing else applies here.
                _ => {}
            }
        }
        // Sniffs the wire format: quantized bodies (admitted at stage time
        // through the serve crate's accuracy-delta gate) and f32 artifacts
        // both decode into the one servable form every slot holds.
        let artifact = ServableArtifact::from_json_bytes(&bytes)
            .map_err(|e| RegistryError::Corrupt(format!("{model}@{version}: {e}")))?;
        Ok(Arc::new(artifact))
    }

    /// Runs the promotion gates against a loaded candidate. Returns the
    /// rejection reason, if any.
    fn gate(
        &self,
        candidate: &ServableArtifact,
        active: Option<&ServableArtifact>,
    ) -> Option<String> {
        let cfg = &self.inner.cfg;
        let probe: Vec<&Session> = cfg.probe.iter().collect();
        for (i, session) in probe.iter().enumerate() {
            if let Err(e) = candidate.validate_session(session) {
                return Some(format!("probe session {i} invalid for candidate: {e}"));
            }
        }
        if probe.is_empty() {
            return None;
        }
        let first = candidate.predict(&probe);
        let second = candidate.predict(&probe);
        if !predictions_identical(&first, &second) {
            return Some("candidate probe predictions are not deterministic".into());
        }
        if !cfg.probe_labels.is_empty() && cfg.probe_labels.len() == probe.len() {
            if let Some(active) = active {
                let candidate_acc = accuracy(&first, &cfg.probe_labels);
                let active_acc = accuracy(&active.predict(&probe), &cfg.probe_labels);
                if active_acc - candidate_acc > cfg.max_accuracy_drop {
                    return Some(format!(
                        "probe accuracy {candidate_acc:.4} drops more than {:.4} below \
                         active {active_acc:.4}",
                        cfg.max_accuracy_drop
                    ));
                }
            }
        }
        None
    }

    /// Validates a staged version and promotes it: straight to Active when
    /// the model has no Active version yet or no canary is configured,
    /// otherwise into the canary phase where live traffic decides.
    ///
    /// Emits `SwapStart` before validation and `SwapCommit` /
    /// `SwapRollback` for the outcome. Any failure — unreadable file,
    /// corrupt bytes, failed gate, injected mid-swap panic — leaves the
    /// previous Active version serving and marks the candidate Rejected in
    /// the manifest.
    ///
    /// # Errors
    /// Every failure is a typed [`RegistryError`]; the registry never
    /// serves a candidate that did not pass the gates.
    pub fn promote(&self, model: &str, version: u64) -> Result<PromotionOutcome, RegistryError> {
        {
            let store = self.inner.store.lock().expect("store lock");
            let entry = store.entry(model, version)?;
            match entry.state {
                VersionState::Staged => {}
                other => {
                    return Err(RegistryError::InvalidState {
                        model: model.to_string(),
                        detail: format!("cannot promote version {version} from state {other}"),
                    })
                }
            }
        }
        let slot = self.slot(model);
        if slot.state.load().canary.is_some() {
            return Err(RegistryError::InvalidState {
                model: model.to_string(),
                detail: "a canary is already in flight; resolve it first".into(),
            });
        }
        self.inner.obs.emit(Event::SwapStart { model: model.to_string(), version });
        match self.promote_inner(model, version, &slot) {
            Ok(outcome) => Ok(outcome),
            Err(e) => {
                let state = slot.state.load();
                self.inner.obs.emit(Event::SwapRollback {
                    model: model.to_string(),
                    version,
                    active: state.active.as_ref().map(|a| a.version),
                    reason: e.to_string(),
                });
                // Mark the candidate Rejected; best-effort (the promote
                // error is the one worth surfacing).
                let _ = self
                    .inner
                    .store
                    .lock()
                    .expect("store lock")
                    .set_state(model, version, VersionState::Rejected);
                Err(e)
            }
        }
    }

    fn promote_inner(
        &self,
        model: &str,
        version: u64,
        slot: &Arc<Slot>,
    ) -> Result<PromotionOutcome, RegistryError> {
        let artifact = self.load_artifact(model, version)?;
        let state = slot.state.load();
        let active_artifact = state.active.as_ref().map(|a| Arc::clone(&a.artifact));
        if let Some(reason) = self.gate(&artifact, active_artifact.as_deref()) {
            return Err(RegistryError::Rejected {
                model: model.to_string(),
                version,
                reason,
            });
        }
        let candidate = VersionedArtifact::new(model, version, artifact);
        let canary_phase = self.inner.cfg.canary.is_some() && state.active.is_some();
        let next = if canary_phase {
            SlotState {
                active: state.active.clone(),
                previous: state.previous.clone(),
                canary: Some(Arc::clone(&candidate)),
            }
        } else {
            SlotState {
                active: Some(Arc::clone(&candidate)),
                previous: state.active.clone(),
                canary: None,
            }
        };
        // The single commit point. An injected (or real) panic between the
        // fault hook and the store must leave the old state serving — the
        // store either happened or it did not; there is no partial state.
        let faults = self.inner.faults.clone();
        let slot_ref = Arc::clone(slot);
        let commit = catch_unwind(AssertUnwindSafe(move || {
            if let Some(injector) = &faults {
                if matches!(injector.next(ServeOp::Swap), Some(ServeFault::PanicMidSwap)) {
                    panic!("injected mid-swap panic");
                }
            }
            slot_ref.state.store(Arc::new(next));
        }));
        if let Err(payload) = commit {
            return Err(RegistryError::SwapPanicked {
                model: model.to_string(),
                version,
                detail: panic_detail(payload.as_ref()),
            });
        }
        let prior = state.active.as_ref().map(|a| a.version);
        let mut store = self.inner.store.lock().expect("store lock");
        if canary_phase {
            store.set_state(model, version, VersionState::Canary)?;
            Ok(PromotionOutcome::CanaryStarted)
        } else {
            store.set_state(model, version, VersionState::Active)?;
            if let Some(prior) = prior {
                store.set_state(model, prior, VersionState::Retired)?;
            }
            store.set_active(model, version)?;
            drop(store);
            self.inner.obs.emit(Event::SwapCommit { model: model.to_string(), version, prior });
            Ok(PromotionOutcome::Committed)
        }
    }

    /// Manually reinstates the previous Active version: the in-memory
    /// predecessor when this process performed the swap, otherwise the
    /// manifest's most recent Retired version (a restarted process still
    /// has a rollback target). The rolled-back version is marked Rejected
    /// so it cannot serve again.
    ///
    /// # Errors
    /// [`RegistryError::InvalidState`] when the model has no previous
    /// version to fall back to.
    pub fn rollback(&self, model: &str) -> Result<u64, RegistryError> {
        let slot = self.slot(model);
        let _guard = slot.decision.lock().expect("canary decision lock");
        let state = slot.state.load();
        let Some(active) = state.active.as_ref() else {
            return Err(RegistryError::InvalidState {
                model: model.to_string(),
                detail: "no active version to roll back from".into(),
            });
        };
        let previous = match state.previous.clone() {
            Some(previous) => previous,
            None => {
                let fallback = {
                    let store = self.inner.store.lock().expect("store lock");
                    store
                        .manifest()
                        .models
                        .iter()
                        .find(|m| m.id == model)
                        .and_then(|m| {
                            m.versions
                                .iter()
                                .filter(|v| v.state == VersionState::Retired)
                                .map(|v| v.version)
                                .max()
                        })
                };
                let Some(version) = fallback else {
                    return Err(RegistryError::InvalidState {
                        model: model.to_string(),
                        detail: "no previous version to roll back to".into(),
                    });
                };
                VersionedArtifact::new(model, version, self.load_artifact(model, version)?)
            }
        };
        slot.state.store(Arc::new(SlotState {
            active: Some(Arc::clone(&previous)),
            previous: None,
            canary: state.canary.clone(),
        }));
        let mut store = self.inner.store.lock().expect("store lock");
        store.set_state(model, active.version, VersionState::Rejected)?;
        store.set_state(model, previous.version, VersionState::Active)?;
        store.set_active(model, previous.version)?;
        drop(store);
        self.inner.obs.emit(Event::SwapRollback {
            model: model.to_string(),
            version: active.version,
            active: Some(previous.version),
            reason: "manual rollback".into(),
        });
        Ok(previous.version)
    }

    /// Builds the [`ArtifactSource`] a serving engine scores through. When
    /// the slot is empty but the manifest records an Active version (a
    /// process restart), that version is loaded and reinstated first.
    ///
    /// # Errors
    /// [`RegistryError::InvalidState`] when the model has no Active version
    /// anywhere — promote one first.
    pub fn source_for(&self, model: &str) -> Result<Arc<RegistrySource>, RegistryError> {
        let slot = self.slot(model);
        if slot.state.load().active.is_none() {
            let manifest_active = {
                let store = self.inner.store.lock().expect("store lock");
                store.model_active(model)
            };
            match manifest_active {
                Some(version) if version > 0 => {
                    let artifact = self.load_artifact(model, version)?;
                    slot.state.store(Arc::new(SlotState {
                        active: Some(VersionedArtifact::new(model, version, artifact)),
                        previous: None,
                        canary: None,
                    }));
                }
                _ => {
                    return Err(RegistryError::InvalidState {
                        model: model.to_string(),
                        detail: "no active version; stage and promote one first".into(),
                    })
                }
            }
        }
        let canary_every = self.inner.cfg.canary.as_ref().map_or(0, |c| c.every.max(1));
        let observer = Arc::new(SlotObserver {
            slot: Arc::clone(&slot),
            obs: self.inner.obs.clone(),
            canary: self.inner.cfg.canary.clone(),
            resolutions: Arc::clone(&self.inner.resolutions),
        });
        Ok(Arc::new(RegistrySource { slot, observer, canary_every }))
    }

    /// The version currently serving non-canary traffic, if any.
    pub fn active_version(&self, model: &str) -> Option<u64> {
        self.slot(model).state.load().active.as_ref().map(|a| a.version)
    }

    /// The version currently in the canary phase, if any.
    pub fn canary_version(&self, model: &str) -> Option<u64> {
        self.slot(model).state.load().canary.as_ref().map(|c| c.version)
    }

    /// Applies queued canary verdicts to the manifest. Returns how many
    /// were applied. Call periodically (the [`Reloader`] does) or after
    /// draining traffic in tests.
    ///
    /// [`Reloader`]: crate::reloader::Reloader
    pub fn sync_resolutions(&self) -> Result<usize, RegistryError> {
        let drained: Vec<Resolution> = {
            let mut q = self.inner.resolutions.lock().expect("resolutions lock");
            std::mem::take(&mut *q)
        };
        let n = drained.len();
        let mut store = self.inner.store.lock().expect("store lock");
        for r in drained {
            match r {
                Resolution::CanaryPromoted { model, version, prior } => {
                    store.set_state(&model, version, VersionState::Active)?;
                    if let Some(prior) = prior {
                        store.set_state(&model, prior, VersionState::Retired)?;
                    }
                    store.set_active(&model, version)?;
                }
                Resolution::CanaryRejected { model, version } => {
                    store.set_state(&model, version, VersionState::Rejected)?;
                }
            }
        }
        Ok(n)
    }

    /// Every (model, version) pair currently in `Staged` state, in
    /// manifest order — the reloader's work list.
    pub fn staged_versions(&self) -> Vec<(String, u64)> {
        let store = self.inner.store.lock().expect("store lock");
        let mut out = Vec::new();
        for m in &store.manifest().models {
            for v in &m.versions {
                if v.state == VersionState::Staged {
                    out.push((m.id.clone(), v.version));
                }
            }
        }
        out
    }

    /// A point-in-time copy of the manifest (CLI `status`).
    pub fn manifest_snapshot(&self) -> Manifest {
        self.inner.store.lock().expect("store lock").manifest().clone()
    }

    /// The registry's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
