//! Hot-swap under load: while four submitter threads hammer the engine,
//! the registry swaps between two artifact variants repeatedly. The bar:
//! **zero** failed requests, and every response bit-identical to exactly
//! one of the two installed artifacts — never a blend, never a tear.

#![allow(missing_docs)]

mod common;

use clfd_obs::{Event, MemorySink, Obs};
use clfd_registry::{ArtifactStore, ModelRegistry, PromotionOutcome, RegistryConfig};
use clfd_serve::{Engine, EngineConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn hot_swap_under_load_never_drops_or_blends_requests() {
    const SUBMITTERS: usize = 4;
    const SWAPS: usize = 8;

    let root = common::temp_root("hot-swap");
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::from_arc(sink.clone() as Arc<dyn clfd_obs::Recorder>);
    let cfg = RegistryConfig {
        probe: common::probe_sessions(4),
        ..RegistryConfig::default()
    };
    let registry =
        ModelRegistry::new(ArtifactStore::open(&root).expect("open store"), cfg, obs);

    // Two artifact variants; precompute what each predicts for the traffic.
    let traffic = common::probe_sessions(12);
    let refs: Vec<&clfd_data::session::Session> = traffic.iter().collect();
    let expected_a = common::artifact(0).predict(&refs);
    let expected_b = common::artifact(1).predict(&refs);
    // The variants must actually disagree somewhere, or "matches one of
    // the two" would be vacuous.
    assert!(
        expected_a.iter().zip(&expected_b).any(|(a, b)| !common::same_prediction(a, b)),
        "test fixtures are too similar to distinguish"
    );

    let v1 = registry.stage("fraud", &common::artifact_json(0), "variant A").expect("stage");
    assert_eq!(
        registry.promote("fraud", v1).expect("first promote"),
        PromotionOutcome::Committed
    );

    let engine = Arc::new(Engine::from_source(
        registry.source_for("fraud").expect("source"),
        EngineConfig { workers: 2, ..EngineConfig::default() },
        Obs::null(),
        None,
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let submitters: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let traffic = traffic.clone();
            std::thread::spawn(move || {
                let mut answered: Vec<(usize, clfd::Prediction)> = Vec::new();
                let mut i = t; // stagger the starting session per thread
                while !stop.load(Ordering::Relaxed) {
                    let idx = i % traffic.len();
                    let pred = engine
                        .submit(&traffic[idx])
                        .expect("submit never fails under load")
                        .wait()
                        .expect("no request may fail during hot swaps");
                    answered.push((idx, pred));
                    i += 1;
                }
                answered
            })
        })
        .collect();

    // Swap back and forth between the two variants under live load. Each
    // swap stages a fresh version (the state machine never re-activates a
    // retired version) and promotes it straight to Active.
    for swap in 0..SWAPS {
        std::thread::sleep(Duration::from_millis(30));
        let variant = ((swap + 1) % 2) as u32;
        let note = format!("swap {swap}");
        let v = registry
            .stage("fraud", &common::artifact_json(variant), &note)
            .expect("stage under load");
        assert_eq!(
            registry.promote("fraud", v).expect("promote under load"),
            PromotionOutcome::Committed
        );
    }
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);

    let mut total = 0usize;
    let mut matched_a = 0usize;
    let mut matched_b = 0usize;
    for handle in submitters {
        let answered = handle.join().expect("submitter panicked");
        assert!(!answered.is_empty(), "a submitter never got a single answer");
        for (idx, pred) in answered {
            total += 1;
            if common::same_prediction(&pred, &expected_a[idx]) {
                matched_a += 1;
            } else if common::same_prediction(&pred, &expected_b[idx]) {
                matched_b += 1;
            } else {
                panic!(
                    "response for session {idx} matches neither installed artifact: {pred:?}"
                );
            }
        }
    }
    // Both variants actually served: the swaps were live, not theoretical.
    assert!(matched_a > 0, "variant A never served ({total} responses)");
    assert!(matched_b > 0, "variant B never served ({total} responses)");

    // Every promotion committed observably, and nothing rolled back.
    let events = sink.events();
    let commits = events.iter().filter(|e| matches!(e, Event::SwapCommit { .. })).count();
    let rollbacks = events.iter().filter(|e| matches!(e, Event::SwapRollback { .. })).count();
    assert_eq!(commits, SWAPS + 1, "one commit per promotion");
    assert_eq!(rollbacks, 0, "no rollback during healthy swaps");

    drop(engine);
    let _ = std::fs::remove_dir_all(&root);
}
