//! Shared fixtures for registry integration tests: hand-packed artifacts
//! (no training, so fault sweeps stay fast), probe traffic, and temp roots.

#![allow(dead_code)]

use clfd::prelude::*;
use clfd::{ClfdSnapshot, CorrectorSnapshot};
use clfd_data::session::Session;
use clfd_nn::snapshot::Snapshot;
use clfd_serve::InferenceArtifact;
use clfd_tensor::Matrix;
use std::path::PathBuf;

/// Default vocabulary of test artifacts.
pub const VOCAB: usize = 6;

/// Hand-packed corrector-shaped snapshot. `variant` perturbs every weight
/// so two variants produce measurably different scores; `vocab` bounds the
/// activity ids the artifact accepts.
pub fn tiny_snapshot(variant: u32, vocab: usize) -> (ClfdSnapshot, ClfdConfig) {
    let cfg = ClfdConfig::for_preset(Preset::Smoke);
    let (dim, hid) = (cfg.embed_dim, cfg.hidden);
    let shift = variant as f32 * 0.37;
    let wave =
        move |scale: f32| move |r: usize, c: usize| ((r * 13 + c * 7) as f32 * scale + shift).sin();
    let mut encoder = Vec::new();
    for layer in 0..cfg.lstm_layers {
        let in_dim = if layer == 0 { dim } else { hid };
        encoder.push(Matrix::from_fn(in_dim, 4 * hid, wave(0.11 + layer as f32)));
        encoder.push(Matrix::from_fn(hid, 4 * hid, wave(0.07 + layer as f32)));
        encoder.push(Matrix::from_fn(1, 4 * hid, wave(0.05)));
    }
    let snapshot = ClfdSnapshot {
        embeddings: Snapshot { values: vec![Matrix::from_fn(vocab, dim, wave(0.19))] },
        corrector: Some(CorrectorSnapshot {
            encoder: Snapshot { values: encoder },
            head: Snapshot {
                values: vec![
                    Matrix::from_fn(hid, hid, wave(0.03)),
                    Matrix::zeros(1, hid),
                    Matrix::from_fn(hid, 2, wave(0.23)),
                    Matrix::zeros(1, 2),
                ],
            },
        }),
        detector: None,
    };
    (snapshot, cfg)
}

/// A frozen artifact for `variant` over the default vocabulary.
pub fn artifact(variant: u32) -> InferenceArtifact {
    artifact_with_vocab(variant, VOCAB)
}

/// A frozen artifact for `variant` over a chosen vocabulary.
pub fn artifact_with_vocab(variant: u32, vocab: usize) -> InferenceArtifact {
    let (snapshot, cfg) = tiny_snapshot(variant, vocab);
    InferenceArtifact::from_snapshot(&snapshot, cfg).expect("hand-packed snapshot freezes")
}

/// The artifact's stageable JSON bytes.
pub fn artifact_json(variant: u32) -> Vec<u8> {
    artifact(variant).to_json().into_bytes()
}

/// Like [`artifact_json`] but with a smaller vocabulary.
pub fn artifact_json_with_vocab(variant: u32, vocab: usize) -> Vec<u8> {
    artifact_with_vocab(variant, vocab).to_json().into_bytes()
}

/// Variant 0 with the classifier head's output columns swapped: every
/// logit pair flips, so its predicted labels are the *opposite* of
/// [`artifact`]`(0)`'s wherever the classes aren't exactly tied — a
/// guaranteed accuracy regression for the promotion gate to catch.
pub fn flipped_artifact_json() -> Vec<u8> {
    let (mut snapshot, cfg) = tiny_snapshot(0, VOCAB);
    let head = &mut snapshot.corrector.as_mut().expect("corrector present").head;
    let hid = cfg.hidden;
    let shift = 0.0f32;
    let wave =
        move |scale: f32| move |r: usize, c: usize| ((r * 13 + c * 7) as f32 * scale + shift).sin();
    // Rebuild the output projection with columns 0 and 1 exchanged.
    head.values[2] = Matrix::from_fn(hid, 2, move |r, c| wave(0.23)(r, 1 - c));
    let artifact =
        InferenceArtifact::from_snapshot(&snapshot, cfg).expect("flipped snapshot freezes");
    artifact.to_json().into_bytes()
}

/// Probe sessions whose activities stay below `max_activity`.
pub fn sessions_below(max_activity: usize, n: usize) -> Vec<Session> {
    (0..n)
        .map(|i| Session {
            activities: (0..3 + i % 3).map(|j| ((i + j * 5) % max_activity) as u32).collect(),
            day: (i % 7) as u32,
        })
        .collect()
}

/// Probe sessions over the full default vocabulary.
pub fn probe_sessions(n: usize) -> Vec<Session> {
    sessions_below(VOCAB, n)
}

/// A unique temp directory for one test's registry root.
pub fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("clfd-registry-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bitwise prediction comparison (label + both score channels).
pub fn same_prediction(a: &Prediction, b: &Prediction) -> bool {
    a.label == b.label
        && a.malicious_score.to_bits() == b.malicious_score.to_bits()
        && a.confidence.to_bits() == b.confidence.to_bits()
}
