//! Fault-injected resilience: every way a candidate can go wrong — corrupt
//! bytes, truncated files, slow or transiently failing loads, a panic in
//! the middle of the swap itself, a canary that regresses under live
//! traffic — must leave the previous Active version serving, with the
//! failure observable as a `SwapRollback` event and a Rejected manifest
//! entry. Zero requests may be dropped on the floor.

#![allow(missing_docs)]

mod common;

use clfd_data::session::Session;
use clfd_obs::{Event, MemorySink, Obs};
use clfd_registry::{
    ArtifactStore, CanaryConfig, ModelRegistry, PromotionOutcome, RegistryConfig, RegistryError,
    ServeFault, ServeFaultInjector, ServeFaultPlan, VersionState,
};
use clfd_serve::{Engine, EngineConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Fixture {
    root: std::path::PathBuf,
    sink: Arc<MemorySink>,
    registry: ModelRegistry,
}

fn fixture(tag: &str, cfg: RegistryConfig, plan: Option<ServeFaultPlan>) -> Fixture {
    let root = common::temp_root(tag);
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::from_arc(sink.clone() as Arc<dyn clfd_obs::Recorder>);
    let store = ArtifactStore::open(&root).expect("open store");
    let mut registry = ModelRegistry::new(store, cfg, obs);
    if let Some(plan) = plan {
        registry = registry.with_faults(Arc::new(ServeFaultInjector::new(plan)));
    }
    Fixture { root, sink, registry }
}

fn probe_cfg() -> RegistryConfig {
    RegistryConfig { probe: common::probe_sessions(4), ..RegistryConfig::default() }
}

fn rollback_events(sink: &MemorySink) -> Vec<(u64, Option<u64>, String)> {
    sink.events()
        .iter()
        .filter_map(|e| match e {
            Event::SwapRollback { version, active, reason, .. } => {
                Some((*version, *active, reason.clone()))
            }
            _ => None,
        })
        .collect()
}

/// Promotes a good v1 and returns an engine serving it plus the expected
/// predictions for `traffic`.
fn serve_v1(
    fx: &Fixture,
    traffic: &[Session],
) -> (Engine, Vec<clfd::Prediction>) {
    let v1 = fx.registry.stage("fraud", &common::artifact_json(0), "good v1").expect("stage v1");
    assert_eq!(
        fx.registry.promote("fraud", v1).expect("promote v1"),
        PromotionOutcome::Committed
    );
    let engine = Engine::from_source(
        fx.registry.source_for("fraud").expect("source"),
        EngineConfig::deterministic(),
        Obs::null(),
        None,
    );
    let refs: Vec<&Session> = traffic.iter().collect();
    let expected = common::artifact(0).predict(&refs);
    (engine, expected)
}

fn assert_still_serving_v1(
    engine: &Engine,
    traffic: &[Session],
    expected: &[clfd::Prediction],
    context: &str,
) {
    for (i, session) in traffic.iter().enumerate() {
        let pred = engine
            .submit(session)
            .unwrap_or_else(|e| panic!("{context}: submit {i} failed: {e}"))
            .wait()
            .unwrap_or_else(|e| panic!("{context}: request {i} failed: {e}"));
        assert!(
            common::same_prediction(&pred, &expected[i]),
            "{context}: response {i} is not v1's prediction"
        );
    }
}

#[test]
fn corrupt_candidate_is_rejected_while_serving_continues() {
    let fx = fixture("corrupt-candidate", probe_cfg(), None);
    let traffic = common::probe_sessions(8);
    let (engine, expected) = serve_v1(&fx, &traffic);

    // Stage bytes that are a valid checksum of garbage: half an artifact.
    let mut broken = common::artifact_json(1);
    broken.truncate(broken.len() / 2);
    let v2 = fx.registry.stage("fraud", &broken, "torn write").expect("stage");
    let err = fx.registry.promote("fraud", v2).expect_err("corrupt candidate must fail");
    assert!(matches!(err, RegistryError::Corrupt(_)), "got {err}");

    // The failure is observable and recorded; v1 never stopped serving.
    let rollbacks = rollback_events(&fx.sink);
    assert_eq!(rollbacks.len(), 1);
    assert_eq!(rollbacks[0].0, v2);
    assert_eq!(rollbacks[0].1, Some(1), "v1 still active after rollback");
    let manifest = fx.registry.manifest_snapshot();
    let entry = &manifest.models[0].versions[(v2 - 1) as usize];
    assert_eq!(entry.state, VersionState::Rejected);
    assert_eq!(fx.registry.active_version("fraud"), Some(1));
    assert_still_serving_v1(&engine, &traffic, &expected, "after corrupt candidate");

    drop(engine);
    let _ = std::fs::remove_dir_all(&fx.root);
}

#[test]
fn on_disk_tampering_fails_the_checksum_and_serving_continues() {
    let fx = fixture("tamper", probe_cfg(), None);
    let traffic = common::probe_sessions(6);
    let (engine, expected) = serve_v1(&fx, &traffic);

    let v2 = fx.registry.stage("fraud", &common::artifact_json(1), "good bytes").expect("stage");
    // Corrupt the file *after* staging: the checksum recorded at stage
    // time must catch it before a decode is even attempted.
    let path = {
        let manifest = fx.registry.manifest_snapshot();
        assert_eq!(manifest.models[0].id, "fraud");
        fx.root.join("artifacts").join("fraud").join(format!("v{v2}.json"))
    };
    let mut bytes = std::fs::read(&path).expect("read staged file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).expect("tamper");

    let err = fx.registry.promote("fraud", v2).expect_err("tampered file must fail");
    assert!(matches!(err, RegistryError::ChecksumMismatch { .. }), "got {err}");
    assert_eq!(fx.registry.active_version("fraud"), Some(1));
    assert_still_serving_v1(&engine, &traffic, &expected, "after tampered candidate");

    drop(engine);
    let _ = std::fs::remove_dir_all(&fx.root);
}

#[test]
fn injected_byte_corruption_is_rejected_cleanly() {
    let plan = ServeFaultPlan::new()
        // Load 0 is v1's promotion: leave it alone. Load 1 is v2's.
        .load_at(1, ServeFault::CorruptByte { offset: 200 });
    let fx = fixture("inject-corrupt", probe_cfg(), Some(plan));
    let traffic = common::probe_sessions(6);
    let (engine, expected) = serve_v1(&fx, &traffic);

    let v2 = fx.registry.stage("fraud", &common::artifact_json(1), "").expect("stage");
    let err = fx.registry.promote("fraud", v2).expect_err("injected corruption must fail");
    // A flipped byte either breaks the JSON (Corrupt) — retries cannot
    // fix it, so the error must be permanent, not transient.
    assert!(!err.is_transient(), "corruption must not be retried: {err}");
    assert_eq!(fx.registry.active_version("fraud"), Some(1));
    assert_still_serving_v1(&engine, &traffic, &expected, "after injected corruption");

    drop(engine);
    let _ = std::fs::remove_dir_all(&fx.root);
}

#[test]
fn slow_loads_are_tolerated_not_fatal() {
    let plan = ServeFaultPlan::new().load_at(1, ServeFault::SlowLoad { ms: 150 });
    let fx = fixture("slow-load", probe_cfg(), Some(plan));
    let traffic = common::probe_sessions(4);
    let (engine, expected) = serve_v1(&fx, &traffic);

    let v2 = fx.registry.stage("fraud", &common::artifact_json(1), "").expect("stage");
    let start = Instant::now();
    fx.registry.promote("fraud", v2).expect("slow load still succeeds");
    assert!(start.elapsed() >= Duration::from_millis(150), "the stall was injected");
    assert_eq!(fx.registry.active_version("fraud"), Some(v2));

    // The new version serves; nothing was dropped while the load crawled.
    let refs: Vec<&Session> = traffic.iter().collect();
    let expected_v2 = common::artifact(1).predict(&refs);
    for (i, session) in traffic.iter().enumerate() {
        let pred = engine.submit(session).expect("submit").wait().expect("request ok");
        assert!(
            common::same_prediction(&pred, &expected_v2[i])
                || common::same_prediction(&pred, &expected[i]),
            "response {i} matches neither version"
        );
    }

    drop(engine);
    let _ = std::fs::remove_dir_all(&fx.root);
}

#[test]
fn transient_load_failures_are_retried_with_backoff() {
    let plan = ServeFaultPlan::new()
        .load_at(1, ServeFault::FailLoad)
        .load_at(2, ServeFault::FailLoad);
    let root = common::temp_root("retry");
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::from_arc(sink.clone() as Arc<dyn clfd_obs::Recorder>);
    let injector = Arc::new(ServeFaultInjector::new(plan));
    let cfg = RegistryConfig {
        probe: common::probe_sessions(4),
        load_attempts: 3,
        backoff_base_ms: 20,
        backoff_cap_ms: 100,
        ..RegistryConfig::default()
    };
    let registry = ModelRegistry::new(ArtifactStore::open(&root).expect("open"), cfg, obs)
        .with_faults(Arc::clone(&injector));

    let v1 = registry.stage("fraud", &common::artifact_json(0), "").expect("stage");
    registry.promote("fraud", v1).expect("v1 promotes (load 0 unfaulted)");
    let v2 = registry.stage("fraud", &common::artifact_json(1), "").expect("stage");
    let start = Instant::now();
    registry.promote("fraud", v2).expect("third attempt succeeds");
    // Two failures at 20ms and 40ms backoff: at least 60ms elapsed.
    assert!(start.elapsed() >= Duration::from_millis(60), "backoff was applied");
    assert_eq!(registry.active_version("fraud"), Some(v2));
    let failures = injector
        .fired()
        .iter()
        .filter(|f| f.fault == ServeFault::FailLoad)
        .count();
    assert_eq!(failures, 2, "both injected failures were consumed by retries");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn exhausted_retries_surface_the_transient_error_and_reject() {
    let plan = ServeFaultPlan::new()
        .load_at(1, ServeFault::FailLoad)
        .load_at(2, ServeFault::FailLoad);
    let mut cfg = probe_cfg();
    cfg.load_attempts = 2; // one fewer than the injected failures
    cfg.backoff_base_ms = 1;
    let fx = fixture("retry-exhausted", cfg, Some(plan));
    let traffic = common::probe_sessions(4);
    let (engine, expected) = serve_v1(&fx, &traffic);

    let v2 = fx.registry.stage("fraud", &common::artifact_json(1), "").expect("stage");
    let err = fx.registry.promote("fraud", v2).expect_err("retries exhausted");
    assert!(err.is_transient(), "the surfaced error is the transient one: {err}");
    assert_eq!(fx.registry.active_version("fraud"), Some(1));
    assert_still_serving_v1(&engine, &traffic, &expected, "after exhausted retries");

    drop(engine);
    let _ = std::fs::remove_dir_all(&fx.root);
}

#[test]
fn mid_swap_panic_leaves_previous_active_serving() {
    let plan = ServeFaultPlan::new().swap_at(1, ServeFault::PanicMidSwap);
    let fx = fixture("mid-swap-panic", probe_cfg(), Some(plan));
    let traffic = common::probe_sessions(8);
    let (engine, expected) = serve_v1(&fx, &traffic);

    let v2 = fx.registry.stage("fraud", &common::artifact_json(1), "").expect("stage");
    let err = fx.registry.promote("fraud", v2).expect_err("swap panics");
    assert!(matches!(err, RegistryError::SwapPanicked { .. }), "got {err}");
    assert_eq!(fx.registry.active_version("fraud"), Some(1), "v1 survived the panic");
    let rollbacks = rollback_events(&fx.sink);
    assert_eq!(rollbacks.len(), 1);
    assert!(rollbacks[0].2.contains("panic"), "reason names the panic: {}", rollbacks[0].2);
    assert_still_serving_v1(&engine, &traffic, &expected, "after mid-swap panic");

    // The registry itself is not wedged: a clean retry promotes.
    let v3 = fx.registry.stage("fraud", &common::artifact_json(1), "retry").expect("stage");
    fx.registry.promote("fraud", v3).expect("post-panic promotion works");
    assert_eq!(fx.registry.active_version("fraud"), Some(v3));

    drop(engine);
    let _ = std::fs::remove_dir_all(&fx.root);
}

#[test]
fn accuracy_regression_is_rejected_by_the_probe_gate() {
    let probe = common::probe_sessions(8);
    let refs: Vec<&Session> = probe.iter().collect();
    let labels: Vec<_> = common::artifact(0).predict(&refs).iter().map(|p| p.label).collect();
    let cfg = RegistryConfig {
        probe: probe.clone(),
        probe_labels: labels,
        max_accuracy_drop: 0.2,
        ..RegistryConfig::default()
    };
    let fx = fixture("accuracy-gate", cfg, None);
    let traffic = common::probe_sessions(6);
    let (engine, expected) = serve_v1(&fx, &traffic);

    // The flipped-head candidate predicts the opposite label everywhere:
    // probe accuracy collapses and the gate must reject it.
    let v2 = fx.registry.stage("fraud", &common::flipped_artifact_json(), "bad retrain").expect("stage");
    let err = fx.registry.promote("fraud", v2).expect_err("regressing candidate");
    match &err {
        RegistryError::Rejected { reason, .. } => {
            assert!(reason.contains("accuracy"), "gate named: {reason}")
        }
        other => panic!("expected Rejected, got {other}"),
    }
    assert_eq!(fx.registry.active_version("fraud"), Some(1));
    assert_still_serving_v1(&engine, &traffic, &expected, "after accuracy rejection");

    drop(engine);
    let _ = std::fs::remove_dir_all(&fx.root);
}

#[test]
fn regressing_canary_rolls_back_automatically_under_live_traffic() {
    // The canary artifact only knows activities 0..4; live traffic uses
    // activity 5, which the Active version (vocab 6) handles fine. Every
    // canary-scored request errors — exactly the regression the canary
    // window is there to catch.
    let cfg = RegistryConfig {
        probe: common::sessions_below(4, 4),
        canary: Some(CanaryConfig {
            every: 3,
            min_requests: 12,
            max_error_rate_delta: 0.05,
            max_latency_factor: 1000.0,
        }),
        ..RegistryConfig::default()
    };
    let fx = fixture("canary-regression", cfg, None);
    let v1 = fx.registry.stage("fraud", &common::artifact_json(0), "").expect("stage");
    fx.registry.promote("fraud", v1).expect("v1 direct (no active yet)");
    let engine = Engine::from_source(
        fx.registry.source_for("fraud").expect("source"),
        EngineConfig::deterministic(),
        Obs::null(),
        None,
    );

    let narrow = common::artifact_json_with_vocab(1, 4);
    let v2 = fx.registry.stage("fraud", &narrow, "narrow vocab").expect("stage");
    assert_eq!(
        fx.registry.promote("fraud", v2).expect("gates pass on the narrow probe set"),
        PromotionOutcome::CanaryStarted
    );

    // Live traffic the canary cannot score.
    let hot = Session { activities: vec![0, 2, 5], day: 1 };
    let mut attempts = 0;
    while fx.registry.canary_version("fraud").is_some() {
        attempts += 1;
        assert!(attempts < 5000, "canary never resolved");
        // Submissions may be rejected or fail when routed to the canary;
        // that failure *is* the regression signal. None may hang.
        if let Ok(ticket) = engine.submit(&hot) {
            let _ = ticket.wait();
        }
    }

    let rollbacks = rollback_events(&fx.sink);
    assert_eq!(rollbacks.len(), 1, "exactly one automatic rollback");
    assert_eq!(rollbacks[0].0, v2);
    assert_eq!(rollbacks[0].1, Some(v1));
    assert!(rollbacks[0].2.contains("error rate"), "reason: {}", rollbacks[0].2);
    assert_eq!(fx.registry.active_version("fraud"), Some(v1));

    // After rollback the same traffic flows clean.
    for _ in 0..20 {
        engine.submit(&hot).expect("submit").wait().expect("no failures after rollback");
    }

    // The verdict reaches the manifest.
    fx.registry.sync_resolutions().expect("sync");
    let manifest = fx.registry.manifest_snapshot();
    let entry = &manifest.models[0].versions[(v2 - 1) as usize];
    assert_eq!(entry.state, VersionState::Rejected);
    assert_eq!(manifest.models[0].active, v1);

    drop(engine);
    let _ = std::fs::remove_dir_all(&fx.root);
}

#[test]
fn healthy_canary_commits_after_its_observation_window() {
    let cfg = RegistryConfig {
        probe: common::probe_sessions(4),
        canary: Some(CanaryConfig {
            every: 3,
            min_requests: 12,
            max_error_rate_delta: 0.05,
            max_latency_factor: 1000.0,
        }),
        ..RegistryConfig::default()
    };
    let fx = fixture("canary-commit", cfg, None);
    let v1 = fx.registry.stage("fraud", &common::artifact_json(0), "").expect("stage");
    fx.registry.promote("fraud", v1).expect("v1");
    let engine = Engine::from_source(
        fx.registry.source_for("fraud").expect("source"),
        EngineConfig::deterministic(),
        Obs::null(),
        None,
    );

    let v2 = fx.registry.stage("fraud", &common::artifact_json(1), "").expect("stage");
    assert_eq!(
        fx.registry.promote("fraud", v2).expect("canary starts"),
        PromotionOutcome::CanaryStarted
    );

    let traffic = common::probe_sessions(6);
    let mut attempts = 0;
    while fx.registry.canary_version("fraud").is_some() {
        attempts += 1;
        assert!(attempts < 5000, "canary never resolved");
        let session = &traffic[attempts % traffic.len()];
        engine.submit(session).expect("submit").wait().expect("healthy traffic");
    }

    assert_eq!(fx.registry.active_version("fraud"), Some(v2), "canary was promoted");
    let commits = fx
        .sink
        .events()
        .iter()
        .filter(|e| matches!(e, Event::SwapCommit { .. }))
        .count();
    assert_eq!(commits, 2, "v1's install and the canary's commit");
    assert!(rollback_events(&fx.sink).is_empty());

    fx.registry.sync_resolutions().expect("sync");
    let manifest = fx.registry.manifest_snapshot();
    assert_eq!(manifest.models[0].active, v2);
    assert_eq!(manifest.models[0].versions[0].state, VersionState::Retired);
    assert_eq!(manifest.models[0].versions[1].state, VersionState::Active);

    drop(engine);
    let _ = std::fs::remove_dir_all(&fx.root);
}
