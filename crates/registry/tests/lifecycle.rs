//! Registry lifecycle: staged versions flow to Active through `sync_once`
//! or the background [`Reloader`], manual rollback reinstates the previous
//! version, and a fresh registry resumes the manifest's Active version
//! after a restart.

#![allow(missing_docs)]

mod common;

use clfd_data::session::Session;
use clfd_obs::{Event, MemorySink, Obs};
use clfd_registry::{
    sync_once, ArtifactStore, ModelRegistry, Reloader, RegistryConfig, RegistryError,
    VersionState,
};
use clfd_serve::{Engine, EngineConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn registry_at(root: &std::path::Path, sink: &Arc<MemorySink>) -> ModelRegistry {
    let obs = Obs::from_arc(Arc::clone(sink) as Arc<dyn clfd_obs::Recorder>);
    let cfg = RegistryConfig { probe: common::probe_sessions(4), ..RegistryConfig::default() };
    ModelRegistry::new(ArtifactStore::open(root).expect("open store"), cfg, obs)
}

#[test]
fn sync_once_promotes_staged_and_counts_rejects() {
    let root = common::temp_root("sync-once");
    let sink = Arc::new(MemorySink::new());
    let registry = registry_at(&root, &sink);

    registry.stage("fraud", &common::artifact_json(0), "v1").expect("stage");
    registry.stage("fraud", &common::artifact_json(1), "v2").expect("stage");
    let mut torn = common::artifact_json(0);
    torn.truncate(40);
    registry.stage("fraud", &torn, "torn").expect("stage");

    let report = sync_once(&registry);
    assert_eq!(report.promoted, 2);
    assert_eq!(report.rejected, 1);
    assert_eq!(registry.active_version("fraud"), Some(2));
    let manifest = registry.manifest_snapshot();
    let states: Vec<_> = manifest.models[0].versions.iter().map(|v| v.state).collect();
    assert_eq!(
        states,
        vec![VersionState::Retired, VersionState::Active, VersionState::Rejected]
    );

    // A second sweep finds nothing to do.
    let again = sync_once(&registry);
    assert_eq!((again.promoted, again.rejected, again.resolutions), (0, 0, 0));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reloader_promotes_in_the_background() {
    let root = common::temp_root("reloader");
    let sink = Arc::new(MemorySink::new());
    let registry = registry_at(&root, &sink);
    let reloader = Reloader::spawn(registry.clone(), Duration::from_millis(10));

    registry.stage("fraud", &common::artifact_json(0), "dropped off by trainer").expect("stage");
    let deadline = Instant::now() + Duration::from_secs(10);
    while registry.active_version("fraud").is_none() {
        assert!(Instant::now() < deadline, "reloader never promoted the staged version");
        std::thread::sleep(Duration::from_millis(5));
    }
    reloader.stop();
    assert_eq!(registry.active_version("fraud"), Some(1));
    assert!(sink
        .events()
        .iter()
        .any(|e| matches!(e, Event::SwapCommit { version: 1, .. })));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn manual_rollback_reinstates_the_previous_version() {
    let root = common::temp_root("manual-rollback");
    let sink = Arc::new(MemorySink::new());
    let registry = registry_at(&root, &sink);

    // Nothing to roll back to yet.
    let v1 = registry.stage("fraud", &common::artifact_json(0), "v1").expect("stage");
    registry.promote("fraud", v1).expect("v1");
    let err = registry.rollback("fraud").expect_err("no previous version");
    assert!(matches!(err, RegistryError::InvalidState { .. }), "got {err}");

    let v2 = registry.stage("fraud", &common::artifact_json(1), "v2").expect("stage");
    registry.promote("fraud", v2).expect("v2");
    assert_eq!(registry.active_version("fraud"), Some(v2));

    let engine = Engine::from_source(
        registry.source_for("fraud").expect("source"),
        EngineConfig::deterministic(),
        Obs::null(),
        None,
    );
    let traffic = common::probe_sessions(6);
    let refs: Vec<&Session> = traffic.iter().collect();
    let expected_v1 = common::artifact(0).predict(&refs);

    let reinstated = registry.rollback("fraud").expect("rollback");
    assert_eq!(reinstated, v1);
    assert_eq!(registry.active_version("fraud"), Some(v1));
    // The engine picks the reinstated version up at its next batch.
    for (i, session) in traffic.iter().enumerate() {
        let pred = engine.submit(session).expect("submit").wait().expect("ok");
        assert!(
            common::same_prediction(&pred, &expected_v1[i]),
            "response {i} is not v1's prediction after rollback"
        );
    }
    let manifest = registry.manifest_snapshot();
    assert_eq!(manifest.models[0].active, v1);
    assert_eq!(manifest.models[0].versions[0].state, VersionState::Active);
    assert_eq!(manifest.models[0].versions[1].state, VersionState::Rejected);
    assert!(sink.events().iter().any(|e| matches!(
        e,
        Event::SwapRollback { reason, .. } if reason == "manual rollback"
    )));

    drop(engine);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_fresh_registry_resumes_the_manifest_active_version() {
    let root = common::temp_root("resume");
    let sink = Arc::new(MemorySink::new());
    {
        let registry = registry_at(&root, &sink);
        let v1 = registry.stage("fraud", &common::artifact_json(0), "v1").expect("stage");
        registry.promote("fraud", v1).expect("promote");
    } // process "restarts"

    let registry = registry_at(&root, &sink);
    assert_eq!(registry.active_version("fraud"), None, "slot is cold before source_for");
    let engine = Engine::from_source(
        registry.source_for("fraud").expect("resume loads the manifest active"),
        EngineConfig::deterministic(),
        Obs::null(),
        None,
    );
    assert_eq!(registry.active_version("fraud"), Some(1));
    let traffic = common::probe_sessions(4);
    let refs: Vec<&Session> = traffic.iter().collect();
    let expected = common::artifact(0).predict(&refs);
    for (i, session) in traffic.iter().enumerate() {
        let pred = engine.submit(session).expect("submit").wait().expect("ok");
        assert!(common::same_prediction(&pred, &expected[i]));
    }

    // A model with nothing promoted is a typed error, not a panic.
    let err = registry.source_for("ghost").expect_err("unknown model");
    assert!(matches!(err, RegistryError::InvalidState { .. }), "got {err}");

    drop(engine);
    let _ = std::fs::remove_dir_all(&root);
}
