//! Property-based tests for the loss library.

use clfd_autograd::Tape;
use clfd_data::batch::one_hot;
use clfd_data::session::Label;
use clfd_losses::contrastive::{sup_con_batch, SupConVariant};
use clfd_losses::{cce_loss, gce_loss, mae_loss, MixupPlan};
use clfd_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn logits_strategy(rows: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-6.0_f32..6.0, rows * 2)
        .prop_map(move |v| Matrix::from_vec(rows, 2, v).unwrap())
}

fn labels_strategy(rows: usize) -> impl Strategy<Value = Vec<Label>> {
    proptest::collection::vec(proptest::bool::ANY, rows).prop_map(|bits| {
        bits.into_iter()
            .map(|b| if b { Label::Malicious } else { Label::Normal })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2's upper bound holds for every input, not just samples.
    #[test]
    fn gce_loss_is_bounded_by_one_over_q(
        logits in logits_strategy(4),
        labels in labels_strategy(4),
        q in 0.1_f32..1.0,
    ) {
        let mut tape = Tape::new();
        let l = tape.param(logits);
        tape.seal();
        let loss = gce_loss(&mut tape, l, &one_hot(&labels), q);
        let v = tape.scalar(loss);
        prop_assert!(v >= 0.0, "negative GCE {v}");
        prop_assert!(v <= 1.0 / q + 1e-4, "GCE {v} above 1/q");
    }

    /// CCE and MAE are non-negative; MAE respects its own bound of 2.
    #[test]
    fn reference_losses_are_bounded_below(
        logits in logits_strategy(3),
        labels in labels_strategy(3),
    ) {
        let mut tape = Tape::new();
        let l = tape.param(logits);
        tape.seal();
        let c = cce_loss(&mut tape, l, &one_hot(&labels));
        prop_assert!(tape.scalar(c) >= 0.0);
        let m = mae_loss(&mut tape, l, &one_hot(&labels));
        let mv = tape.scalar(m);
        prop_assert!((0.0..=2.0 + 1e-5).contains(&mv), "MAE {mv}");
    }

    /// GCE decreases monotonically in the true-class probability.
    #[test]
    fn gce_decreases_as_prediction_improves(margin in 0.1_f32..5.0, q in 0.2_f32..1.0) {
        let eval = |logit: f32| {
            let mut tape = Tape::new();
            let l = tape.param(Matrix::from_vec(1, 2, vec![logit, 0.0]).unwrap());
            tape.seal();
            let targets = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
            let loss = gce_loss(&mut tape, l, &targets, q);
            tape.scalar(loss)
        };
        prop_assert!(eval(margin) < eval(0.0));
        prop_assert!(eval(0.0) < eval(-margin));
    }

    /// Mixup plans always produce valid probability targets and partners
    /// from the opposite class (or self-pairs when the class is absent).
    #[test]
    fn mixup_targets_are_distributions(
        labels in labels_strategy(8),
        beta in 0.2_f32..4.0,
        seed in 0_u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = MixupPlan::sample(&labels, beta, &mut rng);
        prop_assert_eq!(plan.len(), labels.len());
        let targets = plan.mixed_targets(&one_hot(&labels));
        for r in 0..targets.rows() {
            let sum: f32 = targets.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(targets.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
            let j = plan.partner[r];
            if j != r {
                prop_assert_ne!(labels[r], labels[j], "same-class partner at row {}", r);
            }
        }
        // λ ≥ 0.5 by the DivideMix convention (own label dominates).
        prop_assert!(plan.lambda.iter().all(|&l| (0.5..=1.0).contains(&l)));
    }

    /// The weighted supervised contrastive loss never exceeds the
    /// unweighted one (weights cᵢcₚ ≤ 1 scale every non-negative pair term).
    #[test]
    fn weighted_supcon_bounded_by_unweighted(
        seed in 0_u64..200,
        conf_lo in 0.5_f32..0.99,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let z = clfd_tensor::init::gaussian(6, 4, 0.0, 1.0, &mut rng);
        let labels = vec![
            Label::Normal, Label::Normal, Label::Normal,
            Label::Malicious, Label::Malicious, Label::Malicious,
        ];
        let conf: Vec<f32> = (0..6).map(|i| conf_lo + 0.01 * i as f32).collect();
        let conf: Vec<f32> = conf.into_iter().map(|c| c.min(1.0)).collect();
        let run = |variant: SupConVariant| {
            let mut tape = Tape::new();
            let zv = tape.param(z.clone());
            tape.seal();
            let loss = sup_con_batch(&mut tape, zv, &labels, &conf, 6, 1.0, variant);
            tape.scalar(loss)
        };
        let weighted = run(SupConVariant::Weighted);
        let unweighted = run(SupConVariant::Unweighted);
        // Pair losses are non-negative here because each anchor has ≥ 2
        // positives among 5 candidates (softmax of a positive among
        // negatives stays below 1), so down-weighting cannot increase the sum.
        prop_assert!(weighted <= unweighted + 1e-4, "{weighted} > {unweighted}");
    }
}

/// The NT-Xent graph (row-normalize → pairwise similarities → masked
/// log-softmax) runs threaded kernels when the batch is big enough; loss
/// *and* gradient must be bit-identical to the serial path.
#[test]
fn nt_xent_is_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(77);
    // 64 x 128: the similarity matmul is 64·128·64 ≈ 524k madds, well past
    // the spawn threshold, so the parallel dispatch genuinely runs.
    let z = clfd_tensor::init::gaussian(64, 128, 0.0, 1.0, &mut rng);
    let run = |threads: usize| -> (f32, Matrix) {
        clfd_tensor::with_threads(threads, || {
            let mut tape = Tape::new();
            let zv = tape.param(z.clone());
            tape.seal();
            let loss = clfd_losses::contrastive::nt_xent(&mut tape, zv, 0.5);
            tape.backward(loss);
            (tape.scalar(loss), tape.grad(zv))
        })
    };
    let (serial_loss, serial_grad) = run(1);
    for t in [2, 4] {
        let (loss, grad) = run(t);
        assert_eq!(serial_loss.to_bits(), loss.to_bits(), "loss at {t} threads");
        for (a, b) in serial_grad.as_slice().iter().zip(grad.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "gradient at {t} threads");
        }
    }
}

/// Same contract for the confidence-weighted SupCon loss of Eq. 5.
#[test]
fn sup_con_is_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(78);
    let z = clfd_tensor::init::gaussian(64, 128, 0.0, 1.0, &mut rng);
    let labels: Vec<Label> = (0..64)
        .map(|i| if i % 3 == 0 { Label::Malicious } else { Label::Normal })
        .collect();
    let conf: Vec<f32> = (0..64).map(|i| 0.5 + 0.007 * i as f32).collect();
    let run = |threads: usize| -> (f32, Matrix) {
        clfd_tensor::with_threads(threads, || {
            let mut tape = Tape::new();
            let zv = tape.param(z.clone());
            tape.seal();
            let loss =
                sup_con_batch(&mut tape, zv, &labels, &conf, 64, 0.5, SupConVariant::Weighted);
            tape.backward(loss);
            (tape.scalar(loss), tape.grad(zv))
        })
    };
    let (serial_loss, serial_grad) = run(1);
    for t in [2, 4] {
        let (loss, grad) = run(t);
        assert_eq!(serial_loss.to_bits(), loss.to_bits(), "loss at {t} threads");
        for (a, b) in serial_grad.as_slice().iter().zip(grad.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "gradient at {t} threads");
        }
    }
}
