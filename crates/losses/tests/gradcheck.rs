//! Finite-difference gradient checks through the full loss graphs.
//!
//! The autograd crate checks every op in isolation; these tests check the
//! *composed* graphs the training loop actually differentiates: GCE / CCE /
//! MAE / truncated-GCE classification losses, the NT-Xent and
//! confidence-weighted SupCon contrastive losses, and the opposite-class
//! mixup interpolation feeding a classification loss.

use clfd_autograd::{Tape, Var};
use clfd_data::session::Label;
use clfd_losses::contrastive::{sup_con_batch, try_nt_xent, SupConVariant};
use clfd_losses::gce::{cce_loss, cce_loss_indices, gce_loss, mae_loss, truncated_gce_loss};
use clfd_losses::mixup::MixupPlan;
use clfd_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Central-difference gradient check with mixed absolute/relative tolerance
/// (same contract as the autograd crate's op-level checks).
fn grad_check(init_value: Matrix, build: impl Fn(&mut Tape, Var) -> Var) {
    let mut tape = Tape::new();
    let p = tape.param(init_value.clone());
    tape.seal();
    let loss = build(&mut tape, p);
    tape.backward(loss);
    let analytic = tape.grad(p);

    let h = 1e-2_f32;
    let mut numeric = Matrix::zeros(init_value.rows(), init_value.cols());
    for i in 0..init_value.len() {
        let mut plus = init_value.clone();
        plus.as_mut_slice()[i] += h;
        let mut minus = init_value.clone();
        minus.as_mut_slice()[i] -= h;

        let eval = |value: Matrix| -> f32 {
            let mut t = Tape::new();
            let p = t.param(value);
            t.seal();
            let l = build(&mut t, p);
            t.scalar(l)
        };
        numeric.as_mut_slice()[i] = (eval(plus) - eval(minus)) / (2.0 * h);
    }

    for i in 0..analytic.len() {
        let a = analytic.as_slice()[i];
        let n = numeric.as_slice()[i];
        let tol = 1e-2 + 2e-2 * n.abs().max(a.abs());
        assert!(
            (a - n).abs() < tol,
            "element {i}: analytic {a} vs numeric {n} (tol {tol})"
        );
    }
}

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    init::uniform(rows, cols, -1.0, 1.0, &mut rng)
}

/// Binary one-hot targets alternating the two classes.
fn one_hot(rows: usize) -> Matrix {
    Matrix::from_fn(rows, 2, |r, c| if c == r % 2 { 1.0 } else { 0.0 })
}

#[test]
fn grad_gce_loss() {
    let targets = one_hot(5);
    grad_check(rand_matrix(5, 2, 60), |t, logits| {
        gce_loss(t, logits, &targets, 0.7)
    });
}

#[test]
fn grad_gce_loss_near_mae_and_near_cce_exponents() {
    // The q → 1 (MAE) and small-q (CCE-like) ends of the GCE family.
    let targets = one_hot(4);
    grad_check(rand_matrix(4, 2, 61), |t, logits| {
        gce_loss(t, logits, &targets, 1.0)
    });
    grad_check(rand_matrix(4, 2, 62), |t, logits| {
        gce_loss(t, logits, &targets, 0.05)
    });
}

#[test]
fn grad_cce_loss() {
    let targets = one_hot(5);
    grad_check(rand_matrix(5, 2, 63), |t, logits| {
        cce_loss(t, logits, &targets)
    });
}

#[test]
fn grad_cce_loss_indices() {
    let targets = vec![0_usize, 1, 1, 0, 1];
    grad_check(rand_matrix(5, 2, 64), |t, logits| {
        cce_loss_indices(t, logits, &targets)
    });
}

#[test]
fn grad_mae_loss() {
    let targets = one_hot(5);
    grad_check(rand_matrix(5, 2, 65), |t, logits| {
        mae_loss(t, logits, &targets)
    });
}

#[test]
fn grad_truncated_gce_loss() {
    // k = 0.05 keeps every softmax output above the truncation threshold,
    // so the finite difference never straddles the clamp kink.
    let targets = one_hot(5);
    grad_check(rand_matrix(5, 2, 66), |t, logits| {
        truncated_gce_loss(t, logits, &targets, 0.7, 0.05)
    });
}

#[test]
fn grad_nt_xent() {
    grad_check(rand_matrix(6, 4, 67).shift(0.3), |t, z| {
        try_nt_xent(t, z, 0.5).expect("valid NT-Xent inputs")
    });
}

#[test]
fn grad_sup_con_all_variants() {
    let labels = [
        Label::Normal,
        Label::Malicious,
        Label::Normal,
        Label::Malicious,
        Label::Normal,
        Label::Normal,
    ];
    let confidences = [0.9, 0.8, 0.6, 0.95, 0.7, 0.85];
    for variant in [
        SupConVariant::Weighted,
        SupConVariant::Unweighted,
        SupConVariant::Filtered { tau: 0.5 },
    ] {
        grad_check(rand_matrix(6, 4, 68).shift(0.2), |t, z| {
            sup_con_batch(t, z, &labels, &confidences, 6, 0.5, variant)
        });
    }
}

#[test]
fn grad_through_mixup_interpolation() {
    // The classifier's actual training graph: mix the representations with
    // a fixed opposite-class plan, then take CCE against the mixed targets.
    let labels = [
        Label::Normal,
        Label::Malicious,
        Label::Normal,
        Label::Malicious,
        Label::Normal,
    ];
    let mut rng = StdRng::seed_from_u64(69);
    let plan = MixupPlan::sample(&labels, 16.0, &mut rng);
    let targets = plan.mixed_targets(&one_hot(5));
    grad_check(rand_matrix(5, 2, 70), |t, v| {
        let mixed = plan.apply(t, v);
        cce_loss(t, mixed, &targets)
    });
}
