//! The paper's opposite-class mixup strategy (§III-A1, Algorithm 1 l.15–17).
//!
//! For each sample `i` a partner `j` with the *opposite* (noisy or
//! corrected) label is drawn, along with `λ_i ~ Beta(β, β)`; the classifier
//! is then trained on `v_i^λ = λ v_i + (1−λ) v_j` against the mixed target
//! `m_i = λ e_i + (1−λ) e_j`. This differs from vanilla mixup [37], which
//! pairs arbitrary samples — the opposite-class constraint guarantees every
//! interpolation crosses the decision boundary region, which is what breaks
//! label memorization for the extremely imbalanced fraud-detection setting.

use clfd_autograd::{Tape, Var};
use clfd_data::session::Label;
use clfd_tensor::{stats, Matrix};
use rand::Rng;

/// A sampled mixup pairing for one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct MixupPlan {
    /// Opposite-class partner row for each batch row.
    pub partner: Vec<usize>,
    /// Interpolation coefficient `λ_i` for each batch row.
    pub lambda: Vec<f32>,
}

impl MixupPlan {
    /// Samples partners and coefficients for a batch.
    ///
    /// `labels[i]` is row `i`'s (noisy or corrected) label; `beta` is the
    /// Beta concentration (the paper uses 16). When a row's opposite class
    /// is absent from the batch — common under extreme imbalance — the row
    /// is paired with itself and `λ = 1`, i.e. no interpolation, so training
    /// degrades gracefully instead of mixing within one class.
    pub fn sample(labels: &[Label], beta: f32, rng: &mut impl Rng) -> Self {
        assert!(!labels.is_empty(), "empty batch");
        assert!(beta > 0.0, "beta must be positive");
        let normal: Vec<usize> = indices_of(labels, Label::Normal);
        let malicious: Vec<usize> = indices_of(labels, Label::Malicious);
        let mut partner = Vec::with_capacity(labels.len());
        let mut lambda = Vec::with_capacity(labels.len());
        for (i, &l) in labels.iter().enumerate() {
            let pool = match l {
                Label::Normal => &malicious,
                Label::Malicious => &normal,
            };
            if pool.is_empty() {
                partner.push(i);
                lambda.push(1.0);
            } else {
                partner.push(pool[rng.gen_range(0..pool.len())]);
                // λ ← max(λ, 1−λ): the mixed sample stays dominated by its
                // *own* label (the DivideMix convention). Without this,
                // label noise makes "opposite-class" mixing frequently
                // interpolate two same-true-class sessions with a ~50/50
                // target, which drags whole clusters toward maximum entropy.
                let l = stats::sample_beta(beta, beta, rng);
                lambda.push(l.max(1.0 - l));
            }
        }
        Self { partner, lambda }
    }

    /// Records `v^λ = λ v + (1−λ) v[partner]` on the tape.
    pub fn apply(&self, tape: &mut Tape, v: Var) -> Var {
        assert_eq!(
            tape.value(v).rows(),
            self.partner.len(),
            "plan was sampled for a different batch size"
        );
        let own = tape.row_scale(v, self.lambda.clone());
        let partners = tape.gather(v, self.partner.clone());
        let inv: Vec<f32> = self.lambda.iter().map(|l| 1.0 - l).collect();
        let other = tape.row_scale(partners, inv);
        tape.add(own, other)
    }

    /// The mixed one-hot targets `m_i = λ e_i + (1−λ) e_j`.
    pub fn mixed_targets(&self, one_hot: &Matrix) -> Matrix {
        assert_eq!(one_hot.rows(), self.partner.len());
        Matrix::from_fn(one_hot.rows(), one_hot.cols(), |r, c| {
            let l = self.lambda[r];
            l * one_hot.get(r, c) + (1.0 - l) * one_hot.get(self.partner[r], c)
        })
    }

    /// Batch size this plan was sampled for.
    pub fn len(&self) -> usize {
        self.partner.len()
    }

    /// True when the plan is empty (never produced by [`MixupPlan::sample`]).
    pub fn is_empty(&self) -> bool {
        self.partner.is_empty()
    }
}

fn indices_of(labels: &[Label], l: Label) -> Vec<usize> {
    labels
        .iter()
        .enumerate()
        .filter(|(_, &x)| x == l)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_data::batch::one_hot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partners_come_from_opposite_class() {
        let mut rng = StdRng::seed_from_u64(0);
        let labels = vec![
            Label::Normal,
            Label::Normal,
            Label::Malicious,
            Label::Normal,
            Label::Malicious,
        ];
        for _ in 0..20 {
            let plan = MixupPlan::sample(&labels, 16.0, &mut rng);
            for (i, &j) in plan.partner.iter().enumerate() {
                assert_ne!(labels[i], labels[j], "row {i} paired within its class");
            }
        }
    }

    #[test]
    fn single_class_batch_degrades_to_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let labels = vec![Label::Normal; 4];
        let plan = MixupPlan::sample(&labels, 16.0, &mut rng);
        assert_eq!(plan.partner, vec![0, 1, 2, 3]);
        assert!(plan.lambda.iter().all(|&l| l == 1.0));
    }

    #[test]
    fn apply_interpolates_rows() {
        let labels = vec![Label::Normal, Label::Malicious];
        let plan = MixupPlan { partner: vec![1, 0], lambda: vec![0.75, 0.5] };
        let mut tape = Tape::new();
        tape.seal();
        let v = tape.constant(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap());
        let mixed = plan.apply(&mut tape, v);
        let m = tape.value(mixed);
        assert!((m.get(0, 0) - 0.75).abs() < 1e-6);
        assert!((m.get(0, 1) - 0.25).abs() < 1e-6);
        assert!((m.get(1, 0) - 0.5).abs() < 1e-6);

        let targets = plan.mixed_targets(&one_hot(&labels));
        assert!((targets.get(0, 0) - 0.75).abs() < 1e-6);
        assert!((targets.get(0, 1) - 0.25).abs() < 1e-6);
        // Rows remain probability distributions.
        for r in 0..2 {
            let sum: f32 = targets.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn high_beta_concentrates_lambda() {
        // β = 16 (the paper's setting) concentrates λ near 0.5: strong
        // interpolation, the anti-memorization regime of [37].
        let mut rng = StdRng::seed_from_u64(2);
        let labels: Vec<Label> = (0..500)
            .map(|i| if i % 2 == 0 { Label::Normal } else { Label::Malicious })
            .collect();
        let plan = MixupPlan::sample(&labels, 16.0, &mut rng);
        let near_half = plan
            .lambda
            .iter()
            .filter(|&&l| (0.25..=0.75).contains(&l))
            .count();
        assert!(
            near_half as f32 / plan.lambda.len() as f32 > 0.95,
            "only {near_half}/500 lambdas near 0.5"
        );
    }

    #[test]
    fn gradient_flows_through_mixing() {
        let labels = vec![Label::Normal, Label::Malicious];
        let plan = MixupPlan { partner: vec![1, 0], lambda: vec![0.6, 0.7] };
        let mut tape = Tape::new();
        let v = tape.param(Matrix::from_vec(2, 1, vec![2.0, 3.0]).unwrap());
        tape.seal();
        let mixed = plan.apply(&mut tape, v);
        let loss = tape.sum_all(mixed);
        tape.backward(loss);
        // d(mix)/dv0 = λ_0 + (1−λ_1) = 0.6 + 0.3; dv1 = 0.4 + 0.7.
        let g = tape.grad(v);
        assert!((g.get(0, 0) - 0.9).abs() < 1e-6);
        assert!((g.get(1, 0) - 1.1).abs() < 1e-6);
        let _ = labels;
    }
}
