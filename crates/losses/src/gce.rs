//! Generalized Cross-Entropy (GCE) and reference classification losses.
//!
//! The vanilla GCE loss (Zhang & Sabuncu [13], the paper's Eq. 1) for a
//! softmax output `f(v)` and (possibly soft / mixed) target `m` is
//!
//! ```text
//! l_GCE(f(v), m) = Σ_k (m_k / q) (1 − f_k(v)^q),   q ∈ (0, 1]
//! ```
//!
//! `q → 0` recovers categorical cross-entropy (Theorem 1), `q = 1` is the
//! MAE/unhinged loss. The paper's **mixup GCE** (Eq. 2–3) is this same
//! functional applied to mixup-interpolated representations and targets —
//! the mixing itself lives in [`crate::mixup`], so every function here
//! accepts an arbitrary row-stochastic target matrix.
//!
//! Each loss comes in a fallible `try_*` flavour returning
//! [`LossError`] and a panicking flavour that delegates to it (see
//! [`crate::error`]).

use crate::error::LossError;
use clfd_autograd::{Tape, Var};
use clfd_tensor::Matrix;

fn validate_targets(tape: &Tape, logits: Var, targets: &Matrix) -> Result<(), LossError> {
    let shape = tape.value(logits).shape();
    if shape != targets.shape() {
        return Err(LossError::ShapeMismatch { logits: shape, targets: targets.shape() });
    }
    // Out-of-range probabilities are a soft invariant (they distort but do
    // not break the arithmetic), so they stay a debug-only check.
    debug_assert!(
        targets.as_slice().iter().all(|&t| (0.0..=1.0).contains(&t)),
        "targets must be class probabilities"
    );
    Ok(())
}

/// Mean GCE loss (Eq. 1 averaged per Eq. 3) of a batch.
///
/// `logits` is `n x k`; `targets` holds one-hot or mixed class
/// probabilities. Returns a scalar node; the exact loss *value* (not just
/// its gradient) is reproduced, including the target-dependent constant.
///
/// # Errors
/// Rejects `q` outside `(0, 1]` and target/logit shape mismatches.
pub fn try_gce_loss(
    tape: &mut Tape,
    logits: Var,
    targets: &Matrix,
    q: f32,
) -> Result<Var, LossError> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(LossError::InvalidExponent { q });
    }
    validate_targets(tape, logits, targets)?;
    let n = targets.rows() as f32;
    let p = tape.softmax_rows(logits);
    let pq = tape.pow(p, q);
    // Σ m/q (1 − p^q) / n  =  Σ m / (q n)  −  <p^q, m / (q n)>.
    let constant = targets.sum() / (q * n);
    let weighted = tape.weighted_sum_all(pq, targets.scale(-1.0 / (q * n)));
    Ok(tape.add_scalar(weighted, constant))
}

/// Panicking version of [`try_gce_loss`].
///
/// # Panics
/// Panics on any [`LossError`].
pub fn gce_loss(tape: &mut Tape, logits: Var, targets: &Matrix, q: f32) -> Var {
    try_gce_loss(tape, logits, targets, q).unwrap_or_else(|e| panic!("{e}"))
}

/// Mean categorical cross-entropy: `−Σ m_k log f_k(v)`, averaged over rows.
///
/// # Errors
/// Rejects target/logit shape mismatches.
pub fn try_cce_loss(tape: &mut Tape, logits: Var, targets: &Matrix) -> Result<Var, LossError> {
    validate_targets(tape, logits, targets)?;
    let n = targets.rows() as f32;
    let logp = tape.log_softmax_rows(logits);
    Ok(tape.weighted_sum_all(logp, targets.scale(-1.0 / n)))
}

/// Panicking version of [`try_cce_loss`].
///
/// # Panics
/// Panics on any [`LossError`].
pub fn cce_loss(tape: &mut Tape, logits: Var, targets: &Matrix) -> Var {
    try_cce_loss(tape, logits, targets).unwrap_or_else(|e| panic!("{e}"))
}

/// Mean MAE/unhinged loss: `Σ m_k (1 − f_k(v))`, averaged over rows.
///
/// # Errors
/// Rejects target/logit shape mismatches.
pub fn try_mae_loss(tape: &mut Tape, logits: Var, targets: &Matrix) -> Result<Var, LossError> {
    validate_targets(tape, logits, targets)?;
    let n = targets.rows() as f32;
    let p = tape.softmax_rows(logits);
    let constant = targets.sum() / n;
    let weighted = tape.weighted_sum_all(p, targets.scale(-1.0 / n));
    Ok(tape.add_scalar(weighted, constant))
}

/// Panicking version of [`try_mae_loss`].
///
/// # Panics
/// Panics on any [`LossError`].
pub fn mae_loss(tape: &mut Tape, logits: Var, targets: &Matrix) -> Var {
    try_mae_loss(tape, logits, targets).unwrap_or_else(|e| panic!("{e}"))
}

/// Mean cross-entropy against integer class indices (`logits` is
/// `n x k`, `targets[i] < k`). Used by the sequence-model baselines
/// (DeepLog next-key prediction, LogBert masked-key prediction), whose
/// class count is the activity vocabulary rather than {normal, malicious}.
///
/// # Errors
/// Rejects a target count differing from the row count and indices `≥ k`.
pub fn try_cce_loss_indices(
    tape: &mut Tape,
    logits: Var,
    targets: &[usize],
) -> Result<Var, LossError> {
    let (n, k) = tape.value(logits).shape();
    if targets.len() != n {
        return Err(LossError::LengthMismatch {
            what: "one target per row",
            expected: n,
            found: targets.len(),
        });
    }
    if let Some(&bad) = targets.iter().find(|&&t| t >= k) {
        return Err(LossError::IndexOutOfRange { index: bad, classes: k });
    }
    let logp = tape.log_softmax_rows(logits);
    let mut weights = Matrix::zeros(n, k);
    for (r, &t) in targets.iter().enumerate() {
        weights.set(r, t, -1.0 / n as f32);
    }
    Ok(tape.weighted_sum_all(logp, weights))
}

/// Panicking version of [`try_cce_loss_indices`].
///
/// # Panics
/// Panics on any [`LossError`].
pub fn cce_loss_indices(tape: &mut Tape, logits: Var, targets: &[usize]) -> Var {
    try_cce_loss_indices(tape, logits, targets).unwrap_or_else(|e| panic!("{e}"))
}

/// Evaluates the *scalar value* of the GCE loss for given probabilities and
/// targets without a tape (used by the theory checks and sample-selection
/// baselines that rank per-sample losses).
///
/// # Panics
/// Panics unless `0 < q ≤ 1` and the slices have equal lengths — both are
/// compile-time-fixed in every caller, so this keeps the plain-`f32`
/// hot path free of `Result` plumbing.
pub fn gce_value(probs: &[f32], targets: &[f32], q: f32) -> f32 {
    assert!(q > 0.0 && q <= 1.0, "GCE exponent q must be in (0, 1], got {q}");
    assert_eq!(probs.len(), targets.len());
    probs
        .iter()
        .zip(targets)
        .map(|(&p, &m)| m / q * (1.0 - p.max(1e-12).powf(q)))
        .sum()
}

/// Scalar categorical cross-entropy value for one sample.
///
/// # Panics
/// Panics on length mismatch (see [`gce_value`] for why this is an assert).
pub fn cce_value(probs: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(probs.len(), targets.len());
    -probs
        .iter()
        .zip(targets)
        .map(|(&p, &m)| m * p.max(1e-12).ln())
        .sum::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Infallible `Matrix` literal for tests (lengths are written inline).
    fn m(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        Matrix::from_vec(rows, cols, data).expect("test literal has matching dimensions")
    }

    fn setup(logit_values: Matrix) -> (Tape, Var) {
        let mut tape = Tape::new();
        let logits = tape.param(logit_values);
        tape.seal();
        (tape, logits)
    }

    #[test]
    fn gce_matches_hand_computation() {
        // Single sample, logits (0, 0) → p = (0.5, 0.5); target (1, 0).
        let (mut tape, logits) = setup(Matrix::zeros(1, 2));
        let targets = m(1, 2, vec![1.0, 0.0]);
        let q = 0.7;
        let loss = gce_loss(&mut tape, logits, &targets, q);
        let expected = (1.0 - 0.5_f32.powf(q)) / q;
        assert!((tape.scalar(loss) - expected).abs() < 1e-5);
    }

    #[test]
    fn gce_is_bounded_by_one_over_q() {
        // Theorem 2 upper bound: l ≤ 1/q, even for confident wrong outputs.
        let (mut tape, logits) = setup(m(1, 2, vec![-20.0, 20.0]));
        let targets = m(1, 2, vec![1.0, 0.0]);
        let loss = gce_loss(&mut tape, logits, &targets, 0.7);
        let v = tape.scalar(loss);
        assert!(v <= 1.0 / 0.7 + 1e-4, "GCE value {v} exceeds 1/q");
        assert!(v > 1.0, "confident-wrong GCE should be near its bound, got {v}");
    }

    #[test]
    fn cce_is_unbounded_where_gce_saturates() {
        // The same confident-wrong sample: CCE explodes, GCE does not —
        // this is the over-fitting mechanism of §III-A1.
        let (mut tape, logits) = setup(m(1, 2, vec![-20.0, 20.0]));
        let targets = m(1, 2, vec![1.0, 0.0]);
        let cce = cce_loss(&mut tape, logits, &targets);
        assert!(tape.scalar(cce) > 10.0, "CCE {}", tape.scalar(cce));
    }

    #[test]
    fn gce_gradient_de_emphasizes_weak_agreement() {
        // §III-A "model over-fitting": the GCE gradient weight
        // w = m * f^(q-1) * f' places *less* relative emphasis on samples
        // whose prediction disagrees with the target than CCE does.
        // Compare gradient norms: CCE's wrong-sample/right-sample gradient
        // ratio must exceed GCE's.
        let wrong = m(1, 2, vec![-3.0, 3.0]);
        let right = m(1, 2, vec![3.0, -3.0]);
        let targets = m(1, 2, vec![1.0, 0.0]);
        let grad_norm = |values: &Matrix, use_gce: bool| -> f32 {
            let (mut tape, logits) = setup(values.clone());
            let loss = if use_gce {
                gce_loss(&mut tape, logits, &targets, 0.7)
            } else {
                cce_loss(&mut tape, logits, &targets)
            };
            tape.backward(loss);
            tape.grad(logits).frobenius_norm()
        };
        let gce_ratio = grad_norm(&wrong, true) / grad_norm(&right, true);
        let cce_ratio = grad_norm(&wrong, false) / grad_norm(&right, false);
        assert!(
            cce_ratio > gce_ratio * 2.0,
            "CCE ratio {cce_ratio} vs GCE ratio {gce_ratio}"
        );
    }

    #[test]
    fn q_one_equals_mae() {
        let mut rng = StdRng::seed_from_u64(0);
        let values = init::uniform(4, 2, -2.0, 2.0, &mut rng);
        let targets = Matrix::from_fn(4, 2, |r, c| if c == r % 2 { 1.0 } else { 0.0 });
        let (mut tape, logits) = setup(values.clone());
        let g = gce_loss(&mut tape, logits, &targets, 1.0);
        let gv = tape.scalar(g);
        let (mut tape2, logits2) = setup(values);
        let ma = mae_loss(&mut tape2, logits2, &targets);
        assert!((gv - tape2.scalar(ma)).abs() < 1e-5);
    }

    #[test]
    fn small_q_approaches_cce() {
        // Theorem 1: lim_{q→0} GCE = CCE.
        let mut rng = StdRng::seed_from_u64(1);
        let values = init::uniform(3, 2, -1.5, 1.5, &mut rng);
        // Soft (mixup-style) targets to exercise the general case.
        let targets = m(3, 2, vec![0.8, 0.2, 0.3, 0.7, 0.55, 0.45]);
        let (mut tape, logits) = setup(values.clone());
        let g = gce_loss(&mut tape, logits, &targets, 0.001);
        let gv = tape.scalar(g);
        let (mut tape2, logits2) = setup(values);
        let c = cce_loss(&mut tape2, logits2, &targets);
        assert!((gv - tape2.scalar(c)).abs() < 5e-3, "{gv} vs {}", tape2.scalar(c));
    }

    #[test]
    fn scalar_helpers_agree_with_tape_losses() {
        let probs = [0.3_f32, 0.7];
        let target = [1.0_f32, 0.0];
        let g = gce_value(&probs, &target, 0.7);
        assert!((g - (1.0 - 0.3_f32.powf(0.7)) / 0.7).abs() < 1e-6);
        let c = cce_value(&probs, &target);
        assert!((c + 0.3_f32.ln()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "q must be in (0, 1]")]
    fn invalid_q_panics() {
        let (mut tape, logits) = setup(Matrix::zeros(1, 2));
        gce_loss(&mut tape, logits, &m(1, 2, vec![1.0, 0.0]), 1.5);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        let (mut tape, logits) = setup(Matrix::zeros(2, 2));
        let ok = m(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert!(try_gce_loss(&mut tape, logits, &ok, 0.7).is_ok());
        assert_eq!(
            try_gce_loss(&mut tape, logits, &ok, 0.0),
            Err(LossError::InvalidExponent { q: 0.0 })
        );
        assert_eq!(
            try_cce_loss(&mut tape, logits, &m(1, 2, vec![1.0, 0.0])),
            Err(LossError::ShapeMismatch { logits: (2, 2), targets: (1, 2) })
        );
        assert!(matches!(
            try_cce_loss_indices(&mut tape, logits, &[0]),
            Err(LossError::LengthMismatch { .. })
        ));
    }
}

/// Truncated GCE loss (Zhang & Sabuncu [13], §3.3) — the paper lists
/// analysing further robust losses as future work; this is the natural
/// first candidate since it comes from the same source as Eq. 1.
///
/// Samples whose true-class probability falls below `k` are clipped to a
/// constant loss `l_GCE(k) = (1 − k^q)/q`, removing their gradient
/// entirely (a hard version of GCE's soft down-weighting):
///
/// ```text
/// l_trunc(f, m) = Σ_j m_j · min( (1 − f_j^q)/q , (1 − k^q)/q )   — per class j,
/// ```
///
/// which for one-hot `m` matches [13]'s formulation. `k = 0` recovers the
/// plain GCE loss.
///
/// # Errors
/// Rejects `q` outside `(0, 1]`, `k` outside `[0, 1)`, and shape
/// mismatches.
pub fn try_truncated_gce_loss(
    tape: &mut Tape,
    logits: Var,
    targets: &Matrix,
    q: f32,
    k: f32,
) -> Result<Var, LossError> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(LossError::InvalidExponent { q });
    }
    if !(0.0..1.0).contains(&k) {
        return Err(LossError::InvalidTruncation { k });
    }
    validate_targets(tape, logits, targets)?;
    let n = targets.rows() as f32;
    let p = tape.softmax_rows(logits);
    // Clamp probabilities from below at k: for f < k the loss value and
    // gradient both freeze at the k level, exactly [13]'s truncation.
    let shifted = tape.add_scalar(p, -k);
    let relu = tape.leaky_relu(shifted, 0.0);
    let clamped = tape.add_scalar(relu, k); // max(f, k)
    let pq = tape.pow(clamped, q);
    let constant = targets.sum() / (q * n);
    let weighted = tape.weighted_sum_all(pq, targets.scale(-1.0 / (q * n)));
    Ok(tape.add_scalar(weighted, constant))
}

/// Panicking version of [`try_truncated_gce_loss`].
///
/// # Panics
/// Panics on any [`LossError`].
pub fn truncated_gce_loss(
    tape: &mut Tape,
    logits: Var,
    targets: &Matrix,
    q: f32,
    k: f32,
) -> Var {
    try_truncated_gce_loss(tape, logits, targets, q, k).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod truncated_tests {
    use super::*;

    /// Infallible `Matrix` literal for tests.
    fn m(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        Matrix::from_vec(rows, cols, data).expect("test literal has matching dimensions")
    }

    fn setup(logit_values: Matrix) -> (Tape, Var) {
        let mut tape = Tape::new();
        let logits = tape.param(logit_values);
        tape.seal();
        (tape, logits)
    }

    #[test]
    fn truncation_at_zero_equals_plain_gce() {
        let values = m(2, 2, vec![0.8, -0.3, -1.2, 0.4]);
        let targets = m(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let (mut t1, l1) = setup(values.clone());
        let a = truncated_gce_loss(&mut t1, l1, &targets, 0.7, 0.0);
        let (mut t2, l2) = setup(values);
        let b = gce_loss(&mut t2, l2, &targets, 0.7);
        assert!((t1.scalar(a) - t2.scalar(b)).abs() < 1e-5);
    }

    #[test]
    fn truncation_caps_the_loss_of_hopeless_samples() {
        // A confidently-wrong sample: plain GCE approaches 1/q; truncated
        // GCE caps at (1 − k^q)/q.
        let (mut tape, logits) = setup(m(1, 2, vec![-20.0, 20.0]));
        let targets = m(1, 2, vec![1.0, 0.0]);
        let (q, k) = (0.7_f32, 0.3_f32);
        let loss = truncated_gce_loss(&mut tape, logits, &targets, q, k);
        let cap = (1.0 - k.powf(q)) / q;
        assert!((tape.scalar(loss) - cap).abs() < 1e-4);
    }

    #[test]
    fn truncation_removes_the_gradient_of_clipped_samples() {
        let (mut tape, logits) = setup(m(1, 2, vec![-20.0, 20.0]));
        let targets = m(1, 2, vec![1.0, 0.0]);
        let loss = truncated_gce_loss(&mut tape, logits, &targets, 0.7, 0.3);
        tape.backward(loss);
        assert!(tape.grad(logits).max_abs() < 1e-6, "clipped sample still trains");
    }

    #[test]
    fn unclipped_samples_still_train() {
        let (mut tape, logits) = setup(m(1, 2, vec![0.2, -0.2]));
        let targets = m(1, 2, vec![1.0, 0.0]);
        let loss = truncated_gce_loss(&mut tape, logits, &targets, 0.7, 0.3);
        tape.backward(loss);
        assert!(tape.grad(logits).max_abs() > 1e-4);
    }

    #[test]
    fn invalid_truncation_is_a_typed_error() {
        let (mut tape, logits) = setup(Matrix::zeros(1, 2));
        let targets = m(1, 2, vec![1.0, 0.0]);
        assert_eq!(
            try_truncated_gce_loss(&mut tape, logits, &targets, 0.7, 1.0),
            Err(LossError::InvalidTruncation { k: 1.0 })
        );
    }
}
