//! Typed validation errors for loss construction.
//!
//! Every loss in this crate has two entry points: a `try_*` function
//! returning `Result<Var, LossError>`, and the original panicking function
//! (kept for ergonomic use in experiment code where invalid
//! hyper-parameters are programmer errors). The panicking wrappers
//! delegate to the `try_*` versions, so the two can never disagree about
//! what counts as invalid.

/// A loss function rejected its inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossError {
    /// GCE exponent outside `(0, 1]`.
    InvalidExponent {
        /// Offending exponent.
        q: f32,
    },
    /// Truncated-GCE truncation level outside `[0, 1)`.
    InvalidTruncation {
        /// Offending truncation level.
        k: f32,
    },
    /// Target matrix shape differs from the logits shape.
    ShapeMismatch {
        /// Shape of the logits node.
        logits: (usize, usize),
        /// Shape of the target matrix.
        targets: (usize, usize),
    },
    /// NT-Xent batch is odd or has fewer than four view rows.
    BatchTooSmall {
        /// Number of view rows supplied.
        rows: usize,
    },
    /// A per-row side input (labels, confidences, index targets) has the
    /// wrong length.
    LengthMismatch {
        /// What the side input describes.
        what: &'static str,
        /// Rows in the embedding/logit matrix.
        expected: usize,
        /// Entries supplied.
        found: usize,
    },
    /// An integer class target is outside the logit column range.
    IndexOutOfRange {
        /// Offending class index.
        index: usize,
        /// Number of classes (logit columns).
        classes: usize,
    },
    /// Supervised-contrastive anchor count outside `1..=n`.
    InvalidAnchors {
        /// Requested anchor count.
        anchors: usize,
        /// Rows available.
        rows: usize,
    },
    /// Softmax temperature is zero, negative, or non-finite.
    InvalidTemperature {
        /// Offending temperature.
        temperature: f32,
    },
}

impl std::fmt::Display for LossError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidExponent { q } => {
                write!(f, "GCE exponent q must be in (0, 1], got {q}")
            }
            Self::InvalidTruncation { k } => {
                write!(f, "truncation level k must be in [0, 1), got {k}")
            }
            Self::ShapeMismatch { logits, targets } => {
                write!(f, "targets shape {targets:?} must match logits shape {logits:?}")
            }
            Self::BatchTooSmall { rows } => {
                write!(f, "NT-Xent needs an even batch of ≥ 4 views, got {rows}")
            }
            Self::LengthMismatch { what, expected, found } => {
                write!(f, "{what}: expected {expected} entries, found {found}")
            }
            Self::IndexOutOfRange { index, classes } => {
                write!(f, "target index out of range: {index} with {classes} classes")
            }
            Self::InvalidAnchors { anchors, rows } => {
                write!(f, "anchors must be in 1..=n, got {anchors} of {rows} rows")
            }
            Self::InvalidTemperature { temperature } => {
                write!(f, "temperature must be positive, got {temperature}")
            }
        }
    }
}

impl std::error::Error for LossError {}
