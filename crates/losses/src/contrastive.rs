//! Contrastive losses: SimCLR NT-Xent and the supervised contrastive
//! family of Eq. 5/6 with the §VII variants.
//!
//! All variants share the same machinery: L2-normalize the embeddings,
//! compute pairwise cosine similarities, mask the diagonal, take a row-wise
//! log-softmax (which *is* Eq. 6 for every candidate pair at once), and
//! contract with a constant weight matrix that encodes which pairs are
//! positives and how much they count. The weight matrix is where the
//! paper's contribution lives: `c_i · c_p` down-weights pairs the label
//! corrector is uncertain about.

use crate::error::LossError;
use clfd_autograd::{Tape, Var};
use clfd_data::session::Label;
use clfd_tensor::kernels;
use clfd_tensor::Matrix;

/// Large negative constant masking self-similarities before the softmax.
const SELF_MASK: f32 = -1e9;

/// Which supervised contrastive batch loss to build (§VII).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SupConVariant {
    /// The paper's confidence-weighted `L_Sup` (Eq. 5): pair weight `c_i c_p`.
    Weighted,
    /// Unweighted `L_Sup^uw` (Eq. 18): pair weight 1.
    Unweighted,
    /// Filtered `L_Sup^ftr` (Eq. 20): pair weight `1[c_i c_p > τ]`.
    Filtered {
        /// Joint-confidence threshold τ.
        tau: f32,
    },
}

/// Builds the similarity → masked log-softmax pipeline shared by all
/// contrastive losses. Returns the `n x n` log-probability node.
fn log_softmax_similarities(
    tape: &mut Tape,
    z: Var,
    temperature: f32,
) -> Result<Var, LossError> {
    if !(temperature > 0.0 && temperature.is_finite()) {
        return Err(LossError::InvalidTemperature { temperature });
    }
    let zn = tape.row_l2_normalize(z, 1e-12);
    let sims = tape.matmul_transpose(zn, zn);
    let scaled = tape.scale(sims, 1.0 / temperature);
    let n = tape.value(scaled).rows();
    let mask = tape.constant(Matrix::from_fn(n, n, |r, c| {
        if r == c {
            SELF_MASK
        } else {
            0.0
        }
    }));
    let masked = tape.add(scaled, mask);
    Ok(tape.log_softmax_rows(masked))
}

/// SimCLR NT-Xent loss over a `2N x d` batch where rows `i` and `i + N` are
/// the two augmented views of sample `i` (used to pre-train the label
/// corrector's encoder, §III-A).
///
/// # Errors
/// Rejects odd or under-sized batches and non-positive temperatures.
pub fn try_nt_xent(tape: &mut Tape, z: Var, temperature: f32) -> Result<Var, LossError> {
    let n2 = tape.value(z).rows();
    if n2 < 4 || !n2.is_multiple_of(2) {
        return Err(LossError::BatchTooSmall { rows: n2 });
    }
    let n = n2 / 2;
    let logp = log_softmax_similarities(tape, z, temperature)?;
    let weights = Matrix::from_fn(n2, n2, |r, c| {
        let positive = if r < n { r + n } else { r - n };
        if c == positive {
            -1.0 / n2 as f32
        } else {
            0.0
        }
    });
    Ok(tape.weighted_sum_all(logp, weights))
}

/// Panicking version of [`try_nt_xent`].
///
/// # Panics
/// Panics on any [`LossError`].
pub fn nt_xent(tape: &mut Tape, z: Var, temperature: f32) -> Var {
    try_nt_xent(tape, z, temperature).unwrap_or_else(|e| panic!("{e}"))
}

/// Supervised contrastive batch loss over `z` (`(R + M) x d`, the batch `S`
/// followed by the auxiliary malicious batch `S¹` of §III-B1).
///
/// Only the first `anchors` rows (the batch `S`) act as anchors, exactly as
/// in Eq. 5; every row participates as a candidate positive/negative.
/// `labels` are the corrected labels and `confidences` the label-corrector
/// softmax confidences `c_i` for all rows.
///
/// Anchors with an empty positive set `B(x_i)` contribute nothing. If *no*
/// anchor has positives the loss is a constant zero node.
///
/// # Errors
/// Rejects label/confidence slices whose length differs from the row
/// count, anchor counts outside `1..=n`, and non-positive temperatures.
pub fn try_sup_con_batch(
    tape: &mut Tape,
    z: Var,
    labels: &[Label],
    confidences: &[f32],
    anchors: usize,
    temperature: f32,
    variant: SupConVariant,
) -> Result<Var, LossError> {
    let n = tape.value(z).rows();
    if labels.len() != n {
        return Err(LossError::LengthMismatch {
            what: "one label per row",
            expected: n,
            found: labels.len(),
        });
    }
    if confidences.len() != n {
        return Err(LossError::LengthMismatch {
            what: "one confidence per row",
            expected: n,
            found: confidences.len(),
        });
    }
    if anchors < 1 || anchors > n {
        return Err(LossError::InvalidAnchors { anchors, rows: n });
    }
    debug_assert!(
        confidences.iter().all(|&c| (0.0..=1.0).contains(&c)),
        "confidences are softmax outputs"
    );

    let logp = log_softmax_similarities(tape, z, temperature)?;
    let mut weights = Matrix::zeros(n, n);
    for i in 0..anchors {
        let b_size = (0..n).filter(|&j| j != i && labels[j] == labels[i]).count();
        if b_size == 0 {
            continue;
        }
        let norm = 1.0 / (anchors as f32 * b_size as f32);
        for j in 0..n {
            if j == i || labels[j] != labels[i] {
                continue;
            }
            let pair_weight = match variant {
                SupConVariant::Weighted => confidences[i] * confidences[j],
                SupConVariant::Unweighted => 1.0,
                SupConVariant::Filtered { tau } => {
                    if confidences[i] * confidences[j] > tau {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            weights.set(i, j, -pair_weight * norm);
        }
    }
    Ok(tape.weighted_sum_all(logp, weights))
}

/// Panicking version of [`try_sup_con_batch`].
///
/// # Panics
/// Panics on any [`LossError`].
pub fn sup_con_batch(
    tape: &mut Tape,
    z: Var,
    labels: &[Label],
    confidences: &[f32],
    anchors: usize,
    temperature: f32,
    variant: SupConVariant,
) -> Var {
    try_sup_con_batch(tape, z, labels, confidences, anchors, temperature, variant)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Scalar value of the individual pair loss `l_Sup(z_i, z_p)` of Eq. 6,
/// computed directly from an embedding matrix (for tests and the Theorem 5
/// numeric check). The candidate set `A(x_i)` is every row except `i`.
pub fn sup_con_pair(z: &Matrix, i: usize, p: usize, temperature: f32) -> f32 {
    assert!(i != p, "a pair needs two distinct sessions");
    let n = z.rows();
    let zn = z.l2_normalize_rows(1e-12);
    let sim = |a: usize, b: usize| kernels::dot(zn.row(a), zn.row(b)) / temperature;
    let mut denom = 0.0_f32;
    for j in 0..n {
        if j != i {
            denom += sim(i, j).exp();
        }
    }
    -(sim(i, p).exp() / denom).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clfd_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn embeddings(rows: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        init::uniform(rows, dim, -1.0, 1.0, &mut rng)
    }

    fn on_tape(values: Matrix) -> (Tape, Var) {
        let mut tape = Tape::new();
        let z = tape.param(values);
        tape.seal();
        (tape, z)
    }

    #[test]
    fn nt_xent_lower_for_aligned_views() {
        // Batch where views are identical (perfectly aligned) must score a
        // lower loss than a batch of random pairings.
        let half = embeddings(3, 4, 0);
        let aligned = half.vstack(&half);
        let (mut tape, z) = on_tape(aligned);
        let aligned_loss = {
            let l = nt_xent(&mut tape, z, 1.0);
            tape.scalar(l)
        };
        let (mut tape2, z2) = on_tape(embeddings(6, 4, 99));
        let random_loss = {
            let l = nt_xent(&mut tape2, z2, 1.0);
            tape2.scalar(l)
        };
        assert!(
            aligned_loss < random_loss,
            "aligned {aligned_loss} vs random {random_loss}"
        );
    }

    #[test]
    fn nt_xent_gradient_pulls_views_together() {
        // One SGD step on NT-Xent must increase the cosine similarity of the
        // two views of a sample.
        let mut values = embeddings(4, 3, 1);
        // make views of sample 0 clearly misaligned
        values.row_mut(0).copy_from_slice(&[1.0, 0.0, 0.0]);
        values.row_mut(2).copy_from_slice(&[0.0, 1.0, 0.0]);
        let before = kernels::cosine_similarity(values.row(0), values.row(2));
        let (mut tape, z) = on_tape(values);
        let loss = nt_xent(&mut tape, z, 0.5);
        tape.backward(loss);
        let g = tape.grad(z);
        tape.value_mut(z).add_scaled(&g, -0.5);
        let v = tape.value(z);
        let after = kernels::cosine_similarity(v.row(0), v.row(2));
        assert!(after > before, "similarity {before} -> {after}");
    }

    #[test]
    fn sup_con_weighted_matches_pair_loss_composition() {
        // Eq. 5 must equal (1/R) Σ_i (1/|B_i|) Σ_p (c_i c_p) l_sup(i, p).
        let values = embeddings(5, 4, 2);
        let labels = vec![
            Label::Normal,
            Label::Normal,
            Label::Malicious,
            Label::Malicious,
            Label::Malicious,
        ];
        let conf = vec![0.9, 0.8, 0.95, 0.7, 0.6];
        let anchors = 4; // last row is auxiliary-only
        let (mut tape, z) = on_tape(values.clone());
        let loss = sup_con_batch(
            &mut tape,
            z,
            &labels,
            &conf,
            anchors,
            1.0,
            SupConVariant::Weighted,
        );
        let got = tape.scalar(loss);

        let mut expected = 0.0;
        for i in 0..anchors {
            let b: Vec<usize> = (0..5)
                .filter(|&j| j != i && labels[j] == labels[i])
                .collect();
            if b.is_empty() {
                continue;
            }
            let mut inner = 0.0;
            for &p in &b {
                inner += conf[i] * conf[p] * sup_con_pair(&values, i, p, 1.0);
            }
            expected += inner / b.len() as f32;
        }
        expected /= anchors as f32;
        assert!((got - expected).abs() < 1e-4, "{got} vs {expected}");
    }

    #[test]
    fn unweighted_equals_weighted_at_full_confidence() {
        let values = embeddings(6, 4, 3);
        let labels = vec![
            Label::Normal,
            Label::Malicious,
            Label::Normal,
            Label::Malicious,
            Label::Normal,
            Label::Malicious,
        ];
        let full = vec![1.0; 6];
        let (mut tape, z) = on_tape(values.clone());
        let w = sup_con_batch(&mut tape, z, &labels, &full, 6, 1.0, SupConVariant::Weighted);
        let wv = tape.scalar(w);
        let (mut tape2, z2) = on_tape(values);
        let u = sup_con_batch(&mut tape2, z2, &labels, &full, 6, 1.0, SupConVariant::Unweighted);
        assert!((wv - tape2.scalar(u)).abs() < 1e-5);
    }

    #[test]
    fn low_confidence_pairs_are_down_weighted() {
        // Gradient magnitude through a low-confidence anchor must shrink
        // relative to the unweighted loss (§VII's improper-learning-effect
        // reduction).
        let values = embeddings(4, 3, 4);
        let labels =
            vec![Label::Normal, Label::Normal, Label::Malicious, Label::Malicious];
        let uncertain = vec![0.51, 0.52, 0.9, 0.9]; // corrector unsure on class 0
        let grad_on_row0 = |variant: SupConVariant, conf: &[f32]| -> f32 {
            let (mut tape, z) = on_tape(values.clone());
            let loss = sup_con_batch(&mut tape, z, &labels, conf, 4, 1.0, variant);
            tape.backward(loss);
            let g = tape.grad(z);
            g.row(0).iter().map(|x| x * x).sum::<f32>().sqrt()
        };
        let weighted = grad_on_row0(SupConVariant::Weighted, &uncertain);
        let unweighted = grad_on_row0(SupConVariant::Unweighted, &uncertain);
        assert!(
            weighted < unweighted * 0.5,
            "weighted grad {weighted} not damped vs {unweighted}"
        );
    }

    #[test]
    fn filtered_discards_below_threshold() {
        let values = embeddings(4, 3, 5);
        let labels =
            vec![Label::Normal, Label::Normal, Label::Malicious, Label::Malicious];
        let conf = vec![0.6, 0.6, 0.99, 0.99];
        // τ = 0.5: the normal pair (joint confidence 0.36) is filtered out;
        // the malicious pair (0.98) survives. Verify Eq. 20 exactly against
        // the indicator-weighted pair-loss composition.
        let (mut tape, z) = on_tape(values.clone());
        let loss = sup_con_batch(
            &mut tape,
            z,
            &labels,
            &conf,
            4,
            1.0,
            SupConVariant::Filtered { tau: 0.5 },
        );
        let got = tape.scalar(loss);
        let mut expected = 0.0_f32;
        for i in 0..4 {
            let b: Vec<usize> =
                (0..4).filter(|&j| j != i && labels[j] == labels[i]).collect();
            if b.is_empty() {
                continue;
            }
            let inner: f32 = b
                .iter()
                .filter(|&&p| conf[i] * conf[p] > 0.5)
                .map(|&p| sup_con_pair(&values, i, p, 1.0))
                .sum();
            expected += inner / b.len() as f32;
        }
        expected /= 4.0;
        assert!((got - expected).abs() < 1e-4, "{got} vs {expected}");
        // The filtered loss must only count the malicious anchors' pairs.
        assert!(got > 0.0);
    }

    #[test]
    fn anchors_without_positives_contribute_nothing() {
        let values = embeddings(3, 3, 6);
        // Single normal anchor, no same-class partner anywhere.
        let labels = vec![Label::Normal, Label::Malicious, Label::Malicious];
        let (mut tape, z) = on_tape(values);
        let loss = sup_con_batch(
            &mut tape,
            z,
            &labels,
            &[1.0, 1.0, 1.0],
            1,
            1.0,
            SupConVariant::Weighted,
        );
        assert_eq!(tape.scalar(loss), 0.0);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        let (mut tape, z) = on_tape(embeddings(4, 3, 7));
        assert_eq!(
            try_nt_xent(&mut tape, z, 0.0),
            Err(LossError::InvalidTemperature { temperature: 0.0 })
        );
        let (mut tape3, z3) = on_tape(embeddings(3, 3, 8));
        assert_eq!(try_nt_xent(&mut tape3, z3, 0.5), Err(LossError::BatchTooSmall { rows: 3 }));
        let labels = vec![Label::Normal, Label::Malicious, Label::Normal];
        assert!(matches!(
            try_sup_con_batch(
                &mut tape3,
                z3,
                &labels,
                &[0.9, 0.9],
                3,
                1.0,
                SupConVariant::Weighted
            ),
            Err(LossError::LengthMismatch { what: "one confidence per row", .. })
        ));
        assert_eq!(
            try_sup_con_batch(
                &mut tape3,
                z3,
                &labels,
                &[0.9; 3],
                4,
                1.0,
                SupConVariant::Weighted
            ),
            Err(LossError::InvalidAnchors { anchors: 4, rows: 3 })
        );
    }

    #[test]
    fn pair_loss_decreases_with_similarity() {
        let mut z = Matrix::zeros(3, 2);
        z.row_mut(0).copy_from_slice(&[1.0, 0.0]);
        z.row_mut(1).copy_from_slice(&[0.9, 0.1]); // close to row 0
        z.row_mut(2).copy_from_slice(&[-1.0, 0.0]); // opposite
        let close = sup_con_pair(&z, 0, 1, 1.0);
        let far = sup_con_pair(&z, 0, 2, 1.0);
        assert!(close < far, "close {close} vs far {far}");
    }
}
