//! Loss library for the CLFD reproduction.
//!
//! Implements every loss the paper defines or compares against:
//!
//! - [`gce`] — Generalized Cross-Entropy (Eq. 1), the paper's **mixup GCE**
//!   (Eq. 2–3), and the CCE / MAE reference losses with their mixup versions.
//! - [`mixup`] — the paper's opposite-class mixup strategy (§III-A1 /
//!   Algorithm 1 lines 15–17): partner sampled from the opposite noisy
//!   class, λ ~ Beta(β, β).
//! - [`contrastive`] — SimCLR NT-Xent (label-corrector pre-training), the
//!   supervised contrastive pair loss (Eq. 6), and the three supervised
//!   batch losses analysed in §VII: **confidence-weighted** `L_Sup` (Eq. 5),
//!   unweighted `L_Sup^uw` (Eq. 18), and filtered `L_Sup^ftr` (Eq. 20).
//! - [`theory`] — numeric checks of Theorems 1–5 (used by tests and the
//!   `theorems` benchmark binary).
//!
//! All losses are recorded on a [`Tape`](clfd_autograd::Tape) and return a
//! scalar `Var`, so `tape.backward(loss)` yields gradients for any encoder
//! or classifier upstream.
//!
//! Each loss has a fallible `try_*` entry point returning
//! [`error::LossError`] and a panicking wrapper; fault-tolerant callers
//! (the pipeline's `try_fit` path) use the former.

pub mod contrastive;
pub mod error;
pub mod gce;
pub mod mixup;
pub mod theory;

pub use contrastive::{
    nt_xent, sup_con_batch, sup_con_pair, try_nt_xent, try_sup_con_batch, SupConVariant,
};
pub use error::LossError;
pub use gce::{
    cce_loss, gce_loss, mae_loss, truncated_gce_loss, try_cce_loss, try_gce_loss, try_mae_loss,
    try_truncated_gce_loss,
};
pub use mixup::MixupPlan;
