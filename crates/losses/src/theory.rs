//! Numeric verification of the paper's Theorems 1–5.
//!
//! The theorems are analytic statements about the mixup GCE loss (Theorems
//! 1–4, §VI) and the weighted supervised contrastive loss (Theorem 5). Each
//! `check_*` function evaluates both sides of the statement on randomly
//! sampled data and reports whether the claim held — these back both the
//! test suite and the `theorems` experiment binary.

use crate::contrastive::sup_con_pair;
use crate::gce::{cce_value, gce_value};
use clfd_tensor::{init, stats};
use rand::Rng;

/// Outcome of one numeric theorem check.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoremReport {
    /// Which theorem was checked.
    pub name: &'static str,
    /// Left-hand side of the inequality / limit discrepancy.
    pub lhs: f64,
    /// Right-hand side (bound).
    pub rhs: f64,
    /// Whether the statement held on the sampled data.
    pub holds: bool,
}

impl TheoremReport {
    fn new(name: &'static str, lhs: f64, rhs: f64) -> Self {
        Self { name, lhs, rhs, holds: lhs <= rhs + 1e-6 }
    }
}

fn random_softmax(rng: &mut impl Rng) -> [f32; 2] {
    let a: f32 = rng.gen_range(-4.0..4.0);
    let p = 1.0 / (1.0 + (-a).exp());
    [p, 1.0 - p]
}

/// Samples a mixed target `m = λ e_i + (1−λ) e_j` with opposite-class
/// endpoints, as produced by the paper's mixup strategy.
fn mixed_target(label: usize, lambda: f32) -> [f32; 2] {
    let mut m = [0.0_f32; 2];
    m[label] = lambda;
    m[1 - label] = 1.0 - lambda;
    m
}

/// Theorem 1: `lim_{q→0} l_GCE^λ = l_CCE^λ`.
///
/// Checked as: at `q = 1e-3` the two losses differ by less than 1% on
/// random predictions and random mixed targets.
pub fn check_theorem1(samples: usize, rng: &mut impl Rng) -> TheoremReport {
    let q = 1e-3;
    let mut max_rel = 0.0_f64;
    for _ in 0..samples {
        let p = random_softmax(rng);
        let lambda = stats::sample_beta(16.0, 16.0, rng);
        let m = mixed_target(usize::from(rng.gen::<bool>()), lambda);
        let g = gce_value(&p, &m, q) as f64;
        let c = cce_value(&p, &m) as f64;
        let rel = ((g - c) / c.abs().max(1e-6)).abs();
        max_rel = max_rel.max(rel);
    }
    TheoremReport::new("Theorem 1 (q→0 limit, max relative gap)", max_rel, 0.01)
}

/// Theorem 2: `min(λ, 1−λ)·(2 − 2^{1−q})/q ≤ l_GCE^λ ≤ 1/q`.
///
/// Returns a report whose `holds` is true only if *every* sampled loss
/// respected both bounds; `lhs` is the worst bound violation (0 if none).
pub fn check_theorem2(samples: usize, q: f32, rng: &mut impl Rng) -> TheoremReport {
    let mut worst: f64 = 0.0;
    for _ in 0..samples {
        let p = random_softmax(rng);
        let lambda = stats::sample_beta(16.0, 16.0, rng);
        let m = mixed_target(usize::from(rng.gen::<bool>()), lambda);
        let l = gce_value(&p, &m, q) as f64;
        let upper = 1.0 / q as f64;
        let lower =
            lambda.min(1.0 - lambda) as f64 * (2.0 - 2.0_f64.powf(1.0 - q as f64)) / q as f64;
        worst = worst.max(l - upper).max(lower - l);
    }
    TheoremReport::new("Theorem 2 (bounds, worst violation)", worst, 0.0)
}

/// Theorem 3: under uniform noise η, `R̃ ≤ R + η/q`.
pub fn check_theorem3(samples: usize, eta: f32, q: f32, rng: &mut impl Rng) -> TheoremReport {
    let mut clean_risk = 0.0_f64;
    let mut noisy_risk = 0.0_f64;
    for _ in 0..samples {
        let p = random_softmax(rng);
        let lambda = stats::sample_beta(16.0, 16.0, rng);
        let label = usize::from(rng.gen::<bool>());
        let noisy_label = if rng.gen::<f32>() < eta { 1 - label } else { label };
        clean_risk += gce_value(&p, &mixed_target(label, lambda), q) as f64;
        noisy_risk += gce_value(&p, &mixed_target(noisy_label, lambda), q) as f64;
    }
    clean_risk /= samples as f64;
    noisy_risk /= samples as f64;
    TheoremReport::new(
        "Theorem 3 (uniform-noise risk bound)",
        noisy_risk,
        clean_risk + eta as f64 / q as f64,
    )
}

/// Theorem 4: under class-dependent noise,
/// `R̃ ≤ τ̃¹(R|y=1 + η10/q) + τ̃⁰(R|y=0 + η01/q)`.
pub fn check_theorem4(
    samples: usize,
    eta10: f32,
    eta01: f32,
    q: f32,
    rng: &mut impl Rng,
) -> TheoremReport {
    let mut noisy_risk = 0.0_f64;
    let mut risk_by_class = [0.0_f64; 2];
    let mut count_by_class = [0usize; 2];
    let mut noisy_count_by_class = [0usize; 2];
    for _ in 0..samples {
        let p = random_softmax(rng);
        let lambda = stats::sample_beta(16.0, 16.0, rng);
        let label = usize::from(rng.gen::<bool>());
        let flip_rate = if label == 1 { eta10 } else { eta01 };
        let noisy_label = if rng.gen::<f32>() < flip_rate { 1 - label } else { label };
        noisy_risk += gce_value(&p, &mixed_target(noisy_label, lambda), q) as f64;
        risk_by_class[label] += gce_value(&p, &mixed_target(label, lambda), q) as f64;
        count_by_class[label] += 1;
        noisy_count_by_class[noisy_label] += 1;
    }
    noisy_risk /= samples as f64;
    let r1 = risk_by_class[1] / count_by_class[1].max(1) as f64;
    let r0 = risk_by_class[0] / count_by_class[0].max(1) as f64;
    let tau1 = noisy_count_by_class[1] as f64 / samples as f64;
    let tau0 = noisy_count_by_class[0] as f64 / samples as f64;
    let rhs = tau1 * (r1 + eta10 as f64 / q as f64) + tau0 * (r0 + eta01 as f64 / q as f64);
    TheoremReport::new("Theorem 4 (class-dependent risk bound)", noisy_risk, rhs)
}

/// Confidence threshold for "c ≈ 1" in the Theorem 5 check.
const CONFIDENT: f32 = 0.9;

/// Theorem 5: the weighted supervised contrastive loss is upper-bounded by
/// the decomposition around the oracle loss `L_Orc`.
///
/// Samples embeddings, ground-truth labels, and corrector confidences;
/// corrected labels match the ground truth when confident and are random
/// otherwise. Both sides are evaluated empirically.
pub fn check_theorem5(batch: usize, rng: &mut impl Rng) -> TheoremReport {
    assert!(batch >= 8, "need a reasonable batch for the empirical check");
    let z = init::gaussian(batch, 8, 0.0, 1.0, rng);
    let truth: Vec<usize> = (0..batch).map(|_| usize::from(rng.gen::<bool>())).collect();
    let conf: Vec<f32> = (0..batch)
        .map(|_| if rng.gen::<f32>() < 0.7 { rng.gen_range(0.92..1.0) } else { rng.gen_range(0.5..0.85) })
        .collect();
    let corrected: Vec<usize> = truth
        .iter()
        .zip(&conf)
        .map(|(&t, &c)| if c >= CONFIDENT { t } else { usize::from(rng.gen::<bool>()) })
        .collect();

    let pair_loss = |i: usize, p: usize| sup_con_pair(&z, i, p, 1.0) as f64;

    // LHS: Eq. 9 — expectation over anchors of the confidence-weighted mean
    // pair loss over corrected-label positives.
    let mut lhs = 0.0_f64;
    for i in 0..batch {
        let b: Vec<usize> = (0..batch)
            .filter(|&j| j != i && corrected[j] == corrected[i])
            .collect();
        if b.is_empty() {
            continue;
        }
        let inner: f64 = b
            .iter()
            .map(|&p| (conf[i] * conf[p]) as f64 * pair_loss(i, p))
            .sum();
        lhs += inner / b.len() as f64;
    }
    lhs /= batch as f64;

    // RHS terms of Theorem 5.
    let p_confident =
        conf.iter().filter(|&&c| c >= CONFIDENT).count() as f64 / batch as f64;

    // L_Orc: oracle loss over ground-truth positives (Eq. 8).
    let mut l_orc = 0.0_f64;
    let mut orc_anchors = 0;
    for i in 0..batch {
        let b: Vec<usize> =
            (0..batch).filter(|&j| j != i && truth[j] == truth[i]).collect();
        if b.is_empty() {
            continue;
        }
        l_orc += b.iter().map(|&p| pair_loss(i, p)).sum::<f64>() / b.len() as f64;
        orc_anchors += 1;
    }
    l_orc /= orc_anchors.max(1) as f64;

    // E[(c_i c_p) l | c_i ≈ 1, c_p ≉ 1] and E[(c_i c_p) l | c_i ≉ 1].
    let mut mixed_term = 0.0_f64;
    let mut mixed_count = 0usize;
    let mut low_term = 0.0_f64;
    let mut low_count = 0usize;
    for i in 0..batch {
        for p in 0..batch {
            if p == i || corrected[p] != corrected[i] {
                continue;
            }
            let w = (conf[i] * conf[p]) as f64 * pair_loss(i, p);
            if conf[i] >= CONFIDENT && conf[p] < CONFIDENT {
                mixed_term += w;
                mixed_count += 1;
            } else if conf[i] < CONFIDENT {
                low_term += w;
                low_count += 1;
            }
        }
    }
    let mixed = if mixed_count > 0 { mixed_term / mixed_count as f64 } else { 0.0 };
    let low = if low_count > 0 { low_term / low_count as f64 } else { 0.0 };

    let rhs = p_confident * (p_confident * l_orc + mixed) + low;
    TheoremReport::new("Theorem 5 (L_Sup upper bound)", lhs, rhs)
}

/// Runs every theorem check with default sizes; used by the `theorems` bin.
pub fn check_all(rng: &mut impl Rng) -> Vec<TheoremReport> {
    vec![
        check_theorem1(2_000, rng),
        check_theorem2(5_000, 0.7, rng),
        check_theorem3(20_000, 0.45, 0.7, rng),
        check_theorem4(20_000, 0.3, 0.45, 0.7, rng),
        check_theorem5(64, rng),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theorem1_limit_holds() {
        let mut rng = StdRng::seed_from_u64(0);
        let r = check_theorem1(500, &mut rng);
        assert!(r.holds, "{r:?}");
    }

    #[test]
    fn theorem2_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for q in [0.1, 0.5, 0.7, 1.0] {
            let r = check_theorem2(2_000, q, &mut rng);
            assert!(r.holds, "q={q}: {r:?}");
        }
    }

    #[test]
    fn theorem3_risk_bound_holds() {
        let mut rng = StdRng::seed_from_u64(2);
        for eta in [0.1, 0.3, 0.45] {
            let r = check_theorem3(10_000, eta, 0.7, &mut rng);
            assert!(r.holds, "eta={eta}: {r:?}");
        }
    }

    #[test]
    fn theorem4_risk_bound_holds() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = check_theorem4(10_000, 0.3, 0.45, 0.7, &mut rng);
        assert!(r.holds, "{r:?}");
    }

    #[test]
    fn theorem5_bound_holds_across_seeds() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = check_theorem5(48, &mut rng);
            assert!(r.holds, "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn check_all_returns_five_reports() {
        let mut rng = StdRng::seed_from_u64(4);
        let all = check_all(&mut rng);
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|r| r.holds), "{all:#?}");
    }
}
