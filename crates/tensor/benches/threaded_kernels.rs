//! Criterion micro-benchmarks for the intra-op threaded kernels: the same
//! kernel at 1/2/4 threads, so a regression in either the serial code or
//! the parallel dispatch shows up as a per-thread-count number. Thread
//! counts are pinned per measurement with
//! [`clfd_tensor::with_threads`], which is thread-local and therefore safe
//! under criterion's harness.

// criterion_group!/criterion_main! expand to undocumented items.
#![allow(missing_docs)]

use clfd_tensor::{init, with_threads};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_matmul_threads(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    for &n in &[128usize, 256] {
        let a = init::uniform(n, n, -1.0, 1.0, &mut rng);
        let b = init::uniform(n, n, -1.0, 1.0, &mut rng);
        let mut group = c.benchmark_group(&format!("matmul_{n}x{n}x{n}"));
        for &t in &THREAD_COUNTS {
            group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bench, &t| {
                bench.iter(|| with_threads(t, || black_box(a.matmul(&b))));
            });
        }
        group.finish();
    }
}

fn bench_similarity_threads(c: &mut Criterion) {
    // The contrastive-loss hot path at paper batch scale: L2-normalize a
    // batch of embeddings and form all pairwise similarities.
    let mut rng = StdRng::seed_from_u64(1);
    let z = init::uniform(512, 128, -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("pairwise_similarities_512x128");
    for &t in &THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bench, &t| {
            bench.iter(|| {
                with_threads(t, || {
                    let zn = z.l2_normalize_rows(1e-9);
                    black_box(zn.matmul_transpose(&zn))
                })
            });
        });
    }
    group.finish();
}

fn bench_softmax_threads(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let logits = init::uniform(512, 512, -4.0, 4.0, &mut rng);
    let mut group = c.benchmark_group("softmax_rows_512x512");
    for &t in &THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bench, &t| {
            bench.iter(|| with_threads(t, || black_box(logits.softmax_rows())));
        });
    }
    group.finish();
}

fn bench_elementwise_threads(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let a = init::uniform(1024, 512, -1.0, 1.0, &mut rng);
    let b = init::uniform(1024, 512, -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("elementwise_add_1024x512");
    for &t in &THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bench, &t| {
            bench.iter(|| with_threads(t, || black_box(a.add(&b))));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul_threads, bench_similarity_threads, bench_softmax_threads,
        bench_elementwise_threads
}
criterion_main!(benches);
