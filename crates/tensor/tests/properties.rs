//! Property-based tests for the matrix kernels and samplers, including the
//! bit-identity contract of the intra-op threaded kernels: for any shape
//! (empty, `1 x n`, `n x 1`, square, ragged) and any thread count, the
//! threaded kernel must produce exactly the bytes of the serial
//! (`with_threads(1)`) kernel.

use clfd_tensor::{kernels::dot, stats, with_threads, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0_f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

/// Exact bitwise equality, treating equal-bit NaNs as equal (unlike `==`).
fn assert_bits_eq(a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "element {} differs: {} vs {}",
            i,
            x,
            y
        );
    }
}

/// A deterministic random matrix for a proptest-chosen shape (the vendored
/// proptest stub has no `prop_flat_map`, so shapes come in as plain scalar
/// strategies and the data from a seeded RNG).
fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    clfd_tensor::init::uniform(rows, cols, -10.0, 10.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associativity(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 3),
        c in matrix_strategy(3, 3),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_of_product_is_reversed_product(
        a in matrix_strategy(2, 4),
        b in matrix_strategy(4, 3),
    ) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_is_probability_simplex(m in matrix_strategy(4, 6)) {
        let s = m.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(m in matrix_strategy(2, 5), shift in -5.0_f32..5.0) {
        let a = m.softmax_rows();
        let b = m.shift(shift).softmax_rows();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn l2_normalized_rows_have_unit_norm(m in matrix_strategy(4, 8)) {
        let n = m.l2_normalize_rows(1e-6);
        for r in 0..n.rows() {
            let norm = dot(n.row(r), n.row(r)).sqrt();
            // Either the original row was (near) zero, or the result is unit.
            let orig = dot(m.row(r), m.row(r)).sqrt();
            if orig > 1e-6 {
                prop_assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
            }
        }
    }

    #[test]
    fn vstack_preserves_rows(a in matrix_strategy(2, 3), b in matrix_strategy(3, 3)) {
        let v = a.vstack(&b);
        prop_assert_eq!(v.rows(), 5);
        prop_assert_eq!(v.row(0), a.row(0));
        prop_assert_eq!(v.row(4), b.row(2));
    }

    #[test]
    fn beta_sample_in_unit_interval(a in 0.2_f32..20.0, b in 0.2_f32..20.0, seed in 0_u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = stats::sample_beta(a, b, &mut rng);
        prop_assert!((0.0..=1.0).contains(&x), "beta({a},{b}) gave {x}");
    }

    #[test]
    fn gamma_sample_positive(shape in 0.2_f32..30.0, seed in 0_u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = stats::sample_gamma(shape, &mut rng);
        prop_assert!(x > 0.0 && x.is_finite());
    }

    #[test]
    fn running_stats_matches_direct_formula(xs in proptest::collection::vec(-100.0_f64..100.0, 2..50)) {
        let s: stats::RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
        prop_assert!((s.std() - var.sqrt()).abs() < 1e-6);
    }
}

// ---- threaded-kernel bit-identity -------------------------------------
//
// The contract under test: for random shapes (including empty, 1 x n, and
// n x 1 edges) and random thread counts, every threaded kernel produces
// exactly the bytes of its serial counterpart (`with_threads(1)`). The
// `with_threads` override is thread-local, so these cases cannot interfere
// with each other or with the rest of the suite under the parallel test
// harness.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn threaded_matmul_is_bit_identical(
        m in 0_usize..24, k in 0_usize..24, n in 0_usize..24,
        threads in 1_usize..9, seed in 0_u64..10_000,
    ) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 0x9e37);
        let serial = with_threads(1, || a.matmul(&b));
        let parallel = with_threads(threads, || a.matmul(&b));
        assert_bits_eq(&serial, &parallel);
    }

    #[test]
    fn threaded_matmul_transpose_is_bit_identical(
        m in 0_usize..24, k in 0_usize..24, n in 0_usize..24,
        threads in 1_usize..9, seed in 0_u64..10_000,
    ) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(n, k, seed ^ 0x517c);
        let serial = with_threads(1, || a.matmul_transpose(&b));
        let parallel = with_threads(threads, || a.matmul_transpose(&b));
        assert_bits_eq(&serial, &parallel);
    }

    #[test]
    fn threaded_elementwise_is_bit_identical(
        rows in 0_usize..40, cols in 0_usize..40,
        threads in 1_usize..9, seed in 0_u64..10_000,
    ) {
        let a = rand_matrix(rows, cols, seed);
        let b = rand_matrix(rows, cols, seed ^ 0x2b01);
        for (s, p) in [
            (with_threads(1, || a.add(&b)), with_threads(threads, || a.add(&b))),
            (with_threads(1, || a.sub(&b)), with_threads(threads, || a.sub(&b))),
            (with_threads(1, || a.mul(&b)), with_threads(threads, || a.mul(&b))),
            (with_threads(1, || a.scale(1.7)), with_threads(threads, || a.scale(1.7))),
            (with_threads(1, || a.sigmoid()), with_threads(threads, || a.sigmoid())),
            (with_threads(1, || a.tanh()), with_threads(threads, || a.tanh())),
        ] {
            assert_bits_eq(&s, &p);
        }
        // In-place AXPY too.
        let mut s = a.clone();
        with_threads(1, || s.add_scaled(&b, -0.3));
        let mut p = a.clone();
        with_threads(threads, || p.add_scaled(&b, -0.3));
        assert_bits_eq(&s, &p);
    }

    #[test]
    fn threaded_rowwise_reductions_are_bit_identical(
        rows in 0_usize..40, cols in 0_usize..40,
        threads in 1_usize..9, seed in 0_u64..10_000,
    ) {
        let a = rand_matrix(rows, cols, seed);
        assert_bits_eq(
            &with_threads(1, || a.row_sums()),
            &with_threads(threads, || a.row_sums()),
        );
        assert_bits_eq(
            &with_threads(1, || a.col_sums()),
            &with_threads(threads, || a.col_sums()),
        );
        assert_bits_eq(
            &with_threads(1, || a.softmax_rows()),
            &with_threads(threads, || a.softmax_rows()),
        );
        assert_bits_eq(
            &with_threads(1, || a.log_softmax_rows()),
            &with_threads(threads, || a.log_softmax_rows()),
        );
        assert_bits_eq(
            &with_threads(1, || a.l2_normalize_rows(1e-9)),
            &with_threads(threads, || a.l2_normalize_rows(1e-9)),
        );
        prop_assert_eq!(
            with_threads(1, || a.argmax_rows()),
            with_threads(threads, || a.argmax_rows())
        );
    }

    #[test]
    fn threaded_broadcast_is_bit_identical(
        rows in 0_usize..40, cols in 0_usize..40,
        threads in 1_usize..9, seed in 0_u64..10_000,
    ) {
        let a = rand_matrix(rows, cols, seed);
        let bias = rand_matrix(1, cols, seed ^ 0x77aa);
        let serial = with_threads(1, || a.add_row_broadcast(&bias));
        let parallel = with_threads(threads, || a.add_row_broadcast(&bias));
        assert_bits_eq(&serial, &parallel);
    }
}

/// Shapes above the spawn thresholds, where the parallel dispatch provably
/// runs (the proptest shapes above mostly stay below them): the contract
/// must hold on the actually-threaded path at several thread counts.
#[test]
fn large_kernels_bit_identical_across_thread_counts() {
    let a = rand_matrix(96, 64, 1);
    let b = rand_matrix(64, 96, 2);
    let bt = rand_matrix(96, 64, 3);
    let e = rand_matrix(384, 384, 4); // 147k elements ≥ every threshold
    let e2 = rand_matrix(384, 384, 5);
    let bias = rand_matrix(1, 384, 6);
    let serial_mm = with_threads(1, || a.matmul(&b));
    let serial_mt = with_threads(1, || a.matmul_transpose(&bt));
    let serial_sm = with_threads(1, || e.softmax_rows());
    let serial_lsm = with_threads(1, || e.log_softmax_rows());
    let serial_l2 = with_threads(1, || e.l2_normalize_rows(1e-9));
    let serial_add = with_threads(1, || e.add(&e2));
    let serial_rs = with_threads(1, || e.row_sums());
    let serial_cs = with_threads(1, || e.col_sums());
    let serial_bc = with_threads(1, || e.add_row_broadcast(&bias));
    for t in [2, 3, 4, 7] {
        let eq = |s: &Matrix, p: Matrix, what: &str| {
            assert_eq!(s.shape(), p.shape());
            for (x, y) in s.as_slice().iter().zip(p.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{what} diverged at {t} threads");
            }
        };
        eq(&serial_mm, with_threads(t, || a.matmul(&b)), "matmul");
        eq(&serial_mt, with_threads(t, || a.matmul_transpose(&bt)), "matmul_transpose");
        eq(&serial_sm, with_threads(t, || e.softmax_rows()), "softmax_rows");
        eq(&serial_lsm, with_threads(t, || e.log_softmax_rows()), "log_softmax_rows");
        eq(&serial_l2, with_threads(t, || e.l2_normalize_rows(1e-9)), "l2_normalize_rows");
        eq(&serial_add, with_threads(t, || e.add(&e2)), "add");
        eq(&serial_rs, with_threads(t, || e.row_sums()), "row_sums");
        eq(&serial_cs, with_threads(t, || e.col_sums()), "col_sums");
        eq(&serial_bc, with_threads(t, || e.add_row_broadcast(&bias)), "add_row_broadcast");
    }
}

// ---- blocked-kernel vs naive-kernel bit-identity -----------------------
//
// The panel-packed register-blocked matmul/matmul_transpose behind the
// default KernelPolicy must reproduce the scalar reference kernels
// (`matmul_naive` / `matmul_transpose_naive`) bit-for-bit: same ascending-k
// accumulation per output element, same zero-skip, same signed-zero start.
// Swept over random shapes (including empty, 1 x n, n x 1) at 1/2/4
// threads, with exact zeros sprinkled into `a` to exercise the skip path.

/// Zeroes every fifth element so the matmul zero-skip branch actually runs.
fn sprinkle_zeros(m: &mut Matrix) {
    for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
        if i % 5 == 0 {
            *v = 0.0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive(
        m in 0_usize..40, k in 0_usize..40, n in 0_usize..40,
        seed in 0_u64..10_000,
    ) {
        let mut a = rand_matrix(m, k, seed);
        sprinkle_zeros(&mut a);
        let b = rand_matrix(k, n, seed ^ 0x9e37);
        for threads in [1_usize, 2, 4] {
            let blocked = with_threads(threads, || a.matmul(&b));
            let naive = with_threads(threads, || a.matmul_naive(&b));
            assert_bits_eq(&blocked, &naive);
        }
    }

    #[test]
    fn blocked_matmul_transpose_is_bit_identical_to_naive(
        m in 0_usize..40, k in 0_usize..40, n in 0_usize..40,
        seed in 0_u64..10_000,
    ) {
        let mut a = rand_matrix(m, k, seed);
        sprinkle_zeros(&mut a);
        let b = rand_matrix(n, k, seed ^ 0x517c);
        for threads in [1_usize, 2, 4] {
            let blocked = with_threads(threads, || a.matmul_transpose(&b));
            let naive = with_threads(threads, || a.matmul_transpose_naive(&b));
            assert_bits_eq(&blocked, &naive);
        }
    }
}

/// Blocked vs naive above the spawn thresholds and across whole-tile /
/// remainder row counts, plus a policy with non-default block sizes: the
/// partitioner granule may change where threads split, never the bytes.
#[test]
fn blocked_kernels_match_naive_on_large_and_ragged_shapes() {
    use clfd_tensor::{with_policy, BlockSizes, KernelPolicy};
    for &(m, k, n) in &[(96, 64, 96), (97, 33, 65), (1, 128, 128), (128, 128, 1), (130, 70, 94)] {
        let mut a = rand_matrix(m, k, 11);
        sprinkle_zeros(&mut a);
        let b = rand_matrix(k, n, 12);
        let bt = rand_matrix(n, k, 13);
        let naive_mm = a.matmul_naive(&b);
        let naive_mt = a.matmul_transpose_naive(&bt);
        for threads in [1, 2, 4] {
            assert_bits_eq(&naive_mm, &with_threads(threads, || a.matmul(&b)));
            assert_bits_eq(&naive_mt, &with_threads(threads, || a.matmul_transpose(&bt)));
            let odd_blocks = KernelPolicy::auto()
                .threads(threads)
                .block_sizes(BlockSizes { rows: 3, cols: 8 });
            assert_bits_eq(&naive_mm, &with_policy(odd_blocks, || a.matmul(&b)));
            assert_bits_eq(&naive_mt, &with_policy(odd_blocks, || a.matmul_transpose(&bt)));
        }
    }
}

/// `KernelPolicy::scalar_reference()` (lanes == 1) routes the public
/// `matmul` entry points to the naive kernels, scope- and process-wide.
#[test]
fn scalar_reference_policy_selects_naive_path() {
    use clfd_tensor::{with_policy, KernelPolicy};
    let a = rand_matrix(33, 17, 21);
    let b = rand_matrix(17, 29, 22);
    let via_policy = with_policy(KernelPolicy::scalar_reference(), || a.matmul(&b));
    let naive = a.matmul_naive(&b);
    assert_bits_eq(&via_policy, &naive);
}

/// The global knob: `set_threads` is observed by kernels (restored at the
/// end so concurrently running tests keep their thread-local overrides,
/// which always win over the global).
#[test]
fn set_threads_governs_default_and_one_is_serial() {
    let a = rand_matrix(128, 128, 7);
    let b = rand_matrix(128, 128, 8);
    let serial = with_threads(1, || a.matmul(&b));
    clfd_tensor::set_threads(3);
    let threaded = a.matmul(&b);
    clfd_tensor::set_threads(1);
    let back_to_serial = a.matmul(&b);
    clfd_tensor::set_threads(clfd_tensor::threads::available());
    for ((x, y), z) in serial
        .as_slice()
        .iter()
        .zip(threaded.as_slice())
        .zip(back_to_serial.as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits());
        assert_eq!(x.to_bits(), z.to_bits());
    }
}
