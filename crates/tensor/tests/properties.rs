//! Property-based tests for the matrix kernels and samplers.

use clfd_tensor::{kernels::dot, stats, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0_f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associativity(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 3),
        c in matrix_strategy(3, 3),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_of_product_is_reversed_product(
        a in matrix_strategy(2, 4),
        b in matrix_strategy(4, 3),
    ) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_is_probability_simplex(m in matrix_strategy(4, 6)) {
        let s = m.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(m in matrix_strategy(2, 5), shift in -5.0_f32..5.0) {
        let a = m.softmax_rows();
        let b = m.shift(shift).softmax_rows();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn l2_normalized_rows_have_unit_norm(m in matrix_strategy(4, 8)) {
        let n = m.l2_normalize_rows(1e-6);
        for r in 0..n.rows() {
            let norm = dot(n.row(r), n.row(r)).sqrt();
            // Either the original row was (near) zero, or the result is unit.
            let orig = dot(m.row(r), m.row(r)).sqrt();
            if orig > 1e-6 {
                prop_assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
            }
        }
    }

    #[test]
    fn vstack_preserves_rows(a in matrix_strategy(2, 3), b in matrix_strategy(3, 3)) {
        let v = a.vstack(&b);
        prop_assert_eq!(v.rows(), 5);
        prop_assert_eq!(v.row(0), a.row(0));
        prop_assert_eq!(v.row(4), b.row(2));
    }

    #[test]
    fn beta_sample_in_unit_interval(a in 0.2_f32..20.0, b in 0.2_f32..20.0, seed in 0_u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = stats::sample_beta(a, b, &mut rng);
        prop_assert!((0.0..=1.0).contains(&x), "beta({a},{b}) gave {x}");
    }

    #[test]
    fn gamma_sample_positive(shape in 0.2_f32..30.0, seed in 0_u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = stats::sample_gamma(shape, &mut rng);
        prop_assert!(x > 0.0 && x.is_finite());
    }

    #[test]
    fn running_stats_matches_direct_formula(xs in proptest::collection::vec(-100.0_f64..100.0, 2..50)) {
        let s: stats::RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
        prop_assert!((s.std() - var.sqrt()).abs() < 1e-6);
    }
}
