//! Linear-algebra, elementwise, and reduction kernels for [`Matrix`].
//!
//! # Matmul: blocked fast path, naive reference path
//!
//! The matmul family ships two implementations that produce the **same
//! bits**:
//!
//! * [`Matrix::matmul_naive`] / [`Matrix::matmul_transpose_naive`] — the
//!   original scalar i-k-j kernels. They define the workspace's reference
//!   accumulation order: each output element accumulates over `k` in
//!   ascending order, one add per term, starting from `0.0` (and `matmul`
//!   skips zero `a` elements, a sparsity win for one-hot inputs).
//! * The panel-packed, register-blocked fast path behind
//!   [`Matrix::matmul`] / [`Matrix::matmul_transpose`] — packs `B` into
//!   kk-major panels of [`NR`] f32 lanes, accumulates [`MR`] output rows at
//!   a time into `[[f32; NR]; MR]` register tiles with explicitly unrolled
//!   lane loops the autovectorizer lowers to SIMD. The tile loop runs the
//!   *same per-element accumulation order* as the naive kernel (ascending
//!   `kk`, one add per non-skipped term, from `0.0`), so the results are
//!   bit-identical — pinned by proptests in `tests/properties.rs`.
//!
//! A [`KernelPolicy`](crate::threads::KernelPolicy) with `lanes == 1`
//! selects the naive path process- or scope-wide, which is how the
//! property tests and benchmarks compare the two.
//!
//! Kernels whose output rows (or elements) are independent are row-block
//! parallel over the intra-op pool configured by
//! [`threads::set_policy`](crate::threads::set_policy): each worker runs
//! the serial per-row code on a disjoint output block, so results are
//! **bit-identical** to the serial kernel at any thread count (see the
//! [`threads`](crate::threads) module docs for the argument). Whole-matrix
//! scalar reductions (`sum`, `mean`) stay serial: splitting them would
//! reassociate the accumulation and break bit-identity. No unsafe code is
//! used anywhere in the workspace.

use crate::matrix::Matrix;
use crate::threads;

/// Spawn threshold for matmul-family kernels, in multiply-adds (`m·k·n`).
/// Below this the serial path wins on thread-startup cost alone; the
/// partitioner also caps parts at `work / MATMUL_MIN_WORK` so each spawned
/// worker keeps at least this much work (~0.1 ms of blocked matmul).
const MATMUL_MIN_WORK: usize = 2 * 1024 * 1024;

/// Spawn threshold for cheap elementwise kernels, in elements. These are
/// memory-bound single passes, so threads only pay once the buffers leave
/// the private caches.
const ELEMWISE_MIN_WORK: usize = 256 * 1024;

/// Spawn threshold for exp/sqrt-heavy row-wise kernels (softmax, norm), in
/// elements. Lower than [`ELEMWISE_MIN_WORK`] because each element costs a
/// transcendental.
const ROWWISE_MIN_WORK: usize = 32 * 1024;

/// Thread-split granule (in elements) for flat, `row_len == 1` output
/// splits: one 64-byte cache line of f32s, so no two workers ever write
/// the same line.
const FLAT_GRANULE: usize = 16;

/// Register-block height of the packed matmul microkernel: output rows
/// accumulated per tile. Fixed at compile time for register allocation;
/// `KernelPolicy::block_sizes.rows` controls the thread-split granule that
/// keeps worker blocks tile-aligned.
pub const MR: usize = 6;

/// Packed-panel width of the matmul microkernel, in f32 lanes: output
/// columns per tile (two AVX-512 vectors, four AVX2 vectors).
///
/// `MR x NR` gives 12 512-bit accumulator chains — enough independent
/// adds in flight to cover the few-cycle `vaddps` latency on both FP
/// ports, which one chain per row cannot (that caps at half peak).
pub const NR: usize = 32;

/// Serial core of [`Matrix::matmul_naive`] for rows `first..first + block/n`.
fn matmul_rows(a: &[f32], b: &[f32], k: usize, n: usize, first: usize, block: &mut [f32]) {
    for (ii, o_row) in block.chunks_mut(n).enumerate() {
        let i = first + ii;
        let a_row = &a[i * k..(i + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (ov, &bv) in o_row.iter_mut().zip(b_row) {
                *ov += aik * bv;
            }
        }
    }
}

/// Packs columns `j0..j0 + w` of row-major `b` (`k x n`) into a kk-major
/// panel: `panel[kk * NR + jj] = b[kk * n + j0 + jj]`, lanes `w..NR`
/// zero-padded (computed but never stored, so padding cannot leak).
fn pack_panel_from_rows(b: &[f32], n: usize, j0: usize, w: usize, panel: &mut [f32]) {
    for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
        let src = &b[kk * n + j0..kk * n + j0 + w];
        dst[..w].copy_from_slice(src);
        dst[w..].fill(0.0);
    }
}

/// Packs rows `j0..j0 + w` of row-major `b` (`n x k`) — the columns of
/// `b^T` — into the same kk-major panel layout as
/// [`pack_panel_from_rows`]. This is how `matmul_transpose` reuses the
/// blocked kernel without materializing the transpose: each `b` row is
/// already `k`-contiguous, it just lands in a panel lane.
fn pack_panel_from_cols(b: &[f32], k: usize, j0: usize, w: usize, panel: &mut [f32]) {
    panel.fill(0.0);
    for jj in 0..w {
        let src = &b[(j0 + jj) * k..(j0 + jj) * k + k];
        for (kk, &v) in src.iter().enumerate() {
            panel[kk * NR + jj] = v;
        }
    }
}

/// One `MR x NR` register tile: accumulates `a_rows` (each of length `k`)
/// against a packed panel, ascending `kk`, one add per non-skipped term,
/// starting from `0.0` — the exact per-element order of the naive kernels,
/// which is what makes the blocked path bit-identical.
///
/// The `NR`-wide inner loops are the explicitly unrolled f32 lanes the
/// autovectorizer lowers to SIMD; no intrinsics or unstable `std::simd`.
fn tile_acc<const SKIP_ZERO: bool>(
    a_rows: &[&[f32]; MR],
    k: usize,
    panel: &[f32],
) -> [[f32; NR]; MR] {
    // The skip-zero (matmul) reference accumulates into a `+0.0`-filled
    // output; the no-skip (matmul_transpose) reference is `dot`, whose
    // `Iterator::sum` folds from `-0.0` — IEEE-754's true additive
    // identity. Matching each start value bit-for-bit matters when every
    // accumulated term is a signed zero.
    let init = if SKIP_ZERO { 0.0f32 } else { -0.0f32 };
    let mut acc = [[init; NR]; MR];
    for kk in 0..k {
        let bv: &[f32; NR] = panel[kk * NR..kk * NR + NR].try_into().expect("panel lane");
        for r in 0..MR {
            let v = a_rows[r][kk];
            // The zero skip matches the naive kernel exactly and is a real
            // sparsity win for one-hot / ReLU-masked operands; on dense
            // data the never-taken branch costs ~nothing.
            if SKIP_ZERO && v == 0.0 {
                continue;
            }
            let acc_r = &mut acc[r];
            for l in 0..NR {
                acc_r[l] += v * bv[l];
            }
        }
    }
    acc
}

/// Single-row remainder tile of [`tile_acc`] (same accumulation order).
fn tile_acc_one<const SKIP_ZERO: bool>(a_row: &[f32], panel: &[f32]) -> [f32; NR] {
    // Same signed-zero start values as `tile_acc`.
    let init = if SKIP_ZERO { 0.0f32 } else { -0.0f32 };
    let mut acc = [init; NR];
    for (kk, &v) in a_row.iter().enumerate() {
        if SKIP_ZERO && v == 0.0 {
            continue;
        }
        let bv: &[f32; NR] = panel[kk * NR..kk * NR + NR].try_into().expect("panel lane");
        for l in 0..NR {
            acc[l] += v * bv[l];
        }
    }
    acc
}

/// Blocked serial core shared by `matmul` (`SKIP_ZERO`, `b` row-major
/// `k x n`) and `matmul_transpose` (no skip, `b` row-major `n x k` holding
/// the transposed operand). Computes output rows `first..first +
/// block.len() / n` of the product into `block`.
///
/// Per worker: for each `NR`-column panel of the output, pack the matching
/// `B` panel once, then sweep this worker's rows in `MR`-row register
/// tiles (plus a one-row remainder loop). Accumulators live in registers
/// for the whole `k` loop and are stored once — into output that
/// [`Matrix::zeros`] initialized, so a store of the tile equals the naive
/// kernel's add-into-zero bits.
fn blocked_rows<const SKIP_ZERO: bool>(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    b_transposed: bool,
    first: usize,
    block: &mut [f32],
) {
    let rows = block.len().checked_div(n).unwrap_or(0);
    let mut panel = vec![0.0f32; k * NR];
    let mut j0 = 0;
    while j0 < n {
        let w = NR.min(n - j0);
        if b_transposed {
            pack_panel_from_cols(b, k, j0, w, &mut panel);
        } else {
            pack_panel_from_rows(b, n, j0, w, &mut panel);
        }
        let mut i = 0;
        while i + MR <= rows {
            let base = (first + i) * k;
            let a_rows: [&[f32]; MR] = std::array::from_fn(|r| &a[base + r * k..base + (r + 1) * k]);
            let acc = tile_acc::<SKIP_ZERO>(&a_rows, k, &panel);
            for (r, lanes) in acc.iter().enumerate() {
                let at = (i + r) * n + j0;
                block[at..at + w].copy_from_slice(&lanes[..w]);
            }
            i += MR;
        }
        while i < rows {
            let base = (first + i) * k;
            let acc = tile_acc_one::<SKIP_ZERO>(&a[base..base + k], &panel);
            let at = i * n + j0;
            block[at..at + w].copy_from_slice(&acc[..w]);
            i += 1;
        }
        j0 += NR;
    }
}

impl Matrix {
    /// Matrix product `self * other` (`m x k` times `k x n`).
    ///
    /// Dispatches to the panel-packed register-blocked kernel (or the
    /// scalar reference kernel when the active
    /// [`KernelPolicy`](crate::threads::KernelPolicy) has `lanes == 1`).
    /// Both paths are row-block parallel and bit-identical to each other
    /// and to the serial kernel at any thread count: every output element
    /// accumulates over `k` in the same ascending order.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul inner dimensions differ ({:?} * {:?})",
            self.shape(),
            other.shape()
        );
        let pol = threads::policy();
        if pol.lanes <= 1 {
            return self.matmul_naive(other);
        }
        let (m, k) = self.shape();
        let n = other.cols();
        let mut out = Matrix::zeros(m, n);
        if out.is_empty() {
            return out;
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let parts = threads::plan(m, m * k * n, MATMUL_MIN_WORK);
        let granule = pol.block_sizes.rows.max(1);
        threads::run_row_blocks(out.as_mut_slice(), n, m, parts, granule, |first, block| {
            blocked_rows::<true>(a, b, k, n, false, first, block);
        });
        out
    }

    /// The original scalar i-k-j matmul: the workspace's reference
    /// accumulation order (ascending `k`, zero-`a` terms skipped). The
    /// blocked [`Matrix::matmul`] is proptest-pinned bit-identical to this
    /// kernel; it remains public for those tests and for benchmark
    /// comparisons.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul inner dimensions differ ({:?} * {:?})",
            self.shape(),
            other.shape()
        );
        let (m, k) = self.shape();
        let n = other.cols();
        let mut out = Matrix::zeros(m, n);
        if out.is_empty() {
            return out;
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let parts = threads::plan(m, m * k * n, MATMUL_MIN_WORK);
        threads::run_row_blocks(out.as_mut_slice(), n, m, parts, 1, |first, block| {
            matmul_rows(a, b, k, n, first, block);
        });
        out
    }

    /// `self * other^T` without materializing the transpose (`m x k` times
    /// `n x k` → `m x n`). This is the hot kernel of every contrastive loss:
    /// pairwise similarities between two batches of embeddings.
    ///
    /// Dispatches like [`Matrix::matmul`]: blocked fast path by default
    /// (the rows of `other` are already `k`-contiguous, so they pack
    /// straight into panel lanes), scalar [`Matrix::matmul_transpose_naive`]
    /// when the policy has `lanes == 1`. Bit-identical either way.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose requires equal column counts ({:?} vs {:?})",
            self.shape(),
            other.shape()
        );
        let pol = threads::policy();
        if pol.lanes <= 1 {
            return self.matmul_transpose_naive(other);
        }
        let (m, k) = self.shape();
        let n = other.rows();
        let mut out = Matrix::zeros(m, n);
        if out.is_empty() {
            return out;
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let parts = threads::plan(m, m * k.max(1) * n, MATMUL_MIN_WORK);
        let granule = pol.block_sizes.rows.max(1);
        threads::run_row_blocks(out.as_mut_slice(), n, m, parts, granule, |first, block| {
            blocked_rows::<false>(a, b, k, n, true, first, block);
        });
        out
    }

    /// The original scalar `self * other^T`: one [`dot`] per output element
    /// (ascending `k`, no zero skipping — `dot` is the reference order).
    /// Kept public for the bit-identity proptests and benchmarks, like
    /// [`Matrix::matmul_naive`].
    pub fn matmul_transpose_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose requires equal column counts ({:?} vs {:?})",
            self.shape(),
            other.shape()
        );
        let (m, k) = self.shape();
        let n = other.rows();
        let mut out = Matrix::zeros(m, n);
        if out.is_empty() {
            return out;
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let parts = threads::plan(m, m * k.max(1) * n, MATMUL_MIN_WORK);
        threads::run_row_blocks(out.as_mut_slice(), n, m, parts, 1, |first, block| {
            for (ii, o_row) in block.chunks_mut(n).enumerate() {
                let i = first + ii;
                let a_row = &a[i * k..(i + 1) * k];
                for (j, o) in o_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    *o = dot(a_row, b_row);
                }
            }
        });
        out
    }

    /// Threaded elementwise map; bit-identical to [`Matrix::map`] because
    /// each element is produced by the same single evaluation of `f`.
    ///
    /// The closure must be pure: it may run concurrently on disjoint
    /// elements and must not care which thread evaluates it.
    pub fn map_par(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let len = self.len();
        let parts = threads::plan(len, len, ELEMWISE_MIN_WORK);
        if parts <= 1 {
            return self.map(f);
        }
        let mut out = Matrix::zeros(self.rows(), self.cols());
        let a = self.as_slice();
        threads::run_row_blocks(out.as_mut_slice(), 1, len, parts, FLAT_GRANULE, |first, block| {
            for (j, o) in block.iter_mut().enumerate() {
                *o = f(a[first + j]);
            }
        });
        out
    }

    /// Threaded elementwise binary combination; bit-identical to
    /// [`Matrix::zip_map`]. Same purity requirement as [`Matrix::map_par`].
    pub fn zip_map_par(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        self.assert_same_shape(other, "zip_map_par");
        let len = self.len();
        let parts = threads::plan(len, len, ELEMWISE_MIN_WORK);
        if parts <= 1 {
            return self.zip_map(other, f);
        }
        let mut out = Matrix::zeros(self.rows(), self.cols());
        let a = self.as_slice();
        let b = other.as_slice();
        threads::run_row_blocks(out.as_mut_slice(), 1, len, parts, FLAT_GRANULE, |first, block| {
            for (j, o) in block.iter_mut().enumerate() {
                *o = f(a[first + j], b[first + j]);
            }
        });
        out
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map_par(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map_par(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.zip_map_par(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Matrix) -> Matrix {
        self.zip_map_par(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "add_assign");
        let len = self.len();
        let parts = threads::plan(len, len, ELEMWISE_MIN_WORK);
        let b = other.as_slice();
        threads::run_row_blocks(self.as_mut_slice(), 1, len, parts, FLAT_GRANULE, |first, block| {
            for (j, a) in block.iter_mut().enumerate() {
                *a += b[first + j];
            }
        });
    }

    /// `self += scale * other`, the AXPY update used by optimizers.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        self.assert_same_shape(other, "add_scaled");
        let len = self.len();
        let parts = threads::plan(len, len, ELEMWISE_MIN_WORK);
        let b = other.as_slice();
        threads::run_row_blocks(self.as_mut_slice(), 1, len, parts, FLAT_GRANULE, |first, block| {
            for (j, a) in block.iter_mut().enumerate() {
                *a += scale * b[first + j];
            }
        });
    }

    /// Multiplies every element by `s`, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map_par(move |x| x * s)
    }

    /// Adds `s` to every element, returning a new matrix.
    pub fn shift(&self, s: f32) -> Matrix {
        self.map_par(move |x| x + s)
    }

    /// Elementwise logistic sigmoid `1 / (1 + e^-x)`.
    pub fn sigmoid(&self) -> Matrix {
        self.map_par(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Matrix {
        self.map_par(f32::tanh)
    }

    /// Elementwise leaky ReLU (`slope = 0` gives plain ReLU).
    pub fn leaky_relu(&self, slope: f32) -> Matrix {
        self.map_par(move |x| if x > 0.0 { x } else { slope * x })
    }

    /// Adds a `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows(), 1, "broadcast operand must be a row vector");
        assert_eq!(
            row.cols(),
            self.cols(),
            "broadcast vector has {} columns, matrix has {}",
            row.cols(),
            self.cols()
        );
        let mut out = self.clone();
        if out.is_empty() {
            return out;
        }
        let (rows, cols) = out.shape();
        let bias = row.as_slice();
        let parts = threads::plan(rows, rows * cols, ELEMWISE_MIN_WORK);
        threads::run_row_blocks(out.as_mut_slice(), cols, rows, parts, 1, |_, block| {
            for o_row in block.chunks_mut(cols) {
                for (o, &b) in o_row.iter_mut().zip(bias) {
                    *o += b;
                }
            }
        });
        out
    }

    /// Sum of all elements. Serial on purpose: a parallel reduction would
    /// reassociate the floating-point accumulation and break bit-identity.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements; 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Per-row sums as an `rows x 1` column vector. Row-block parallel;
    /// each row's accumulation order is the serial one.
    pub fn row_sums(&self) -> Matrix {
        let (rows, cols) = self.shape();
        let mut out = Matrix::zeros(rows, 1);
        if rows == 0 {
            return out;
        }
        let a = self.as_slice();
        let parts = threads::plan(rows, rows * cols, ELEMWISE_MIN_WORK);
        threads::run_row_blocks(out.as_mut_slice(), 1, rows, parts, FLAT_GRANULE, |first, block| {
            for (j, o) in block.iter_mut().enumerate() {
                let r = first + j;
                *o = a[r * cols..(r + 1) * cols].iter().sum();
            }
        });
        out
    }

    /// Per-column sums as a `1 x cols` row vector. Column-block parallel:
    /// every column is owned by one worker and accumulated in row order,
    /// exactly as the serial loop does.
    pub fn col_sums(&self) -> Matrix {
        let (rows, cols) = self.shape();
        let mut out = Matrix::zeros(1, cols);
        if cols == 0 {
            return out;
        }
        let a = self.as_slice();
        let parts = threads::plan(cols, rows * cols, ELEMWISE_MIN_WORK);
        threads::run_row_blocks(out.as_mut_slice(), 1, cols, parts, FLAT_GRANULE, |first, block| {
            for r in 0..rows {
                let row = &a[r * cols..(r + 1) * cols];
                for (j, o) in block.iter_mut().enumerate() {
                    *o += row[first + j];
                }
            }
        });
        out
    }

    /// Per-row means as an `rows x 1` column vector.
    pub fn row_means(&self) -> Matrix {
        let inv = 1.0 / self.cols().max(1) as f32;
        self.row_sums().scale(inv)
    }

    /// Row-wise softmax; numerically stabilized by subtracting the row max.
    /// Row-block parallel (each row is independent).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        let (rows, cols) = out.shape();
        if out.is_empty() {
            return out;
        }
        let parts = threads::plan(rows, rows * cols, ROWWISE_MIN_WORK);
        threads::run_row_blocks(out.as_mut_slice(), cols, rows, parts, 1, |_, block| {
            for row in block.chunks_mut(cols) {
                let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
                let mut sum = 0.0;
                for x in row.iter_mut() {
                    *x = (*x - max).exp();
                    sum += *x;
                }
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        });
        out
    }

    /// Row-wise log-softmax, numerically stabilized. Row-block parallel.
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        let (rows, cols) = out.shape();
        if out.is_empty() {
            return out;
        }
        let parts = threads::plan(rows, rows * cols, ROWWISE_MIN_WORK);
        threads::run_row_blocks(out.as_mut_slice(), cols, rows, parts, 1, |_, block| {
            for row in block.chunks_mut(cols) {
                let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
                let log_sum = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
                for x in row.iter_mut() {
                    *x -= log_sum;
                }
            }
        });
        out
    }

    /// L2-normalizes each row; rows with norm below `eps` are left
    /// unchanged. Row-block parallel.
    pub fn l2_normalize_rows(&self, eps: f32) -> Matrix {
        let mut out = self.clone();
        let (rows, cols) = out.shape();
        if out.is_empty() {
            return out;
        }
        let parts = threads::plan(rows, rows * cols, ROWWISE_MIN_WORK);
        threads::run_row_blocks(out.as_mut_slice(), cols, rows, parts, 1, |_, block| {
            for row in block.chunks_mut(cols) {
                let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm > eps {
                    for x in row.iter_mut() {
                        *x /= norm;
                    }
                }
            }
        });
        out
    }

    /// Index of the largest element in each row. Row-block parallel.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (rows, cols) = self.shape();
        let mut out = vec![0usize; rows];
        if rows == 0 {
            return out;
        }
        let a = self.as_slice();
        let parts = threads::plan(rows, rows * cols, ELEMWISE_MIN_WORK);
        threads::run_row_blocks(&mut out, 1, rows, parts, FLAT_GRANULE, |first, block| {
            for (j, o) in block.iter_mut().enumerate() {
                let r = first + j;
                *o = a[r * cols..(r + 1) * cols]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
            }
        });
        out
    }

    /// Euclidean distance between two equal-length row-major buffers viewed
    /// as flat vectors.
    pub fn euclidean_distance(&self, other: &Matrix) -> f32 {
        self.assert_same_shape(other, "euclidean_distance");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Fused LSTM cell update: `self` is the pre-activation gate block
    /// `z = [i | f | g | o]` (`rows x 4h`), `c_prev` the previous cell state
    /// (`rows x h`). Returns the new `(hidden, cell)` states, both
    /// `rows x h`:
    ///
    /// ```text
    /// c = σ(z_f) · c_prev + σ(z_i) · tanh(z_g)
    /// h = σ(z_o) · tanh(c)
    /// ```
    ///
    /// Per element this evaluates exactly the float expressions of the
    /// unfused `sigmoid`/`tanh`/`mul`/`add` chain in the same order, so the
    /// result is bit-identical to it — the fusion only removes the six
    /// intermediate gate matrices and their kernel launches. Row-block
    /// parallel with the usual bit-identity guarantee at any thread count.
    pub fn lstm_cell_update(&self, c_prev: &Matrix) -> (Matrix, Matrix) {
        let (rows, gate_cols) = self.shape();
        let hid = c_prev.cols();
        assert_eq!(rows, c_prev.rows(), "lstm_cell_update row counts differ");
        assert_eq!(
            gate_cols,
            4 * hid,
            "gate block must be 4x the cell width ({gate_cols} vs {hid})"
        );
        let mut c = Matrix::zeros(rows, hid);
        let mut h = Matrix::zeros(rows, hid);
        if c.is_empty() {
            return (h, c);
        }
        let z = self.as_slice();
        let cp = c_prev.as_slice();
        // Transcendental-heavy like softmax, so the row-wise threshold.
        let parts = threads::plan(rows, rows * gate_cols, ROWWISE_MIN_WORK);
        threads::run_row_blocks(c.as_mut_slice(), hid, rows, parts, 1, |first, block| {
            for (ii, c_row) in block.chunks_mut(hid).enumerate() {
                let r = first + ii;
                let z_row = &z[r * gate_cols..(r + 1) * gate_cols];
                let cp_row = &cp[r * hid..(r + 1) * hid];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let i = 1.0 / (1.0 + (-z_row[j]).exp());
                    let f = 1.0 / (1.0 + (-z_row[hid + j]).exp());
                    let g = z_row[2 * hid + j].tanh();
                    *cv = f * cp_row[j] + i * g;
                }
            }
        });
        let c_done = c.as_slice();
        threads::run_row_blocks(h.as_mut_slice(), hid, rows, parts, 1, |first, block| {
            for (ii, h_row) in block.chunks_mut(hid).enumerate() {
                let r = first + ii;
                let z_row = &z[r * gate_cols..(r + 1) * gate_cols];
                let c_row = &c_done[r * hid..(r + 1) * hid];
                for (j, hv) in h_row.iter_mut().enumerate() {
                    let o = 1.0 / (1.0 + (-z_row[3 * hid + j]).exp());
                    *hv = o * c_row[j].tanh();
                }
            }
        });
        (h, c)
    }
}

/// Dot product of two equal-length slices.
///
/// Sequential ascending accumulation from `0.0` — this *is* the reference
/// bit order of `matmul_transpose`, so it must never be blocked, chunked,
/// or reassociated.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Cosine similarity of two slices; 0 when either has zero norm.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn matmul_transpose_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(4, 5, |r, c| (r * c) as f32 * 0.1);
        let fast = a.matmul_transpose(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    /// The blocked kernels must reproduce the naive kernels' bits exactly —
    /// spot check here; the exhaustive sweep (random shapes × thread
    /// counts) lives in `tests/properties.rs`.
    #[test]
    fn blocked_matmul_bits_match_naive() {
        // Shapes straddling the MR/NR tile boundaries, plus degenerate ones.
        for &(rows, k, cols) in
            &[(1, 1, 1), (3, 5, 7), (4, 16, 16), (5, 17, 33), (23, 9, 18), (64, 32, 48)]
        {
            let a = Matrix::from_fn(rows, k, |r, c| {
                // Mix in exact zeros to exercise the zero-skip path.
                if (r + c) % 5 == 0 {
                    0.0
                } else {
                    ((r * 31 + c * 17) % 13) as f32 * 0.37 - 1.1
                }
            });
            let b = Matrix::from_fn(k, cols, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.29 - 0.8);
            let bt = b.transpose();
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            assert_eq!(blocked.shape(), naive.shape());
            for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "matmul {rows}x{k}x{cols}");
            }
            let blocked_t = a.matmul_transpose(&bt);
            let naive_t = a.matmul_transpose_naive(&bt);
            for (x, y) in blocked_t.as_slice().iter().zip(naive_t.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "matmul_transpose {rows}x{k}x{cols}");
            }
        }
    }

    #[test]
    fn scalar_policy_selects_naive_kernels() {
        use crate::threads::{with_policy, KernelPolicy};
        let a = Matrix::from_fn(6, 9, |r, c| (r as f32 - c as f32) * 0.21);
        let b = Matrix::from_fn(9, 10, |r, c| (r * c % 7) as f32 * 0.4 - 1.0);
        let scalar = with_policy(KernelPolicy::scalar_reference(), || a.matmul(&b));
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        assert_eq!(scalar, naive);
        // ... and the two dispatch targets agree bit-for-bit anyway.
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "matmul inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn axpy_update() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let g = m(1, 2, &[2.0, 4.0]);
        a.add_scaled(&g, -0.5);
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn broadcast_add() {
        let a = Matrix::zeros(2, 3);
        let b = m(1, 3, &[1.0, 2.0, 3.0]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(c.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.row_sums().as_slice(), &[3.0, 7.0]);
        assert_eq!(a.col_sums().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.row_means().as_slice(), &[1.5, 3.5]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, -1.0, 0.0, 100.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // Large logits must not overflow.
        assert!((s.get(1, 2) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn lstm_cell_update_is_bit_identical_to_unfused_chain() {
        let rows = 7;
        let hid = 9;
        let z = Matrix::from_fn(rows, 4 * hid, |r, c| ((r * 31 + c * 7) % 23) as f32 * 0.17 - 1.9);
        let c_prev = Matrix::from_fn(rows, hid, |r, c| ((r * 13 + c * 5) % 11) as f32 * 0.3 - 1.5);
        // The unfused reference: slice out the four gates and run the
        // separate sigmoid/tanh/mul/add kernels.
        let gate = |g: usize| {
            Matrix::from_fn(rows, hid, |r, c| z.get(r, g * hid + c))
        };
        let i = gate(0).sigmoid();
        let f = gate(1).sigmoid();
        let g = gate(2).tanh();
        let o = gate(3).sigmoid();
        let c_ref = f.mul(&c_prev).add(&i.mul(&g));
        let h_ref = o.mul(&c_ref.tanh());
        for threads in [1, 4] {
            let (h, c) = crate::threads::with_threads(threads, || z.lstm_cell_update(&c_prev));
            for (a, b) in c.as_slice().iter().zip(c_ref.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "cell state diverges at {threads} threads");
            }
            for (a, b) in h.as_slice().iter().zip(h_ref.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "hidden state diverges at {threads} threads");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gate block")]
    fn lstm_cell_update_rejects_mismatched_widths() {
        Matrix::zeros(2, 12).lstm_cell_update(&Matrix::zeros(2, 4));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let a = m(1, 4, &[0.5, -0.5, 2.0, 0.0]);
        let s = a.softmax_rows();
        let ls = a.log_softmax_rows();
        for i in 0..4 {
            assert!((ls.as_slice()[i].exp() - s.as_slice()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let a = m(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        let n = a.l2_normalize_rows(1e-8);
        assert!((dot(n.row(0), n.row(0)).sqrt() - 1.0).abs() < 1e-6);
        // Zero row is left untouched rather than producing NaN.
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let a = m(2, 3, &[0.1, 0.9, 0.0, 0.3, 0.2, 0.5]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn sigmoid_tanh_leaky_relu_values() {
        let a = m(1, 3, &[-1.0, 0.0, 2.0]);
        let s = a.sigmoid();
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(s.as_slice()[0] < 0.5 && s.as_slice()[2] > 0.5);
        let t = a.tanh();
        assert_eq!(t.as_slice()[1], 0.0);
        assert!((t.as_slice()[2] - 2.0_f32.tanh()).abs() < 1e-6);
        let l = a.leaky_relu(0.1);
        assert_eq!(l.as_slice(), &[-0.1, 0.0, 2.0]);
    }

    #[test]
    fn cosine_similarity_bounds() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
