//! Statistical toolkit: Gamma/Beta sampling, a 1-D two-component Gaussian
//! mixture fitted with EM, and running mean/std accumulators.
//!
//! These are deliberately implemented here instead of pulling `rand_distr`:
//! the mixup strategy of the paper (λ ~ Beta(β, β), §III-A1) and the
//! DivideMix-style clean/noisy split (per-sample loss GMM) are part of the
//! system under reproduction, and the from-scratch implementations are
//! covered by moment-matching property tests.

use rand::Rng;

use crate::init::standard_normal;

/// Samples `Gamma(shape, 1)` using the Marsaglia–Tsang squeeze method.
///
/// For `shape < 1` the standard boosting identity
/// `Gamma(a) = Gamma(a + 1) * U^(1/a)` is applied.
///
/// # Panics
/// Panics if `shape` is not strictly positive and finite.
pub fn sample_gamma(shape: f32, rng: &mut impl Rng) -> f32 {
    assert!(shape.is_finite() && shape > 0.0, "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        let u: f32 = rng.gen::<f32>().max(f32::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f32 = rng.gen::<f32>().max(f32::MIN_POSITIVE);
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Samples `Beta(a, b)` via the two-Gamma construction.
///
/// The paper's mixup coefficient is drawn as `λ ~ Beta(β, β)` with β = 16
/// (§IV-A2), which concentrates λ near 0.5 — i.e. strong interpolation.
pub fn sample_beta(a: f32, b: f32, rng: &mut impl Rng) -> f32 {
    let x = sample_gamma(a, rng);
    let y = sample_gamma(b, rng);
    let s = x + y;
    if s == 0.0 {
        0.5
    } else {
        (x / s).clamp(0.0, 1.0)
    }
}

/// A one-dimensional two-component Gaussian mixture fitted with EM.
///
/// DivideMix-style baselines fit this to the per-sample training loss each
/// epoch: the low-mean component models "clean" samples, the high-mean
/// component models "noisy" ones, and the posterior of the low-mean
/// component is each sample's clean probability.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture1d {
    /// Component means, sorted ascending (index 0 = "clean" component).
    pub means: [f32; 2],
    /// Component variances (floored at `var_floor`).
    pub variances: [f32; 2],
    /// Mixing weights, summing to 1.
    pub weights: [f32; 2],
}

impl GaussianMixture1d {
    const VAR_FLOOR: f32 = 1e-6;

    /// Fits the mixture to `data` with at most `max_iter` EM iterations.
    ///
    /// Initialization splits the data at its median, which is robust to the
    /// heavy imbalance between clean and noisy losses. Returns `None` when
    /// fewer than two samples are provided.
    pub fn fit(data: &[f32], max_iter: usize) -> Option<Self> {
        if data.len() < 2 {
            return None;
        }
        let mut sorted: Vec<f32> = data.to_vec();
        sorted.sort_by(f32::total_cmp);
        let median = sorted[sorted.len() / 2];
        let lo: Vec<f32> = sorted.iter().copied().filter(|&x| x <= median).collect();
        let hi: Vec<f32> = sorted.iter().copied().filter(|&x| x > median).collect();
        let hi = if hi.is_empty() { lo.clone() } else { hi };

        let mut gmm = Self {
            means: [mean_of(&lo), mean_of(&hi)],
            variances: [
                var_of(&lo).max(Self::VAR_FLOOR),
                var_of(&hi).max(Self::VAR_FLOOR),
            ],
            weights: [0.5, 0.5],
        };

        let mut resp = vec![0.0_f32; data.len()];
        for _ in 0..max_iter {
            // E-step: responsibility of component 0 for each sample.
            for (r, &x) in resp.iter_mut().zip(data) {
                let p0 = gmm.weights[0] * gaussian_pdf(x, gmm.means[0], gmm.variances[0]);
                let p1 = gmm.weights[1] * gaussian_pdf(x, gmm.means[1], gmm.variances[1]);
                *r = if p0 + p1 > 0.0 { p0 / (p0 + p1) } else { 0.5 };
            }
            // M-step.
            let n = data.len() as f32;
            let n0: f32 = resp.iter().sum();
            let n1 = n - n0;
            if n0 < 1e-3 || n1 < 1e-3 {
                break;
            }
            let m0 = resp.iter().zip(data).map(|(&r, &x)| r * x).sum::<f32>() / n0;
            let m1 = resp.iter().zip(data).map(|(&r, &x)| (1.0 - r) * x).sum::<f32>() / n1;
            let v0 = resp
                .iter()
                .zip(data)
                .map(|(&r, &x)| r * (x - m0) * (x - m0))
                .sum::<f32>()
                / n0;
            let v1 = resp
                .iter()
                .zip(data)
                .map(|(&r, &x)| (1.0 - r) * (x - m1) * (x - m1))
                .sum::<f32>()
                / n1;
            let next = Self {
                means: [m0, m1],
                variances: [v0.max(Self::VAR_FLOOR), v1.max(Self::VAR_FLOOR)],
                weights: [n0 / n, n1 / n],
            };
            let delta = (next.means[0] - gmm.means[0]).abs() + (next.means[1] - gmm.means[1]).abs();
            gmm = next;
            if delta < 1e-5 {
                break;
            }
        }
        // Keep the invariant: component 0 is the low-mean ("clean") one.
        if gmm.means[0] > gmm.means[1] {
            gmm.means.swap(0, 1);
            gmm.variances.swap(0, 1);
            gmm.weights.swap(0, 1);
        }
        Some(gmm)
    }

    /// Posterior probability that `x` belongs to the low-mean component.
    pub fn clean_probability(&self, x: f32) -> f32 {
        let p0 = self.weights[0] * gaussian_pdf(x, self.means[0], self.variances[0]);
        let p1 = self.weights[1] * gaussian_pdf(x, self.means[1], self.variances[1]);
        if p0 + p1 > 0.0 {
            p0 / (p0 + p1)
        } else {
            0.5
        }
    }
}

fn mean_of(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

fn var_of(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean_of(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

fn gaussian_pdf(x: f32, mean: f32, var: f32) -> f32 {
    let d = x - mean;
    (-(d * d) / (2.0 * var)).exp() / (2.0 * std::f32::consts::PI * var).sqrt()
}

/// Numerically-stable running mean / standard deviation (Welford).
///
/// Used to aggregate metric scores over repeated runs for the paper's
/// `mean ± std` table cells.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation; 0 with fewer than two observations.
    pub fn std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gamma_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(11);
        for &shape in &[0.5_f32, 1.0, 2.5, 16.0] {
            let n = 20_000;
            let samples: Vec<f32> = (0..n).map(|_| sample_gamma(shape, &mut rng)).collect();
            let mean = samples.iter().sum::<f32>() / n as f32;
            // Gamma(k, 1) has mean k.
            assert!(
                (mean - shape).abs() < shape * 0.06 + 0.02,
                "shape {shape}: mean {mean}"
            );
            assert!(samples.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn beta_symmetric_concentrates_at_half() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 10_000;
        // β = 16 is the paper's mixup setting: strong interpolation.
        let samples: Vec<f32> = (0..n).map(|_| sample_beta(16.0, 16.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // Var of Beta(a,a) = 1 / (4(2a+1)) = 1/132 ≈ 0.00757.
        assert!((var - 1.0 / 132.0).abs() < 0.0015, "var {var}");
        assert!(samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn beta_asymmetric_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 10_000;
        let mean: f32 =
            (0..n).map(|_| sample_beta(2.0, 6.0, &mut rng)).sum::<f32>() / n as f32;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gmm_separates_two_clusters() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut data = Vec::new();
        // Mimic the DivideMix use case: most samples have low loss, a noisy
        // minority has high loss.
        for _ in 0..700 {
            data.push(0.2 + 0.05 * standard_normal(&mut rng));
        }
        for _ in 0..300 {
            data.push(1.5 + 0.1 * standard_normal(&mut rng));
        }
        let gmm = GaussianMixture1d::fit(&data, 50).unwrap();
        assert!((gmm.means[0] - 0.2).abs() < 0.1, "means {:?}", gmm.means);
        assert!((gmm.means[1] - 1.5).abs() < 0.15, "means {:?}", gmm.means);
        assert!(gmm.clean_probability(0.2) > 0.95);
        assert!(gmm.clean_probability(1.5) < 0.05);
        assert!((gmm.weights[0] - 0.7).abs() < 0.05);
    }

    #[test]
    fn gmm_handles_degenerate_input() {
        assert!(GaussianMixture1d::fit(&[], 10).is_none());
        assert!(GaussianMixture1d::fit(&[1.0], 10).is_none());
        // Identical values must not produce NaN.
        let gmm = GaussianMixture1d::fit(&[0.5; 10], 10).unwrap();
        assert!(gmm.means.iter().all(|m| m.is_finite()));
        let p = gmm.clean_probability(0.5);
        assert!(p.is_finite() && (0.0..=1.0).contains(&p));
    }

    #[test]
    fn running_stats_welford() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_small_counts() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std(), 0.0);
    }
}
