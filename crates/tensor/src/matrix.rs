//! The dense row-major `f32` matrix type used throughout the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned by constructors when a caller-provided buffer does not
/// match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Rows requested by the caller.
    pub rows: usize,
    /// Columns requested by the caller.
    pub cols: usize,
    /// Length of the buffer actually supplied.
    pub len: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer of length {} cannot form a {}x{} matrix ({} elements required)",
            self.len,
            self.rows,
            self.cols,
            self.rows * self.cols
        )
    }
}

impl std::error::Error for ShapeError {}

/// Dense row-major `f32` matrix.
///
/// Vectors are represented as `1 x n` (row vector) or `n x 1` (column
/// vector) matrices. All binary operations panic on shape mismatch — those
/// mismatches are bugs in the calling model code, not recoverable runtime
/// conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix with every element set to `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError { rows, cols, len: data.len() });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Checks that the backing buffer length matches `rows * cols`.
    ///
    /// Always true for constructed matrices — but a matrix *deserialized*
    /// from untrusted bytes can carry a mismatched buffer, and every
    /// kernel indexes on the assumption the invariant holds. Loaders must
    /// call this before letting a decoded matrix near compute.
    ///
    /// # Errors
    /// Returns [`ShapeError`] when the buffer does not match the declared
    /// shape (including `rows * cols` overflowing `usize`).
    pub fn check_shape(&self) -> Result<(), ShapeError> {
        match self.rows.checked_mul(self.cols) {
            Some(n) if n == self.data.len() => Ok(()),
            _ => Err(ShapeError { rows: self.rows, cols: self.cols, len: self.data.len() }),
        }
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies row `r` into a new `1 x cols` matrix.
    pub fn row_matrix(&self, r: usize) -> Matrix {
        Matrix::row_vector(self.row(r))
    }

    /// Builds a matrix by stacking the given rows (all must share a length).
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(ShapeError { rows: nrows, cols: ncols, len: r.len() });
            }
            data.extend_from_slice(r);
        }
        Ok(Self { rows: nrows, cols: ncols, data })
    }

    /// Returns a new matrix with the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Vertically concatenates `self` above `other`.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "vstack requires equal column counts ({} vs {})",
            self.cols, other.cols
        );
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Horizontally concatenates `self` left of `other`.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "hstack requires equal row counts ({} vs {})",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` elementwise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary combination of two equal-shape matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    #[inline]
    pub(crate) fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op} requires equal shapes ({:?} vs {:?})",
            self.shape(),
            other.shape()
        );
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element; 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(10);
            for c in 0..show_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.4}", self.get(r, c))?;
            }
            if self.cols > show_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(err.len, 3);
        assert!(err.to_string().contains("2x2"));
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_access_and_select() {
        let m = Matrix::from_fn(4, 2, |r, c| (10 * r + c) as f32);
        assert_eq!(m.row(2), &[20.0, 21.0]);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[30.0, 31.0]);
        assert_eq!(s.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Matrix::ones(1, 2);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[1.0, 1.0]);

        let c = Matrix::full(2, 1, 7.0);
        let h = a.hstack(&c);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.get(0, 2), 7.0);
        assert_eq!(h.get(1, 0), a.get(1, 0));
    }

    #[test]
    #[should_panic(expected = "vstack")]
    fn vstack_shape_mismatch_panics() {
        Matrix::zeros(1, 2).vstack(&Matrix::zeros(1, 3));
    }

    #[test]
    fn map_and_zip_map() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        let doubled = a.map(|x| 2.0 * x);
        assert_eq!(doubled.get(1, 1), 6.0);
        let sum = a.zip_map(&doubled, |x, y| x + y);
        assert_eq!(sum.get(1, 1), 9.0);
    }

    #[test]
    fn norm_helpers() {
        let m = Matrix::from_vec(1, 2, vec![3.0, -4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
        assert!(!m.has_non_finite());
        let bad = Matrix::from_vec(1, 1, vec![f32::NAN]).unwrap();
        assert!(bad.has_non_finite());
    }
}
